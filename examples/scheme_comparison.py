"""Compare every Section 5 reference-encoding scheme on one suite.

Shows the Table 3 experiment as a library user would run it on their
own archive: the same class files packed under each reference scheme,
with per-category attribution for the winner.

Run: ``python examples/scheme_comparison.py [suite]``
"""

import sys

from repro import generate_suite, strip_classes
from repro.ir.build import build_archive
from repro.pack import TABLE3_VARIANTS, unpack_archive
from repro.pack.compressor import Compressor
from repro.pack.stats import collect_stats


def main() -> None:
    suite = sys.argv[1] if len(sys.argv) > 1 else "jess"
    classes = strip_classes(generate_suite(suite))
    ordered = [classes[name] for name in sorted(classes)]
    archive = build_archive(ordered)
    print(f"suite {suite!r}: {len(ordered)} classes\n")

    results = []
    for label, options in TABLE3_VARIANTS.items():
        compressor = Compressor(options)
        packed = compressor.pack(archive)
        ref_bytes = sum(
            size for name, size in
            compressor.stream_sizes(compressed=True).items()
            if name.startswith("refs."))
        # Confirm the archive decodes under the same options.
        unpack_archive(packed, options)
        results.append((label, len(packed), ref_bytes, compressor))

    width = max(len(label) for label, *_ in results)
    print(f"{'scheme'.ljust(width)}  {'archive':>8}  {'ref streams':>11}")
    for label, total, refs, _ in results:
        print(f"{label.ljust(width)}  {total:8d}  {refs:11d}")

    best = min(results, key=lambda row: row[1])
    print(f"\nbest: {best[0]} ({best[1]} bytes)")
    stats = collect_stats(best[3].stream_sizes())
    print("composition of the best archive:")
    for category in ("strings", "opcodes", "ints", "refs", "misc"):
        print(f"  {category:8s} {100 * stats.fraction(category):5.1f}%")


if __name__ == "__main__":
    main()
