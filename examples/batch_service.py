"""Drive the pack service end to end, from Python.

Builds a small corpus of jars, packs them concurrently with
:class:`repro.service.BatchEngine` (content-addressed cache, retries,
graceful degradation), then serves the same engine over HTTP and
packs one jar through ``POST /pack``.

Run with:  PYTHONPATH=src python examples/batch_service.py
"""

import json
import tempfile
import urllib.request
from pathlib import Path

from repro.classfile.classfile import write_class
from repro.corpus.suites import generate_suite
from repro.jar.jarfile import make_jar
from repro.service import (
    BatchEngine,
    FaultSpec,
    PackJob,
    PackService,
    ResultCache,
    batch_report,
    jobs_from_directory,
)


def build_jars(directory: Path) -> None:
    for suite in ("Hanoi", "Hanoi_big", "Hanoi_jax", "compress"):
        classes = generate_suite(suite)
        entries = sorted(
            (name + ".class", write_class(classfile))
            for name, classfile in classes.items())
        (directory / f"{suite}.jar").write_bytes(make_jar(entries))


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        jars = root / "jars"
        jars.mkdir()
        build_jars(jars)

        # -- batch: pack every jar, plus one chaos job -----------------
        jobs = jobs_from_directory(jars)
        jobs.append(PackJob(
            job_id="flaky",
            classes=jobs[0].classes,
            faults=FaultSpec(raise_attempts=1)))  # retried, then ok
        cache = ResultCache(spill_dir=root / "cache")
        with BatchEngine(workers=2, cache=cache) as engine:
            results = engine.run_batch(jobs)
            rerun = engine.run_batch(jobs)  # all cache hits
            stats = engine.stats_dict()

        print("batch results:")
        for result in results:
            print(f"  {result.job_id:10s} {result.status:8s} "
                  f"{result.input_bytes:6d} -> "
                  f"{result.output_bytes:6d} bytes "
                  f"({result.attempts} attempt(s))")
        print(f"rerun cached: "
              f"{sum(r.cached for r in rerun)}/{len(rerun)}")
        report = batch_report(results, 0.0, stats)
        print(f"report totals: "
              f"{json.dumps(report['totals'], indent=None)}")

        # -- serve: the same engine over HTTP --------------------------
        engine = BatchEngine(workers=0, cache=cache)
        with PackService(engine, port=0) as service:
            host, port = service.start_background()
            jar_bytes = (jars / "Hanoi.jar").read_bytes()
            request = urllib.request.Request(
                f"http://{host}:{port}/pack", data=jar_bytes,
                method="POST")
            response = urllib.request.urlopen(request)
            packed = response.read()
            print(f"\nPOST /pack: {len(jar_bytes)} -> "
                  f"{len(packed)} bytes "
                  f"(status={response.headers['X-Repro-Status']}, "
                  f"cache={response.headers['X-Repro-Cache']})")
            stats_doc = json.loads(urllib.request.urlopen(
                f"http://{host}:{port}/stats").read())
            print(f"GET /stats: jobs={stats_doc['counters']['jobs']} "
                  f"cache_hits="
                  f"{stats_doc['counters'].get('cache.hits', 0)}")
        engine.close()


if __name__ == "__main__":
    main()
