"""Signed packed bundles: the paper's Section 12 jar emulation.

Shows why signing must happen *after* decompression (packing renumbers
constant pools), and how a packed bundle ships non-class resources and
verified class files together.

Run: ``python examples/signed_bundle.py``
"""

from repro import compile_sources, pack_archive
from repro.jar.bundle import make_bundle, open_bundle
from repro.jar.manifest import (
    ManifestError,
    sign_classfiles,
    signing_roundtrip,
    verify_signed_archive,
)

SOURCE = """
package secure;

public class Vault {
    static final String BANNER = "vault v1";
    int locks;
    long serial;

    public Vault(int locks) {
        this.locks = locks;
        this.serial = 900719925474L;
    }

    public boolean open(int attempts) {
        // Several LDC-loadable constants force the reconstructed
        // constant pool into a different (low-index-first) order.
        int challenge = attempts * 1000003 + 777777;
        double score = challenge / 12345.678;
        String log = "attempt " + attempts + " score " + score;
        return log.length() > 0 && attempts >= locks * 2
            && challenge != 424242;
    }
}
"""


def main() -> None:
    classes = compile_sources([SOURCE])
    originals = list(classes.values())

    # The naive flow — sign the originals — breaks, exactly as
    # Section 12 explains: the decompressed class files have
    # renumbered constant pools, so digests no longer match.
    naive_manifest = sign_classfiles(originals)
    packed = pack_archive(originals)
    try:
        verify_signed_archive(packed, naive_manifest)
        print("unexpected: naive signing verified")
    except ManifestError as error:
        print(f"signing the originals fails after packing: {error}")

    # The paper's flow: compress, decompress, sign what came out.
    packed, manifest = signing_roundtrip(originals)
    received = verify_signed_archive(packed, manifest)
    print(f"sign-after-decompress verifies: {len(received)} classes OK")

    # Bundles carry the packed classes, resources, and the manifest in
    # one standard zip.
    resources = {
        "images/lock.png": b"\x89PNG not really a png",
        "conf/vault.properties": b"mode=paranoid\n",
    }
    bundle = make_bundle(originals, resources)
    classfiles, extracted, manifest = open_bundle(bundle)
    print(f"bundle opened: {len(classfiles)} classes, "
          f"{len(extracted)} resources, "
          f"{len(manifest.entries)} manifest entries "
          f"({len(bundle)} bytes total)")


if __name__ == "__main__":
    main()
