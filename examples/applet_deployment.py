"""Applet deployment over a slow link — the paper's motivating scenario.

Packs a realistic application suite, compares every wire format's
transfer time over a 28.8kbps modem (the paper's era), orders the
archive for eager class loading, and streams it through a simulated
``defineClass`` pipeline.

Run: ``python examples/applet_deployment.py [suite]``
"""

import sys
import time

from repro import (
    eager_order,
    generate_suite,
    jar_sizes,
    pack_archive,
    strip_classes,
)
from repro.baselines import jazz_pack
from repro.loader import stream_define

MODEM_BYTES_PER_SECOND = 28_800 / 8  # 28.8 kbps


def transfer_time(size: int) -> str:
    seconds = size / MODEM_BYTES_PER_SECOND
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    return f"{seconds:.1f} s"


def main() -> None:
    suite = sys.argv[1] if len(sys.argv) > 1 else "javac"
    print(f"deploying suite {suite!r} over a 28.8kbps modem\n")
    classes = generate_suite(suite)
    sizes = jar_sizes(classes)

    stripped = strip_classes(classes)
    ordered = eager_order(list(stripped.values()))

    start = time.perf_counter()
    packed = pack_archive(ordered)
    pack_seconds = time.perf_counter() - start
    jazz = jazz_pack(ordered)

    formats = [
        ("jar (as distributed)", sizes.jar),
        ("sjar (debug stripped)", sizes.sjar),
        ("sj0r.gz (whole-archive gzip)", sizes.sj0r_gz),
        ("Jazz [BHV98]", len(jazz)),
        ("Packed (this paper)", len(packed)),
    ]
    width = max(len(label) for label, _ in formats)
    for label, size in formats:
        print(f"{label.ljust(width)}  {size:8d} bytes  "
              f"transfer: {transfer_time(size)}")
    baseline = sizes.sjar
    print(f"\npacked archive saves "
          f"{transfer_time(baseline - len(packed))} of modem time vs "
          f"the compressed jar ({100 * len(packed) / baseline:.0f}% of "
          "its size)")
    print(f"compression took {pack_seconds:.2f}s "
          "(done once, on the server)")

    # Eager loading: superclasses precede subclasses in the archive,
    # so every class can be defined the moment it is decompressed.
    start = time.perf_counter()
    loader = stream_define(packed)
    unpack_seconds = time.perf_counter() - start
    print(f"\neager-loaded {len(loader.defined)} classes in "
          f"{unpack_seconds:.2f}s "
          f"({len(packed) / 1024 / unpack_seconds:.0f} KB of "
          "wire format per second)")
    print("first five classes available:",
          ", ".join(loader.definition_order[:5]))


if __name__ == "__main__":
    main()
