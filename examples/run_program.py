"""Compile, pack, ship, unpack, and *execute* a program.

Demonstrates the whole lifecycle the paper targets: a multi-class
application is compiled, compressed to the wire format, "transferred",
decompressed back into class files, and then actually run on the
bundled JVM bytecode interpreter — with identical output on both ends.

Run: ``python examples/run_program.py``
"""

from repro import compile_sources, pack_archive, unpack_archive
from repro.jvm import Machine

SOURCES = [
    """
package sim;

public interface Body {
    double mass();
    String describe();
}
""",
    """
package sim;

public class Planet implements Body {
    String name;
    double m;
    double distance;

    public Planet(String name, double m, double distance) {
        this.name = name;
        this.m = m;
        this.distance = distance;
    }

    public double mass() { return m; }

    public double orbitalPeriod() {
        return 2.0 * Math.PI * Math.sqrt(
            distance * distance * distance / (m * 39.478));
    }

    public String describe() {
        return name + " (m=" + m + ")";
    }
}
""",
    """
package sim;

public class Simulation {
    public static void main(String[] args) {
        Planet[] planets = new Planet[3];
        planets[0] = new Planet("Mercury", 0.055, 0.387);
        planets[1] = new Planet("Earth", 1.0, 1.0);
        planets[2] = new Planet("Jupiter", 317.8, 5.2);
        double total = 0.0;
        for (int i = 0; i < planets.length; i++) {
            Body b = planets[i];
            System.out.println(b.describe());
            total = total + b.mass();
        }
        System.out.println("total mass: " + total);
        int heaviest = 0;
        for (int i = 1; i < planets.length; i++) {
            if (planets[i].mass() > planets[heaviest].mass()) {
                heaviest = i;
            }
        }
        System.out.println("heaviest: " +
                           planets[heaviest].describe());
        try {
            Planet ghost = null;
            System.out.println(ghost.describe());
        } catch (NullPointerException e) {
            System.out.println("no ghost planets: " + e.getMessage());
        }
    }
}
""",
]


def main() -> None:
    classes = compile_sources(SOURCES)
    originals = [classes[name] for name in sorted(classes)]

    print("== running the original class files ==")
    before = Machine(originals).run_main("sim/Simulation")
    print(before)

    packed = pack_archive(originals)
    print(f"== shipping {len(packed)} packed bytes ==\n")
    restored = unpack_archive(packed)

    print("== running the decompressed class files ==")
    after = Machine(restored).run_main("sim/Simulation")
    print(after)

    assert before == after
    print("outputs identical: compression preserved the program.")


if __name__ == "__main__":
    main()
