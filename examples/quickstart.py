"""Quickstart: compile Java source, pack it, unpack it, compare sizes.

Run: ``python examples/quickstart.py``
"""

from repro import (
    archives_equal,
    compile_sources,
    jar_sizes,
    pack_archive,
    strip_classes,
    unpack_archive,
    verify_archive,
    write_class,
)

SOURCES = [
    """
package demo.bank;

public class Account {
    static final double OVERDRAFT_FEE = 35.0;
    String owner;
    double balance;

    public Account(String owner, double balance) {
        this.owner = owner;
        this.balance = balance;
    }

    public double deposit(double amount) {
        if (amount <= 0.0) {
            throw new IllegalArgumentException("amount must be positive");
        }
        balance = balance + amount;
        return balance;
    }

    public double withdraw(double amount) {
        balance = balance - amount;
        if (balance < 0.0) {
            balance = balance - OVERDRAFT_FEE;
        }
        return balance;
    }

    public String describe() {
        return owner + ": " + balance;
    }
}
""",
    """
package demo.bank;

public class Ledger {
    Account[] accounts;
    int count;

    public Ledger(int capacity) {
        this.accounts = new Account[capacity];
        this.count = 0;
    }

    public void add(Account account) {
        accounts[count] = account;
        count = count + 1;
    }

    public double total() {
        double sum = 0.0;
        for (int i = 0; i < count; i = i + 1) {
            sum = sum + accounts[i].balance;
        }
        return sum;
    }

    public void report() {
        for (int i = 0; i < count; i = i + 1) {
            System.out.println(accounts[i].describe());
        }
        System.out.println("total: " + total());
    }
}
""",
]


def main() -> None:
    # 1. Compile mini-Java to genuine JVM class files.
    classes = compile_sources(SOURCES)
    ordered = [classes[name] for name in sorted(classes)]
    verify_archive(ordered)
    raw = sum(len(write_class(c)) for c in ordered)
    print(f"compiled {len(ordered)} classes, {raw} bytes of .class data")

    # 2. Pack them with the paper's wire format.
    packed = pack_archive(ordered)
    print(f"packed archive: {len(packed)} bytes "
          f"({100 * len(packed) / raw:.0f}% of the class files)")

    # 3. Compare with the jar-format baselines.
    sizes = jar_sizes(classes)
    print(f"jar (per-file deflate): {sizes.sjar} bytes")
    print(f"j0r.gz (whole-archive): {sizes.sj0r_gz} bytes")
    print(f"packed vs jar: {100 * len(packed) / sizes.sjar:.0f}%")

    # 4. Unpack and check nothing was lost.
    restored = unpack_archive(packed)
    verify_archive(restored)
    stripped = strip_classes(classes)
    reference = [stripped[name] for name in sorted(stripped)]
    assert archives_equal(reference, restored)
    print("roundtrip verified: decompressed classes are semantically "
          "identical")


if __name__ == "__main__":
    main()
