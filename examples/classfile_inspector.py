"""Class-file inspector: the library as a general JVM toolkit.

Compiles a sample class, then dumps its constant pool, members,
disassembled bytecode, size breakdown, and the restructured (Figure 1)
view of the same class — the shapes the packed format actually encodes.

Run: ``python examples/classfile_inspector.py``
"""

from repro import compile_sources, write_class
from repro.classfile import constant_pool as cp
from repro.classfile.analysis import breakdown
from repro.classfile.bytecode import disassemble
from repro.classfile.constants import ConstantTag
from repro.ir.build import build_class

SOURCE = """
package tools.demo;

public class WordCount {
    static final String SEPARATOR = " ";
    int words;
    int lines;

    public WordCount() {
        this.words = 0;
        this.lines = 0;
    }

    public void feed(String line) {
        lines = lines + 1;
        boolean inWord = false;
        for (int i = 0; i < line.length(); i = i + 1) {
            char c = line.charAt(i);
            if (c == ' ' || c == '\\t') {
                inWord = false;
            } else if (!inWord) {
                inWord = true;
                words = words + 1;
            }
        }
    }

    public String summary() {
        return lines + SEPARATOR + words;
    }
}
"""


def main() -> None:
    classes = compile_sources([SOURCE])
    classfile = classes["tools/demo/WordCount"]
    data = write_class(classfile)
    print(f"class {classfile.name}: {len(data)} bytes")
    print(f"extends {classfile.super_name}\n")

    print("== constant pool ==")
    for index, entry in classfile.pool.entries():
        kind = ConstantTag.NAMES[entry.tag]
        if isinstance(entry, cp.Utf8):
            detail = repr(entry.value)
        elif isinstance(entry, (cp.Fieldref, cp.Methodref)):
            owner, name, descriptor = classfile.pool.member_ref(index)
            detail = f"{owner}.{name} {descriptor}"
        elif isinstance(entry, cp.ClassInfo):
            detail = classfile.pool.class_name(index)
        elif isinstance(entry, cp.StringConst):
            detail = repr(classfile.pool.string_value(index))
        else:
            detail = repr(getattr(entry, "value", entry))
        print(f"  #{index:<3} {kind:<18} {detail}")

    print("\n== methods ==")
    for method in classfile.methods:
        name = classfile.member_name(method)
        descriptor = classfile.member_descriptor(method)
        code = method.code()
        print(f"\n{name} {descriptor}")
        if code is None:
            print("  (no code)")
            continue
        print(f"  max_stack={code.max_stack} max_locals={code.max_locals}")
        for instruction in disassemble(code.code):
            operand = ""
            if instruction.cp_index is not None:
                operand = f" #{instruction.cp_index}"
            elif instruction.local is not None:
                operand = f" slot {instruction.local}"
            elif instruction.immediate is not None:
                operand = f" {instruction.immediate}"
            elif instruction.target is not None:
                operand = f" -> {instruction.target}"
            print(f"  {instruction.offset:4d}: "
                  f"{instruction.mnemonic}{operand}")

    print("\n== size breakdown (Table 2 components) ==")
    for key, value in breakdown([classfile]).as_dict().items():
        print(f"  {key:24s} {value:6d} bytes")

    print("\n== restructured view (Figure 1) ==")
    definition = build_class(classfile)
    this = definition.this_class
    print(f"  package name : {this.package.name!r}")
    print(f"  simple name  : {this.simple.name!r}")
    for field in definition.fields:
        print(f"  field  {field.ref.name.name}: "
              f"{field.ref.type.descriptor} "
              f"(constant={field.constant})")
    for method in definition.methods:
        ref = method.ref
        args = ", ".join(t.descriptor for t in ref.arg_types)
        print(f"  method {ref.name.name}({args}) -> "
              f"{ref.return_type.descriptor}, "
              f"{len(method.code.instructions) if method.code else 0} "
              "instructions")


if __name__ == "__main__":
    main()
