"""Table 7: compression and decompression execution times.

Paper columns: compression seconds, decompression seconds, and
decompression throughput (KBytes of wire format per second).  The
paper's absolute numbers are from a 1999 Sun Ultra 5; ours are from a
pure-Python implementation, so only the *relationships* are
reproduction targets: compression is several times slower than
decompression, and throughput is roughly flat across archive sizes.

This module also feeds pytest-benchmark real timing fixtures for the
pack/unpack hot paths.
"""

import time

from repro.pack import pack_archive, unpack_archive

from conftest import print_table, suite_classfiles

SUITES = ["Hanoi", "compress", "db", "raytrace", "jess",
          "icebrowserbean", "javac", "mpegaudio", "jack", "tools"]


def _measure():
    rows = []
    ratios = []
    for name in SUITES:
        classfiles = suite_classfiles(name)
        start = time.perf_counter()
        packed = pack_archive(classfiles)
        compress_time = time.perf_counter() - start
        start = time.perf_counter()
        unpack_archive(packed)
        decompress_time = time.perf_counter() - start
        throughput = len(packed) / 1024 / decompress_time
        rows.append([name, f"{compress_time:.3f}",
                     f"{decompress_time:.3f}",
                     f"{throughput:.0f}"])
        ratios.append((name, compress_time, decompress_time))
    return rows, ratios


def test_table7(benchmark):
    rows, ratios = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_table(
        "Table 7: execution times (seconds; KB/s of wire format)",
        ["benchmark", "compress (s)", "decompress (s)", "KB/s"],
        rows)
    slower = sum(1 for _, c, d in ratios if c > d)
    # Compression is slower than decompression on (nearly) every
    # suite — the paper reports ~15x; two passes plus frequency
    # analysis land us in the same direction.
    assert slower >= len(ratios) - 1


def test_pack_throughput(benchmark):
    classfiles = suite_classfiles("javac")
    benchmark.pedantic(lambda: pack_archive(classfiles),
                       rounds=3, iterations=1)


def test_unpack_throughput(benchmark):
    classfiles = suite_classfiles("javac")
    packed = pack_archive(classfiles)
    benchmark.pedantic(lambda: unpack_archive(packed),
                       rounds=3, iterations=1)
