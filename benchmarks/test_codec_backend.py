"""Codec backend throughput: compiled vs. interpreted drivers.

Not a paper table — this guards the performance claim of the
spec-compilation backend (`repro.pack.codec_core.compile`): on the
codec phases proper (count+encode, and decode), the compiled closures
must be >= 3x faster than the interpreted reference drivers, while
emitting byte-identical output (the identity half is enforced by
``tests/test_codec_backend.py``; this file only asserts it cheaply).

Methodology (see docs/PERFORMANCE.md for the full rationale):

* **codec phases only** — the shared pipeline phases (classfile
  parsing, IR build, stream serialization, classfile reconstruction)
  are identical code in both backends and would dilute the ratio, so
  the timer brackets exactly the work the backend replaces;
* **zlib off** (``compress=False``) — compression time is backend-
  independent;
* **min-of-N, interleaved** — each round times both backends
  back-to-back so machine noise hits both; the best round of each is
  scored, like the paper's timing tables;
* **aggregate gate** — the >= 3x floor applies to the total across
  all suites (sum of best interpreted times over sum of best compiled
  times), which is far less noise-sensitive than any single suite;
  each individual suite still has a 2.5x sanity floor.

The JSON report is written to ``BENCH_codec_backend.json`` at the
repo root and committed — ROADMAP item 4 asks for benchmark
trajectory files, so reruns show up as diffs.
"""

import json
import platform
import time
from pathlib import Path

import pytest

from repro.coding.streams import StreamReader, StreamSet
from repro.ir.build import build_archive
from repro.ir.model import Interner
from repro.pack.codec_core import (
    count_references,
    decode_archive,
    encode_archive,
    make_space_coders,
)
from repro.pack.options import PackOptions

from conftest import print_table, stripped_suite

#: A spread of corpus shapes: javac is the largest paper suite,
#: jack/jess are mid-sized with heavy method traffic, mpegaudio is
#: small and arithmetic-dense.  The gate must hold on every one.
SUITES = ["javac", "jack", "jess", "mpegaudio"]

ROUNDS = 7
SPEEDUP_FLOOR = 3.0
SUITE_FLOOR = 2.5

REPORT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_codec_backend.json"


def _codec_phases(archive, options):
    """(encode_fn, payload, decode_fn): the exact work the backend
    replaces, nothing shared."""
    def encode():
        coders = make_space_coders(options)
        count_references(archive, options, coders=coders)
        streams = StreamSet()
        encode_archive(archive, options, coders, streams)
        return streams

    payload = encode().serialize(compress=False)

    def decode():
        decode_archive(options, make_space_coders(options),
                       StreamReader(payload, compressed=False),
                       Interner())

    return encode, payload, decode


def test_compiled_backend_speedup():
    rows = []
    report = {
        "schema": "repro.bench.codec_backend/1",
        "floor": SPEEDUP_FLOOR,
        "suite_floor": SUITE_FLOOR,
        "rounds": ROUNDS,
        "python": platform.python_version(),
        "suites": {},
    }
    failures = []
    totals = {"interpreted": [0.0, 0.0], "compiled": [0.0, 0.0]}
    for suite in SUITES:
        archive = build_archive(list(stripped_suite(suite)))
        phases = {}
        for backend in ("interpreted", "compiled"):
            options = PackOptions(compress=False,
                                  codec_backend=backend)
            phases[backend] = _codec_phases(archive, options)
        # Identity spot-check: the lockstep suite proves this across
        # the whole scheme matrix; one assert here keeps the timing
        # honest (both backends did the same job).
        assert phases["interpreted"][1] == phases["compiled"][1]

        best = {backend: [float("inf"), float("inf")]
                for backend in phases}
        for _ in range(ROUNDS):
            for backend, (encode, _, decode) in phases.items():
                start = time.perf_counter()
                encode()
                best[backend][0] = min(best[backend][0],
                                       time.perf_counter() - start)
                start = time.perf_counter()
                decode()
                best[backend][1] = min(best[backend][1],
                                       time.perf_counter() - start)

        for backend, (enc_s, dec_s) in best.items():
            totals[backend][0] += enc_s
            totals[backend][1] += dec_s
        enc = best["interpreted"][0] / best["compiled"][0]
        dec = best["interpreted"][1] / best["compiled"][1]
        report["suites"][suite] = {
            "interpreted": {"encode_s": round(best["interpreted"][0], 6),
                            "decode_s": round(best["interpreted"][1], 6)},
            "compiled": {"encode_s": round(best["compiled"][0], 6),
                         "decode_s": round(best["compiled"][1], 6)},
            "encode_speedup": round(enc, 2),
            "decode_speedup": round(dec, 2),
        }
        rows.append([suite,
                     f"{best['interpreted'][0] * 1000:.1f}",
                     f"{best['compiled'][0] * 1000:.1f}",
                     f"{enc:.2f}x",
                     f"{best['interpreted'][1] * 1000:.1f}",
                     f"{best['compiled'][1] * 1000:.1f}",
                     f"{dec:.2f}x"])
        for phase, speedup in (("encode", enc), ("decode", dec)):
            if speedup < SUITE_FLOOR:
                failures.append(
                    f"{suite} {phase}: {speedup:.2f}x "
                    f"< {SUITE_FLOOR}x suite floor")

    agg_enc = totals["interpreted"][0] / totals["compiled"][0]
    agg_dec = totals["interpreted"][1] / totals["compiled"][1]
    report["aggregate"] = {"encode_speedup": round(agg_enc, 2),
                           "decode_speedup": round(agg_dec, 2)}
    rows.append(["(total)",
                 f"{totals['interpreted'][0] * 1000:.1f}",
                 f"{totals['compiled'][0] * 1000:.1f}",
                 f"{agg_enc:.2f}x",
                 f"{totals['interpreted'][1] * 1000:.1f}",
                 f"{totals['compiled'][1] * 1000:.1f}",
                 f"{agg_dec:.2f}x"])
    for phase, speedup in (("encode", agg_enc), ("decode", agg_dec)):
        if speedup < SPEEDUP_FLOOR:
            failures.append(f"aggregate {phase}: {speedup:.2f}x "
                            f"< {SPEEDUP_FLOOR}x")

    print_table(
        "codec backend: interpreted vs compiled (codec phases, "
        "min-of-%d)" % ROUNDS,
        ["suite", "enc int ms", "enc cmp ms", "enc speedup",
         "dec int ms", "dec cmp ms", "dec speedup"],
        rows)
    REPORT_PATH.write_text(json.dumps(report, indent=2,
                                      sort_keys=True) + "\n")
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])
