"""Guard: disabled observability must stay (near) free.

The observe layer's contract is that with no recorder installed (the
default) the pipeline pays only a cached-``None`` test per reported
event.  This module pins that down two ways:

* a *no-hooks baseline* — packing with the recorder module forced to
  the null recorder — must be within 5% of packing through the public
  default path (catches someone accidentally making recording the
  default, or making :func:`repro.observe.current` heavyweight),
* the fully *enabled* path may cost more, but is bounded (catches
  pathological per-event work creeping into the hot paths).

Timing comparisons are min-of-N with interleaved rounds so scheduler
noise hits both sides equally; the 5% check retries to keep CI
machines with noisy neighbours from flaking.
"""

import time

from repro import observe, pack_archive
from repro.observe import recorder as observe_recorder

from conftest import suite_classfiles

SUITE = "javac"
ROUNDS = 5
RETRIES = 3
TOLERANCE = 1.05


def _min_time(func, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _interleaved_min_times(funcs, rounds=ROUNDS):
    """min-of-N per function, rounds interleaved (a,b,a,b,...)."""
    best = [float("inf")] * len(funcs)
    for _ in range(rounds):
        for index, func in enumerate(funcs):
            start = time.perf_counter()
            func()
            best[index] = min(best[index],
                              time.perf_counter() - start)
    return best


def test_default_pack_leaves_no_recording():
    classfiles = suite_classfiles(SUITE)
    pack_archive(classfiles)
    assert observe.current() is observe.NULL_RECORDER
    assert observe.NULL_RECORDER.metrics is None


def test_disabled_within_5pct_of_no_hooks_baseline():
    classfiles = suite_classfiles(SUITE)

    def baseline():
        # Force the guaranteed-null state, whatever the module default
        # currently is: this is the floor instrumentation can reach.
        previous = observe_recorder._current
        observe_recorder._current = observe_recorder.NULL_RECORDER
        try:
            pack_archive(classfiles)
        finally:
            observe_recorder._current = previous

    def shipped_default():
        pack_archive(classfiles)

    baseline()  # warm caches before timing
    for attempt in range(RETRIES):
        base, shipped = _interleaved_min_times(
            [baseline, shipped_default])
        if shipped <= base * TOLERANCE:
            return
    raise AssertionError(
        f"default (observability-disabled) pack took {shipped:.4f}s vs "
        f"{base:.4f}s no-hooks baseline "
        f"(> {100 * (TOLERANCE - 1):.0f}% overhead)")


def test_enabled_overhead_is_bounded():
    classfiles = suite_classfiles(SUITE)

    def disabled():
        pack_archive(classfiles)

    def enabled():
        with observe.recording():
            pack_archive(classfiles)

    disabled()  # warm caches before timing
    off, on = _interleaved_min_times([disabled, enabled], rounds=3)
    # Full recording does strictly more work; 2x is far above its real
    # ~5% cost and only catches pathological regressions.
    assert on <= off * 2.0, (off, on)
