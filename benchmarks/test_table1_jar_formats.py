"""Table 1: benchmark programs and jar-format baseline sizes.

Paper columns: sj0r, jar, sjar, sj0r.gz in KBytes, plus the ratios
sjar/jar, sj0r.gz/sjar (shown here as sj0r.gz/sj0r too).  Our suites
are scaled-down synthetic analogs, so absolute sizes are smaller than
the paper's; the ratio columns are the reproduction targets:
sjar/jar ~ 44-64%, sj0r.gz/sjar ~ 72-96%.
"""

from conftest import ALL_SUITES, pct, print_table, suite_jar_sizes


def _rows():
    rows = []
    for name in ALL_SUITES:
        sizes = suite_jar_sizes(name)
        rows.append([
            name,
            round(sizes.sj0r / 1024, 1),
            round(sizes.jar / 1024, 1),
            round(sizes.sjar / 1024, 1),
            round(sizes.sj0r_gz / 1024, 1),
            pct(sizes.sjar, sizes.jar),
            pct(sizes.sj0r_gz, sizes.sjar),
            pct(sizes.sj0r_gz, sizes.sj0r),
        ])
    return rows


def test_table1(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    print_table(
        "Table 1: jar-format baselines (KBytes)",
        ["benchmark", "sj0r", "jar", "sjar", "sj0r.gz",
         "sjar/jar", "sj0r.gz/sjar", "sj0r.gz/sj0r"],
        rows)
    for row in rows:
        name = row[0]
        sizes = suite_jar_sizes(name)
        # Stripping always helps; whole-archive gzip beats per-file.
        assert sizes.sjar < sizes.jar, name
        assert sizes.sj0r_gz < sizes.sjar, name
        assert sizes.sj0r_gz < sizes.sj0r, name
        # Paper's bands (loose): stripping saves 4-60%, whole-archive
        # gzip saves a further 4-40%.
        assert 0.40 < sizes.sjar / sizes.jar < 0.97, name
        assert 0.45 < sizes.sj0r_gz / sizes.sjar < 0.97, name
