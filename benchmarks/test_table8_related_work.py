"""Table 8: wire-code compression results in related work.

The paper quotes (as % of gzip'd class files): Slim Binaries 59,
shrinkers 65-83, jar.gz 55-85, Clazz 52-90, Jazz 40-70, and this paper
17-41 (on programs > 10K).  We report the quoted ranges verbatim
alongside the ranges *measured* on our corpus for the rows we
implement (jar.gz = sj0r.gz, Clazz, Jazz, Packed).  Reproduction
target: the measured ranges preserve the ordering — Packed < Jazz <
Clazz/jar.gz — with Packed's band clearly the lowest.
"""

from repro.baselines.clazz import clazz_total_size
from repro.baselines.jazz import jazz_pack
from repro.pack import pack_archive

from conftest import print_table, suite_classfiles, suite_jar_sizes

#: Quoted ranges from the paper's Table 8 (% of gzip'd classfiles).
QUOTED = [
    ("Slim Binaries [KF97]", "59", None),
    ("JShrink, DashO, and Jax", "65-83", None),
    ("jar.gz format (2.1)", "55-85", "sj0r.gz"),
    ("Clazz format [HC98]", "52-90", "clazz"),
    ("Jazz format [BHV98]", "40-70", "jazz"),
    ("This paper (>10K programs)", "17-41", "packed"),
]

SUITES = ["raytrace", "jess", "icebrowserbean", "javac", "mpegaudio",
          "jack", "tools", "javafig", "ImageEditor"]


def _measure():
    measured = {"sj0r.gz": [], "clazz": [], "jazz": [], "packed": []}
    for name in SUITES:
        classfiles = suite_classfiles(name)
        baseline = suite_jar_sizes(name).sjar
        measured["sj0r.gz"].append(
            100 * suite_jar_sizes(name).sj0r_gz / baseline)
        measured["clazz"].append(
            100 * clazz_total_size(classfiles) / baseline)
        measured["jazz"].append(
            100 * len(jazz_pack(classfiles)) / baseline)
        measured["packed"].append(
            100 * len(pack_archive(classfiles)) / baseline)
    return measured


def test_table8(benchmark):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for label, quoted, key in QUOTED:
        if key is None:
            rows.append([label, quoted, "(not implemented)"])
        else:
            values = measured[key]
            rows.append([label, quoted,
                         f"{min(values):.0f}-{max(values):.0f}"])
    print_table("Table 8: related work (% of gzip'd classfiles; "
                "quoted vs measured)",
                ["system", "paper", "measured"], rows)
    # Ordering per suite: packed < jazz < clazz; jazz also beats
    # whole-archive gzip on average (the bands overlap across suites,
    # exactly as the paper's quoted ranges overlap).
    for packed, jazz, clazz in zip(measured["packed"], measured["jazz"],
                                   measured["clazz"]):
        assert packed < jazz < clazz
    assert sum(measured["jazz"]) / len(SUITES) < \
        sum(measured["sj0r.gz"]) / len(SUITES)
