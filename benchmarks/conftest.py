"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one table or figure from
the paper.  Suites are generated once per process and cached here;
"small" suites keep the default run fast, and the full 19-suite matrix
is used where the paper's table spans all benchmarks.
"""

from __future__ import annotations

import functools
from typing import Dict, List

from repro.classfile.classfile import ClassFile
from repro.corpus.suites import SUITE_ORDER, generate_suite
from repro.jar.formats import JarSizes, jar_sizes, strip_classes

#: Suites used when a table needs the whole corpus.  Ordered by size
#: so printed tables read like the paper's.
ALL_SUITES: List[str] = list(SUITE_ORDER)

#: Representative subset for expensive per-variant sweeps.
MEDIUM_SUITES = ["Hanoi", "compress", "db", "raytrace", "jess",
                 "icebrowserbean", "javac", "mpegaudio", "jack"]


@functools.lru_cache(maxsize=None)
def stripped_suite(name: str) -> tuple:
    """(ordered class files, stripped of debug info) for one suite."""
    classes = strip_classes(generate_suite(name))
    return tuple(classes[key] for key in sorted(classes))


@functools.lru_cache(maxsize=None)
def suite_jar_sizes(name: str) -> JarSizes:
    return jar_sizes(generate_suite(name))


def suite_classfiles(name: str) -> List[ClassFile]:
    return list(stripped_suite(name))


def print_table(title: str, header: List[str],
                rows: List[List[object]]) -> None:
    """Print one reproduction table in a fixed-width layout."""
    print(f"\n== {title} ==")
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w)
                        for cell, w in zip(row, widths)))


def pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.0f}%" if whole else "-"
