"""Figure 2: compression ratio vs jar size, for j0r.gz / Jazz / Packed.

The paper's scatter plot shows, for every benchmark, the size of each
format as a % of the jar file, against the jar file's size (log
scale).  Reproduction targets: the three series stay ordered
(Packed < Jazz < j0r.gz almost everywhere) and the Packed series
trends *down* as archives grow — bigger archives share more.
"""

import math

from repro.baselines.jazz import jazz_pack
from repro.pack import pack_archive

from conftest import (
    ALL_SUITES,
    print_table,
    suite_classfiles,
    suite_jar_sizes,
)


def _series():
    points = []
    for name in ALL_SUITES:
        sizes = suite_jar_sizes(name)
        classfiles = suite_classfiles(name)
        jar_kb = sizes.sjar / 1024
        points.append((
            name, jar_kb,
            100 * sizes.sj0r_gz / sizes.sjar,
            100 * len(jazz_pack(classfiles)) / sizes.sjar,
            100 * len(pack_archive(classfiles)) / sizes.sjar,
        ))
    points.sort(key=lambda p: p[1])
    return points


def test_figure2(benchmark):
    points = benchmark.pedantic(_series, rounds=1, iterations=1)
    rows = [[name, f"{jar_kb:.1f}", f"{j0rgz:.0f}%", f"{jazz:.0f}%",
             f"{packed:.0f}%"]
            for name, jar_kb, j0rgz, jazz, packed in points]
    print_table(
        "Figure 2: size as % of jar, by jar size (KBytes, ascending)",
        ["benchmark", "jar KB", "j0r.gz", "Jazz", "Packed"], rows)
    for name, _, j0rgz, jazz, packed in points:
        assert packed < jazz, name
        assert packed < j0rgz, name
    # Trend: regress packed% against log(jar size); slope must be
    # negative (compression improves with archive size).
    xs = [math.log(p[1]) for p in points]
    ys = [p[4] for p in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    slope = sum((x - mean_x) * (y - mean_y)
                for x, y in zip(xs, ys)) / \
        sum((x - mean_x) ** 2 for x in xs)
    assert slope < 0
