"""Adaptive scheme selection on the shaped corpus, at scale.

Not a paper table — the paper hand-picks its scheme per Table 3; this
benchmark guards the ``--scheme=auto`` replacement for that manual
step.  Four 1000+-class corpus shapes with deliberately different
reference statistics (deep inheritance chains, wide interface fan-out,
string-dominated pools, constant/reflection-heavy pools) are packed
with every scheme in the matrix and with ``auto``; the gate is the
ISSUE acceptance bar:

* **oracle** — auto's archive is within 1% of the best exhaustive
  per-scheme pack on every shape (in practice it ties the winner
  exactly: selection replays the real coders over the real reference
  trace, so the prediction is the ref-stream byte count, not a model);
* **self-describing** — the chosen scheme is readable back from the
  packed header with no side channel.

Timings report what adaptivity costs: ``select_s`` is the full
score-the-matrix pass, ``pack_s`` the subsequent pack, and
``overhead_x`` their sum against a plain single-scheme pack.

The JSON report is written to ``BENCH_scheme_auto.json`` at the repo
root and committed — ROADMAP item 4 asks for benchmark trajectory
files, so reruns show up as diffs.  The committed file is produced at
the full ``SHAPE_CLASSES`` scale; CI's smoke job shrinks the corpus
via ``REPRO_BENCH_SHAPE_CLASSES`` and does not commit.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.corpus import SHAPE_CLASSES, SHAPE_NAMES, generate_shape
from repro.ir.build import build_archive
from repro.jar.formats import strip_classes
from repro.pack import (
    PackOptions,
    pack_archive_ir,
    recorded_scheme,
    unpack_archive,
    wire,
)
from repro.refs.schemes import SCHEME_NAMES

from conftest import print_table

#: Class count per shape; override to shrink CI smoke runs.
CLASSES = int(os.environ.get("REPRO_BENCH_SHAPE_CLASSES",
                             SHAPE_CLASSES))

#: The acceptance bar: auto within 1% of the best exhaustive pack.
TOLERANCE = 1.01

REPORT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_scheme_auto.json"


def test_scheme_auto_matches_exhaustive_best():
    rows = []
    report = {
        "schema": "repro.bench.scheme_auto/1",
        "classes_per_shape": CLASSES,
        "tolerance": TOLERANCE,
        "python": platform.python_version(),
        "shapes": {},
    }
    failures = []
    for shape in SHAPE_NAMES:
        classes = strip_classes(generate_shape(shape, classes=CLASSES))
        classfiles = [classes[name] for name in sorted(classes)]
        archive = build_archive(classfiles)

        sizes = {}
        plain_s = None
        for scheme in SCHEME_NAMES:
            start = time.perf_counter()
            data, _ = pack_archive_ir(archive,
                                      PackOptions(scheme=scheme))
            elapsed = time.perf_counter() - start
            sizes[scheme] = len(data)
            if scheme == "mtf":
                plain_s = elapsed

        start = time.perf_counter()
        auto_data, compressor = pack_archive_ir(
            archive, PackOptions(scheme="auto"))
        auto_s = time.perf_counter() - start
        selection = compressor.selection

        best_scheme = min(sizes, key=sizes.get)
        best = sizes[best_scheme]
        recorded = recorded_scheme(auto_data)
        chosen = selection.options
        assert recorded == wire.scheme_variant(
            chosen.scheme, chosen.use_context, chosen.transients)
        # No side channel: plain default-options unpack must work.
        assert len(unpack_archive(auto_data)) == len(classfiles)
        if len(auto_data) > best * TOLERANCE:
            failures.append(
                f"{shape}: auto={len(auto_data)} (chose "
                f"{selection.chosen}) vs best {best_scheme}={best}")

        report["shapes"][shape] = {
            "chosen": selection.chosen,
            "recorded_variant": list(recorded),
            "references": selection.references,
            "predicted_ref_bytes": selection.scores,
            "packed_bytes": sizes,
            "auto_bytes": len(auto_data),
            "best_scheme": best_scheme,
            "deviation_pct": round(
                100.0 * (len(auto_data) - best) / best, 3),
            "select_plus_pack_s": round(auto_s, 3),
            "single_pack_s": round(plain_s, 3),
        }
        rows.append([shape, selection.chosen, best_scheme,
                     f"{len(auto_data)}", f"{best}",
                     f"{100.0 * (len(auto_data) - best) / best:+.3f}%",
                     f"{auto_s:.2f}s", f"{plain_s:.2f}s"])

    print_table(
        f"scheme=auto vs exhaustive matrix ({CLASSES} classes/shape)",
        ["shape", "auto chose", "best", "auto B", "best B",
         "deviation", "auto t", "mtf t"],
        rows)
    REPORT_PATH.write_text(json.dumps(report, indent=2,
                                      sort_keys=True) + "\n")
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])
