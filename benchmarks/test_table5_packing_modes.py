"""Table 5: effects of separate packing and of disabling gzip.

Paper rows (as % of the gzip'd-classfile jar): Standard, Packed
Separately, Not gzip'd, Packed Separately and not gzip'd, for javac
and mpegaudio.  Reproduction targets: Standard is far below 100%;
packing each class separately costs a lot (sharing is a large part of
the win); disabling the zlib stage costs even more; doing both can
approach or exceed the jar size.
"""

from repro.pack import PackOptions, pack_archive
from repro.pack import pack_each_separately

from conftest import pct, print_table, suite_classfiles, suite_jar_sizes

SUITES = ["javac", "mpegaudio"]


def _measure():
    results = {}
    for name in SUITES:
        classfiles = suite_classfiles(name)
        baseline = suite_jar_sizes(name).sjar
        standard = len(pack_archive(classfiles))
        separate = pack_each_separately(classfiles)
        no_gzip = len(pack_archive(classfiles,
                                   PackOptions(compress=False)))
        separate_no_gzip = pack_each_separately(
            classfiles, PackOptions(compress=False))
        results[name] = {
            "Standard": standard,
            "Packed Separately": separate,
            "Not gzip'd": no_gzip,
            "Packed Separately and not gzip'd": separate_no_gzip,
            "_baseline": baseline,
        }
    return results


def test_table5(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    options = ["Standard", "Packed Separately", "Not gzip'd",
               "Packed Separately and not gzip'd"]
    rows = []
    for option in options:
        row = [option]
        for name in SUITES:
            data = results[name]
            row.append(pct(data[option], data["_baseline"]))
        rows.append(row)
    print_table("Table 5: packing modes (% of sjar baseline)",
                ["option"] + SUITES, rows)
    for name in SUITES:
        data = results[name]
        baseline = data["_baseline"]
        assert data["Standard"] < baseline * 0.6, name
        assert data["Packed Separately"] > data["Standard"] * 1.3, name
        assert data["Not gzip'd"] > data["Standard"] * 1.3, name
        assert data["Packed Separately and not gzip'd"] > \
            data["Not gzip'd"], name
