"""Table 6: compression ratios for every benchmark.

Paper columns: sizes (KBytes) of jar, j0r.gz, Jazz and Packed; the
three as % of jar; and the Packed archive's composition (strings /
opcodes / ints / refs / misc).  Reproduction targets: Packed < Jazz
and Packed < j0r.gz everywhere; Packed lands around 17-49% of the jar
baseline; and no single component of the packed archive dominates.
"""

from repro.baselines.jazz import jazz_pack
from repro.pack import pack_archive_with_stats

from conftest import (
    ALL_SUITES,
    pct,
    print_table,
    suite_classfiles,
    suite_jar_sizes,
)


def _measure():
    results = {}
    for name in ALL_SUITES:
        classfiles = suite_classfiles(name)
        sizes = suite_jar_sizes(name)
        jazz = len(jazz_pack(classfiles))
        packed, stats = pack_archive_with_stats(classfiles)
        results[name] = (sizes, jazz, len(packed), stats)
    return results


def test_table6(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for name in ALL_SUITES:
        sizes, jazz, packed, stats = results[name]
        rows.append([
            name,
            round(sizes.sjar / 1024, 1),
            round(sizes.sj0r_gz / 1024, 1),
            round(jazz / 1024, 1),
            round(packed / 1024, 1),
            pct(sizes.sj0r_gz, sizes.sjar),
            pct(jazz, sizes.sjar),
            pct(packed, sizes.sjar),
            pct(stats.by_category.get("strings", 0), stats.total),
            pct(stats.by_category.get("opcodes", 0), stats.total),
            pct(stats.by_category.get("ints", 0), stats.total),
            pct(stats.by_category.get("refs", 0), stats.total),
            pct(stats.by_category.get("misc", 0), stats.total),
        ])
    print_table(
        "Table 6: compression ratios (sizes in KBytes; jar = sjar)",
        ["benchmark", "jar", "j0r.gz", "Jazz", "Packed",
         "j0r.gz%", "Jazz%", "Packed%",
         "Strings", "Opcodes", "Ints", "Refs", "Misc"],
        rows)
    for name in ALL_SUITES:
        sizes, jazz, packed, stats = results[name]
        # Packed beats every baseline, everywhere.
        assert packed < sizes.sj0r_gz, name
        assert packed < jazz, name
        # Packed lands in the paper's band as % of the jar baseline
        # (17-49% in the paper; allow a wider band for the synthetic
        # corpus, and wider still for the sub-4K toy suites where
        # fixed overheads dominate — the paper's smallest row is 21K).
        ratio = packed / sizes.sjar
        ceiling = 0.60 if sizes.sjar >= 4096 else 0.75
        assert 0.10 < ratio < ceiling, (name, ratio)
        # "No one element dominates": every category below 60%.
        for category in ("strings", "opcodes", "ints", "refs", "misc"):
            assert stats.fraction(category) < 0.60, (name, category)
    # Larger archives compress *better* (more sharing) — compare the
    # biggest against the smallest.
    big = results["rt"][2] / results["rt"][0].sjar
    small = results["Hanoi_jax"][2] / results["Hanoi_jax"][0].sjar
    assert big < small
