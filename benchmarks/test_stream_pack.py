"""Memory-bounded streaming pack at scale: identity and a hard cap.

The ISSUE acceptance gate for the spill-to-disk encode path: packing
a 1000+-class shaped corpus with a ``memory_budget`` must produce
bytes identical to the in-memory path on **both** codec backends,
must actually spill (the budget is far below the stream total), and
the serialize phase — where the in-memory path materializes the frame
plus both compression candidates, i.e. the whole-archive footprint —
must stay under a hard allocation cap well below that footprint.

Each configuration runs in its own subprocess
(``_stream_pack_child.py``) with ``tracemalloc`` started *after*
corpus generation and IR build, so the measured peaks are the pack
phases alone.  Process-level RSS is recorded for the report but not
gated: at megabyte scale the interpreter's allocator reuses arenas
freed by corpus generation, so ``ru_maxrss`` deltas measure the
corpus, not the codec (methodology in ``docs/PERFORMANCE.md``).  The
cap is enforced twice — inside the child (exit status 3 on breach)
and re-asserted here from the reported numbers.

The JSON report is written to ``BENCH_stream_pack.json`` at the repo
root and committed, produced at the full ``SHAPE_CLASSES`` scale;
CI's smoke job shrinks the corpus via ``REPRO_BENCH_SHAPE_CLASSES``
and does not commit.
"""

import json
import os
import platform
import subprocess
import sys
from pathlib import Path

import pytest

from repro.corpus import SHAPE_CLASSES

from conftest import print_table

#: Class count; override to shrink CI smoke runs.
CLASSES = int(os.environ.get("REPRO_BENCH_SHAPE_CLASSES",
                             SHAPE_CLASSES))

#: The shape under test.  ``const_heavy`` has the largest stream
#: total of the four shapes, so it exercises the widest spill.
SHAPE = "const_heavy"

#: Spool budget: far below the shape's ~1.4 MB stream total, so the
#: plan must spill most streams, yet large enough that the run is not
#: dominated by flush overhead.
BUDGET = 64 * 1024

#: Hard cap on serialize-phase allocation for the budgeted path:
#: the spool windows plus chunked zlib copies, with slack.  At full
#: scale the in-memory path's serialize phase allocates ~3.4 MB here
#: (the whole-archive footprint); the cap sits well below it, and the
#: gap is asserted to be at least 2x.
SERIALIZE_CAP = max(16 * BUDGET, 1 << 20)

RUNS = [("full", "compiled"), ("full", "interpreted"),
        ("stream", "compiled"), ("stream", "interpreted")]

CHILD = Path(__file__).resolve().parent / "_stream_pack_child.py"
REPORT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_stream_pack.json"


def _run_child(mode: str, backend: str) -> dict:
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                      else []))
    cmd = [sys.executable, str(CHILD), "--mode", mode,
           "--backend", backend, "--shape", SHAPE,
           "--classes", str(CLASSES), "--budget", str(BUDGET)]
    if mode == "stream":
        cmd += ["--serialize-cap-bytes", str(SERIALIZE_CAP)]
    proc = subprocess.run(cmd, env=env, capture_output=True,
                          text=True, timeout=1800)
    assert proc.returncode == 0, (
        f"{mode}/{backend} child failed (exit {proc.returncode}):\n"
        f"{proc.stderr}")
    return json.loads(proc.stdout)


def test_stream_pack_identity_under_cap():
    results = {f"{mode}/{backend}": _run_child(mode, backend)
               for mode, backend in RUNS}

    digests = {key: run["digest"] for key, run in results.items()}
    assert len(set(digests.values())) == 1, (
        "packed bytes differ across modes/backends: " + repr(digests))

    for key, run in results.items():
        if run["spool"] is None:
            continue
        assert run["spool"]["spilled_streams"] > 0, key
        assert run["spool"]["spilled_bytes"] > BUDGET, (
            f"{key}: budget did not force a meaningful spill: "
            f"{run['spool']}")
        # The hard cap, re-asserted from the child's numbers (the
        # child already enforced it with exit status 3).
        assert run["serialize_delta_kb"] * 1024 <= SERIALIZE_CAP, key

    full = results["full/compiled"]
    stream = results["stream/compiled"]
    if CLASSES >= SHAPE_CLASSES:
        # At full scale the cap must be *meaningful*: the in-memory
        # serialize phase (whole-archive footprint) allocates at
        # least twice what the budgeted path does.
        assert full["serialize_delta_kb"] >= \
            2 * stream["serialize_delta_kb"], (
                f"in-memory serialize {full['serialize_delta_kb']}K "
                f"vs budgeted {stream['serialize_delta_kb']}K: cap "
                "no longer sits well below the in-memory footprint")

    rows = [[key, run["packed_bytes"], run["codec_peak_kb"],
             run["serialize_delta_kb"],
             run["spool"]["spilled_bytes"] if run["spool"] else "-",
             run["ru_maxrss_kb"],
             f"{run['seconds']['codec'] + run['seconds']['serialize']:.1f}s"]
            for key, run in results.items()]
    print_table(
        f"streaming pack, {SHAPE} x{CLASSES} (budget {BUDGET}B, "
        f"cap {SERIALIZE_CAP}B)",
        ["run", "packed B", "codec peak K", "ser delta K",
         "spilled B", "maxrss K", "pack t"],
        rows)

    report = {
        "schema": "repro.bench.stream_pack/1",
        "shape": SHAPE,
        "classes": CLASSES,
        "budget_bytes": BUDGET,
        "serialize_cap_bytes": SERIALIZE_CAP,
        "digest": next(iter(digests.values())),
        "python": platform.python_version(),
        "runs": results,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2,
                                      sort_keys=True) + "\n")


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])
