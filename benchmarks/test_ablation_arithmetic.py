"""Section 5 ablation: zlib vs arithmetic coding of MTF indices.

The paper compared zlib on the MTF-encoded byte stream against an
adaptive arithmetic coder on the MTF indices, for virtual-method
references in rt.jar: "using zlib gave results that were 2% bigger
than an Arithmetic encoding" — before counting the arithmetic coder's
dictionary, which erased the win.  Reproduction target: the
arithmetic coder lands within a few percent of zlib (either side) on
the MTF index stream of the largest suite, i.e. there is no benefit
worth a custom decoder.
"""

import zlib

from repro.coding.arithmetic import arithmetic_decode, arithmetic_encode
from repro.coding.varint import decode_uvarints, encode_uvarints
from repro.ir.build import build_archive
from repro.pack.compressor import Compressor
from repro.pack.options import PackOptions

from conftest import print_table, suite_classfiles


def _method_indices(name):
    """The raw MTF index sequence of the method-reference stream."""
    archive = build_archive(suite_classfiles(name))
    compressor = Compressor(PackOptions(use_context=False,
                                        transients=False))
    compressor.pack(archive)
    raw = compressor.streams.stream("refs.method").getvalue()
    return decode_uvarints(raw)


def _measure():
    results = {}
    for name in ("rt", "javac"):
        indices = _method_indices(name)
        alphabet = max(indices) + 1
        zlib_size = len(zlib.compress(encode_uvarints(indices), 9))
        arith = arithmetic_encode(indices, alphabet)
        decoded = arithmetic_decode(arith, len(indices), alphabet)
        assert decoded == indices
        results[name] = (len(indices), zlib_size, len(arith))
    return results


def test_ablation_arithmetic(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [[name, count, zlib_size, arith_size,
             f"{100 * zlib_size / arith_size - 100:+.1f}%"]
            for name, (count, zlib_size, arith_size) in results.items()]
    print_table(
        "Section 5 ablation: MTF method-ref indices, zlib vs arithmetic",
        ["suite", "refs", "zlib bytes", "arithmetic bytes",
         "zlib vs arith"], rows)
    for name, (count, zlib_size, arith_size) in results.items():
        # Within +-20% of each other: no decisive win for a custom
        # arithmetic decoder (the paper found ~2% and rejected it).
        assert 0.8 < zlib_size / arith_size < 1.25, name
