"""Table 4: compression of bytecode components (javac & mpegaudio).

Paper rows: the undivided bytestream, the opcode stream, opcodes with
stack-state collapsing, opcodes with custom pair opcodes, register
numbers, branch offsets, method references — each as compressed/raw.
Reproduction targets: separating opcodes from operands improves their
compression versus the mixed bytestream; stack-state collapsing
improves the opcode stream further; custom opcodes shrink the raw
stream a lot but barely help after zlib (which is why the paper
dropped them); mpegaudio's opcode stream is extremely compressible.
"""

from repro.bytecode_codec.analysis import bytecode_components

from conftest import print_table, suite_classfiles

SUITES = ["javac", "mpegaudio"]
COMPONENTS = ["bytestream", "opcodes", "opcodes_stack_state",
              "opcodes_custom", "registers", "branch_offsets",
              "method_references"]


def _measure():
    return {name: bytecode_components(suite_classfiles(name))
            for name in SUITES}


def test_table4(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for component in COMPONENTS:
        row = [component]
        for name in SUITES:
            sizes = results[name][component]
            row.append(f"{sizes.compressed}/{sizes.raw} "
                       f"({100 * sizes.ratio:.0f}%)")
        rows.append(row)
    print_table("Table 4: bytecode component compression "
                "(zlib/raw bytes)", ["component"] + SUITES, rows)
    for name in SUITES:
        components = results[name]
        # Stream separation wins overall: the separated components
        # together compress smaller than the undivided bytestream.
        separated = (components["opcodes_stack_state"].compressed +
                     components["registers"].compressed +
                     components["branch_offsets"].compressed +
                     components["method_references"].compressed)
        assert separated < components["bytestream"].compressed, name
        # Stack-state collapsing helps the opcode stream.
        assert components["opcodes_stack_state"].compressed <= \
            components["opcodes"].compressed, name
        # Custom opcodes shrink the raw stream substantially...
        assert components["opcodes_custom"].raw < \
            components["opcodes_stack_state"].raw * 0.9, name
        # ...but the compressed win is marginal (the paper's verdict).
        assert components["opcodes_custom"].compressed > \
            components["opcodes_stack_state"].compressed * 0.8, name
    # mpegaudio's table-heavy code has the more compressible opcode
    # stream of the two (the paper: 17% vs 36%), and there opcode
    # separation beats the undivided bytestream outright.
    assert results["mpegaudio"]["opcodes"].ratio < \
        results["javac"]["opcodes"].ratio
    assert results["mpegaudio"]["opcodes"].ratio < \
        results["mpegaudio"]["bytestream"].ratio
