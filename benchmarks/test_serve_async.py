"""Asyncio gateway under a mixed client fleet: throughput, p99, and
the sharded-cache win.

Not a paper table — this guards the serving claims of the
``repro.gateway`` subsystem (``repro serve --async``):

* **fleet**: a concurrent fleet of mixed clients — *cold* (full
  ``POST /pack`` downloads), *warm* (conditional ``POST /pack`` with
  ``If-None-Match``, expecting 304), and *update* (``POST /delta``
  advertising the previous release via ``X-Repro-Have``) — must
  sustain a floor of requests/second with every response correct, and
  the warm path's p99 must stay under a generous ceiling (warm is a
  key hash plus a header compare; if its tail grows, conditional GET
  stopped short-circuiting);
* **release chain**: the update clients' delta must be strictly
  smaller than the full pack of the same release (on a shaped corpus
  with ~1% of classes changed it lands far below it);
* **shards**: under concurrent disk-hit traffic, the sharded cache
  must beat the single-lock :class:`ResultCache` on read throughput —
  the single lock is held across spill-file reads, which is exactly
  the serialization the shards remove.  Page-cache-backed tmpfs reads
  are too fast (and GIL/memory-bandwidth-bound) to expose that
  serialization, so the microbenchmark injects a fixed simulated
  device latency into the spill-read path of *both* caches — a
  GIL-releasing sleep standing in for real storage — and measures
  concurrent disk-hit throughput.  The single lock serializes the
  latency; the shards overlap it; the ratio is gated.

The JSON report is written to ``BENCH_serve_async.json`` at the repo
root and committed from a full-scale run; CI's smoke job shrinks the
corpus via ``REPRO_BENCH_SHAPE_CLASSES`` and does not commit.
"""

import hashlib
import json
import os
import platform
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.classfile.classfile import write_class
from repro.corpus import SHAPE_CLASSES, generate_shape
from repro.gateway import AsyncGateway, ShardedResultCache
from repro.jar.jarfile import make_jar
from repro.service import BatchEngine, ResultCache

from conftest import print_table

#: Class count; override to shrink CI smoke runs.
CLASSES = int(os.environ.get("REPRO_BENCH_SHAPE_CLASSES",
                             SHAPE_CLASSES))
SHAPE = "string_heavy"

#: Fleet composition: clients per kind x requests per client.
CLIENTS_PER_KIND = 4
REQUESTS_PER_CLIENT = 6

#: Gates.  The fleet phase is all served from the warm cache (the
#: cold packs happen during priming), so these floors are far below
#: what any healthy machine does; they trip on regressions like a
#: lost 304 path or a delta recomputed per request, not on slow CI.
#: The warm ceiling covers the full 1100-class scale, where every
#: conditional request still parses its jar body to compute the
#: content key (~tens of ms) and 12 concurrent GIL-bound parses
#: stack up the tail; at CI smoke scale the p99 sits near 75ms.
THROUGHPUT_FLOOR_RPS = 5.0
WARM_P99_CEILING_MS = 1500.0

#: The sharded cache must beat the single lock on concurrent
#: disk-hit reads by at least this factor (measured best-of-rounds).
#: With 8 shards and 8 readers the overlap factor approaches 8x;
#: the floor sits far below it so scheduler noise cannot trip it.
SHARD_RATIO_FLOOR = 2.0

#: Cache-contention microbenchmark shape: enough distinct spilled
#: entries to spread across 8 shards, plus the simulated per-read
#: device latency (a GIL-releasing sleep both caches pay on every
#: spill read).
CONTENTION_KEYS = 32
CONTENTION_VALUE_BYTES = 64 * 1024
CONTENTION_THREADS = 8
CONTENTION_OPS = 150
CONTENTION_ROUNDS = 2
SIMULATED_DISK_LATENCY = 0.001

REPORT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_serve_async.json"


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       int(q * len(ordered)))]


# -- corpus: two consecutive releases -----------------------------------


def _mutate(classfiles, count):
    """``count`` classes semantically changed (ACC_FINAL toggled),
    spread across the archive — the delta benchmark's idiom."""
    import copy

    mutated = [copy.deepcopy(classfile) for classfile in classfiles]
    n = len(mutated)
    for i in range(count):
        mutated[(i * 7) % n].access_flags ^= 0x0010
    return mutated


@pytest.fixture(scope="module")
def releases():
    suite = generate_shape(SHAPE, CLASSES)
    v1 = [suite[name] for name in sorted(suite)]
    v2 = _mutate(v1, max(1, len(v1) // 100))
    jars = tuple(
        make_jar(sorted((c.name + ".class", write_class(c))
                        for c in version))
        for version in (v1, v2))
    return jars  # (jar_v1, jar_v2)


# -- HTTP client helpers ------------------------------------------------


def _request(address, path, body=None, headers=None):
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body,
        headers=headers or {},
        method="POST" if body is not None else "GET")
    return urllib.request.urlopen(request, timeout=120)


def _timed(kind, address, path, body, headers, check):
    start = time.perf_counter()
    status = None
    try:
        response = _request(address, path, body, headers)
        payload = response.read()
        status = response.status
    except urllib.error.HTTPError as err:
        payload = err.read()
        status = err.code
    elapsed = time.perf_counter() - start
    ok = check(status, payload)
    return {"kind": kind, "ms": elapsed * 1000.0, "ok": ok,
            "status": status}


def test_fleet_throughput_and_p99(releases):
    jar_v1, jar_v2 = releases
    engine = BatchEngine(workers=0, cache=ShardedResultCache())
    with AsyncGateway(engine, port=0) as gateway:
        address = gateway.start_background()

        # Prime: publish both releases (the only cold packs) and
        # learn their keys and sizes.
        first = _request(address, "/pack", jar_v1)
        key_v1 = first.headers["X-Repro-Key"]
        first.read()
        second = _request(address, "/pack", jar_v2)
        key_v2 = second.headers["X-Repro-Key"]
        full_v2 = second.read()
        assert key_v1 != key_v2

        delta_response = _request(address, "/delta", jar_v2,
                                  {"X-Repro-Have": key_v1})
        assert delta_response.headers["X-Repro-Served"] == "delta"
        delta_bytes = len(delta_response.read())
        # Release-chain gate: the advertised-base delta is strictly
        # smaller than re-shipping the full pack.
        assert delta_bytes < len(full_v2), (
            f"delta {delta_bytes}B not smaller than full pack "
            f"{len(full_v2)}B")

        def cold(_):
            return _timed(
                "cold", address, "/pack", jar_v2, {},
                lambda status, payload:
                    status == 200 and payload == full_v2)

        def warm(_):
            return _timed(
                "warm", address, "/pack", jar_v2,
                {"If-None-Match": f'"{key_v2}"'},
                lambda status, payload:
                    status == 304 and payload == b"")

        def update(_):
            return _timed(
                "update", address, "/delta", jar_v2,
                {"X-Repro-Have": key_v1},
                lambda status, payload:
                    status == 200 and len(payload) == delta_bytes)

        fleet = ([cold] * CLIENTS_PER_KIND +
                 [warm] * CLIENTS_PER_KIND +
                 [update] * CLIENTS_PER_KIND)

        def client(worker):
            return [worker(i) for i in range(REQUESTS_PER_CLIENT)]

        start = time.perf_counter()
        with ThreadPoolExecutor(len(fleet)) as pool:
            outcomes = [sample
                        for batch in pool.map(client, fleet)
                        for sample in batch]
        elapsed = time.perf_counter() - start

        stats_doc = json.loads(_request(address, "/stats").read())
    engine.close()

    assert all(sample["ok"] for sample in outcomes), (
        "fleet saw wrong responses: "
        f"{[s for s in outcomes if not s['ok']][:5]}")
    total = len(outcomes)
    throughput = total / elapsed
    by_kind = {}
    for sample in outcomes:
        by_kind.setdefault(sample["kind"], []).append(sample["ms"])
    latencies = {
        kind: {
            "count": len(samples),
            "mean_ms": round(sum(samples) / len(samples), 3),
            "p50_ms": round(_percentile(samples, 0.50), 3),
            "p99_ms": round(_percentile(samples, 0.99), 3),
        }
        for kind, samples in sorted(by_kind.items())
    }

    print_table(
        f"gateway fleet, {SHAPE} x{CLASSES} "
        f"({total} requests in {elapsed:.2f}s, "
        f"{throughput:.0f} req/s)",
        ["clients", "n", "mean ms", "p50 ms", "p99 ms"],
        [[kind, row["count"], row["mean_ms"], row["p50_ms"],
          row["p99_ms"]]
         for kind, row in latencies.items()])

    warm_p99 = latencies["warm"]["p99_ms"]
    assert throughput >= THROUGHPUT_FLOOR_RPS, (
        f"fleet throughput {throughput:.1f} req/s below floor "
        f"{THROUGHPUT_FLOOR_RPS}")
    assert warm_p99 <= WARM_P99_CEILING_MS, (
        f"warm-client p99 {warm_p99:.1f}ms above ceiling "
        f"{WARM_P99_CEILING_MS}ms: conditional GET stopped "
        "short-circuiting")

    contention = _measure_cache_contention()
    _write_report(latencies, throughput, elapsed, total,
                  delta_bytes, len(full_v2), stats_doc, contention)


# -- sharded vs single-lock contention ----------------------------------


def _contention_entries():
    entries = {}
    for i in range(CONTENTION_KEYS):
        key = hashlib.sha256(f"hot-archive-{i}".encode()).hexdigest()
        seed = key.encode()
        entries[key] = (seed * (CONTENTION_VALUE_BYTES //
                                len(seed) + 1))[:CONTENTION_VALUE_BYTES]
    return entries


class _SlowPath:
    """A spill path with simulated device latency.

    ``time.sleep`` releases the GIL exactly like a blocking ``read``
    on real storage, so the sleep reproduces the structural cost the
    page cache hides: the single-lock cache holds its one lock across
    it, the sharded cache holds only the key's shard lock.
    """

    def __init__(self, path):
        self._path = path

    def read_bytes(self):
        time.sleep(SIMULATED_DISK_LATENCY)
        return self._path.read_bytes()


def _slow_disk(cache):
    """Wrap a ResultCache's spill paths in simulated latency."""
    original = cache._spill_path
    cache._spill_path = lambda key: _SlowPath(original(key))


def _hammer_reads(cache, keys):
    """CONTENTION_THREADS readers x CONTENTION_OPS random gets;
    returns ops/second."""
    import random

    def reader(seed):
        rng = random.Random(seed)
        for _ in range(CONTENTION_OPS):
            data, _ = cache.get(keys[rng.randrange(len(keys))])
            assert data is not None
        return CONTENTION_OPS

    start = time.perf_counter()
    with ThreadPoolExecutor(CONTENTION_THREADS) as pool:
        done = sum(pool.map(reader, range(CONTENTION_THREADS)))
    return done / (time.perf_counter() - start)


def _measure_cache_contention():
    import tempfile

    entries = _contention_entries()
    keys = list(entries)
    best = {"single": 0.0, "sharded": 0.0}
    with tempfile.TemporaryDirectory() as spill_a, \
            tempfile.TemporaryDirectory() as spill_b:
        # max_bytes=0 keeps every entry on disk, so each get is a
        # spill-file read — the single lock serializes them, the
        # shards overlap them.
        single = ResultCache(max_bytes=0, spill_dir=spill_a)
        sharded = ShardedResultCache(shards=8, max_bytes=0,
                                     spill_dir=spill_b)
        for key, value in entries.items():
            single.put(key, value)
            sharded.put(key, value)
        # Inject the simulated device latency after priming, so the
        # setup puts run at tmpfs speed and only the measured reads
        # pay it.
        _slow_disk(single)
        for shard in sharded._shards:
            _slow_disk(shard)
        for _ in range(CONTENTION_ROUNDS):  # interleave the rounds
            best["single"] = max(best["single"],
                                 _hammer_reads(single, keys))
            best["sharded"] = max(best["sharded"],
                                  _hammer_reads(sharded, keys))
    ratio = best["sharded"] / best["single"]
    print_table(
        f"cache contention: {CONTENTION_THREADS} readers, "
        f"{CONTENTION_KEYS} spilled entries x "
        f"{CONTENTION_VALUE_BYTES >> 10}KiB, "
        f"{SIMULATED_DISK_LATENCY * 1000:.0f}ms simulated device "
        "latency",
        ["cache", "ops/s", "ratio"],
        [["single-lock", f"{best['single']:.0f}", "1.00x"],
         ["sharded x8", f"{best['sharded']:.0f}",
          f"{ratio:.2f}x"]])
    assert ratio >= SHARD_RATIO_FLOOR, (
        f"sharded cache only {ratio:.2f}x the single lock "
        f"(floor {SHARD_RATIO_FLOOR}x)")
    return {
        "threads": CONTENTION_THREADS,
        "entries": CONTENTION_KEYS,
        "value_bytes": CONTENTION_VALUE_BYTES,
        "simulated_disk_latency_s": SIMULATED_DISK_LATENCY,
        "single_ops_per_s": round(best["single"], 1),
        "sharded_ops_per_s": round(best["sharded"], 1),
        "ratio": round(ratio, 3),
        "ratio_floor": SHARD_RATIO_FLOOR,
    }


def _write_report(latencies, throughput, elapsed, total,
                  delta_bytes, full_bytes, stats_doc, contention):
    report = {
        "schema": "repro.bench.serve_async/1",
        "shape": SHAPE,
        "classes": CLASSES,
        "python": platform.python_version(),
        "fleet": {
            "clients_per_kind": CLIENTS_PER_KIND,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "requests": total,
            "seconds": round(elapsed, 3),
            "throughput_rps": round(throughput, 1),
            "throughput_floor_rps": THROUGHPUT_FLOOR_RPS,
            "warm_p99_ceiling_ms": WARM_P99_CEILING_MS,
            "latency_ms": latencies,
        },
        "release_chain": {
            "full_bytes": full_bytes,
            "delta_bytes": delta_bytes,
            "ratio": round(delta_bytes / full_bytes, 4),
        },
        "gateway_stats": {
            "counters": stats_doc["gateway"]["counters"],
            "releases": stats_doc["gateway"]["releases"],
            "shards": stats_doc["cache"]["shards"],
        },
        "cache_contention": contention,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2,
                                      sort_keys=True) + "\n")


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])
