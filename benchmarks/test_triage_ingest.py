"""Triage ingest throughput and accounting on a nested corpus.

Not a paper table — the paper assumes clean jars; this benchmark
guards the ``repro.triage`` front door that feeds the pipeline from
real-world layouts (see ``docs/TRIAGE.md``).  A corpus of shaped
1000+-class jars is arranged the way inputs actually arrive — a flat
MRJAR with a ``META-INF/versions/`` layer, a jar with another jar
nested under ``lib/``, and a gzip-wrapped jar — and ingested under
the default budget.  The gate:

* **throughput** — ingest sustains a conservative floor (MB of input
  per second of wall clock; the walk is zipfile + zlib work, so the
  floor is far below what any healthy run achieves);
* **exact accounting** — every class in the corpus is recovered
  exactly once, every resource routed to the fallback pile, zero
  errors, zero truncations, and the one deliberate MRJAR shadow is
  the only skip.  A bounded ingest that loses or double-counts
  entries fails here, not in production.

The JSON report is written to ``BENCH_triage_ingest.json`` at the
repo root and committed — reruns show up as diffs.  The committed
file is produced at the full ``SHAPE_CLASSES`` scale; CI's smoke job
shrinks the corpus via ``REPRO_BENCH_SHAPE_CLASSES``.
"""

import gzip
import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.classfile.classfile import write_class
from repro.corpus import SHAPE_CLASSES, generate_shape
from repro.jar.jarfile import make_jar
from repro.jar.manifest import class_entry_name
from repro.triage import TriageBudget, triage_bytes

from conftest import print_table

#: Class count per shape; override to shrink CI smoke runs.
CLASSES = int(os.environ.get("REPRO_BENCH_SHAPE_CLASSES",
                             SHAPE_CLASSES))

#: Conservative floor, in MB of (compressed) input per second.
FLOOR_MB_S = 2.0

REPORT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_triage_ingest.json"


def _entries(shape):
    classes = generate_shape(shape, classes=CLASSES)
    return [(class_entry_name(name), write_class(classes[name]))
            for name in sorted(classes)]


def _corpus():
    """(root name -> root bytes, expected totals) for the layouts."""
    deep = _entries("inherit_deep")
    interfaces = _entries("interface_heavy")
    strings = _entries("string_heavy")
    consts = _entries("const_heavy")

    # A flat MRJAR: one class also ships a version-11 layer, which
    # must win (and leave exactly one mrjar-shadowed skip behind).
    layered_name, layered_data = deep[0]
    mrjar = make_jar(deep + [
        ("app.properties", b"retries=3\ncolor=blue\n"),
        ("META-INF/notes.txt", b"shaped corpus, inherit_deep\n"),
        (f"META-INF/versions/11/{layered_name}", layered_data),
    ])

    # A jar with a second jar nested under lib/.
    inner = make_jar(strings + [("strings.properties", b"greeting=hi\n")])
    nested = make_jar(interfaces + [("lib/strings.jar", inner)])

    # A gzip-wrapped jar, as served by download mirrors.
    gzipped = gzip.compress(
        make_jar(consts + [("consts.txt", b"tables\n")]), 9)

    # Shapes can share class names; within one ingest the duplicate
    # dedups first-wins (one skip each), so expectations come from
    # the union, not the sum.
    nested_names = {name for name, _ in interfaces} | \
                   {name for name, _ in strings}
    dup_skips = len(interfaces) + len(strings) - len(nested_names)
    expected = {
        "classes": len(deep) + len(nested_names) + len(consts),
        "resources": 4,
        "artifacts": 5,   # mrjar; nested + inner; gzip + its jar
        # the shadowed base copy of layered_name, plus one
        # duplicate-class skip per name the two nested shapes share.
        "skips": 1 + dup_skips,
    }
    return {"mrjar.jar": mrjar,
            "nested.jar": nested,
            "consts.jar.gz": gzipped}, expected


def test_triage_ingest_throughput_and_accounting():
    corpus, expected = _corpus()
    budget = TriageBudget()
    rows = []
    report = {
        "schema": "repro.bench.triage_ingest/1",
        "classes_per_shape": CLASSES,
        "floor_mb_s": FLOOR_MB_S,
        "python": platform.python_version(),
        "roots": {},
    }
    got = {"classes": 0, "resources": 0, "artifacts": 0, "skips": 0,
           "errors": 0, "truncations": 0}
    total_bytes = 0
    total_s = 0.0
    for name, data in corpus.items():
        start = time.perf_counter()
        result = triage_bytes(data, name=name, budget=budget)
        elapsed = time.perf_counter() - start
        totals = result.report.totals()
        assert len(result.classes) == totals["classes"], name
        for key in got:
            got[key] += totals[key]
        total_bytes += len(data)
        total_s += elapsed
        mb_s = len(data) / max(elapsed, 1e-9) / 1e6
        report["roots"][name] = {
            "input_bytes": len(data),
            "artifacts": totals["artifacts"],
            "entries": totals["entries"],
            "classes": totals["classes"],
            "resources": totals["resources"],
            "max_depth": totals["max_depth"],
            "seconds": round(elapsed, 4),
            "mb_s": round(mb_s, 2),
        }
        rows.append([name, f"{len(data)}", totals["artifacts"],
                     totals["entries"], totals["classes"],
                     totals["resources"], f"{elapsed:.3f}s",
                     f"{mb_s:.1f}"])

    overall_mb_s = total_bytes / max(total_s, 1e-9) / 1e6
    report["totals"] = dict(got, input_bytes=total_bytes,
                            seconds=round(total_s, 4),
                            mb_s=round(overall_mb_s, 2))
    print_table(
        f"triage ingest ({CLASSES} classes/shape, "
        f"floor {FLOOR_MB_S} MB/s)",
        ["root", "bytes", "artifacts", "entries", "classes",
         "resources", "t", "MB/s"],
        rows)
    REPORT_PATH.write_text(json.dumps(report, indent=2,
                                      sort_keys=True) + "\n")

    assert got["errors"] == 0
    assert got["truncations"] == 0
    for key in ("classes", "resources", "artifacts", "skips"):
        assert got[key] == expected[key], \
            f"{key}: got {got[key]}, expected {expected[key]}"
    assert overall_mb_s >= FLOOR_MB_S, \
        f"ingest ran at {overall_mb_s:.2f} MB/s, floor {FLOOR_MB_S}"


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])
