"""Subprocess worker for ``test_stream_pack.py``.

One fresh interpreter per (mode, backend) run, so allocator state from
one configuration cannot leak into another's measurements.  The child
generates the shaped corpus, builds the IR, and only then starts
``tracemalloc`` — the reported peaks cover the *pack* phases alone,
not corpus generation (which dominates process RSS and is identical
for every mode; see ``docs/PERFORMANCE.md``).

Two phase measurements come out:

* ``codec_peak_kb`` — peak traced allocation across the count and
  encode passes (stream writers, coder state, and on the budgeted
  path the layout sizing sub-pass);
* ``serialize_delta_kb`` — peak traced allocation *growth* over the
  post-codec baseline while serializing the container.  This is the
  phase the spool layer bounds: the in-memory path materializes the
  frame plus both compression candidates here, the budgeted path
  streams spool chunks through temp files.

The pack mirrors :meth:`Compressor.pack_to` with a reset_peak between
the codec and serialize phases; output bytes are identical (digest
asserted by the parent across all runs).

With ``--serialize-cap-bytes`` the child enforces the cap itself and
exits with status 3 if the serialize phase allocated more — the
"pack under a hard cap" acceptance run fails loudly, not by a parent
comparison after the fact.

Prints one JSON object to stdout.
"""

from __future__ import annotations

import argparse
import hashlib
import io
import json
import resource
import sys
import time
import tracemalloc

from repro.classfile.classfile import write_class
from repro.corpus import generate_shape
from repro.ir.build import build_archive
from repro.jar.formats import strip_classes
from repro.pack.compressor import Compressor
from repro.pack.options import PackOptions
from repro.pack.spool import SpoolStreamSet


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--mode", choices=["full", "stream"],
                        required=True)
    parser.add_argument("--backend", required=True)
    parser.add_argument("--shape", default="const_heavy")
    parser.add_argument("--classes", type=int, required=True)
    parser.add_argument("--budget", type=int, default=64 * 1024)
    parser.add_argument("--scheme", default="mtf")
    parser.add_argument("--serialize-cap-bytes", type=int, default=None)
    args = parser.parse_args()

    t0 = time.perf_counter()
    classes = strip_classes(generate_shape(args.shape,
                                           classes=args.classes))
    ordered = [classes[name] for name in sorted(classes)]
    raw_bytes = sum(len(write_class(classfile)) for classfile in ordered)
    generate_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    archive = build_archive(ordered)
    build_s = time.perf_counter() - t0

    options = PackOptions(
        scheme=args.scheme,
        codec_backend=args.backend,
        memory_budget=args.budget if args.mode == "stream" else None)
    compressor = Compressor(options)

    tracemalloc.start()
    t0 = time.perf_counter()
    compressor._run_codec(archive)
    codec_s = time.perf_counter() - t0
    codec_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.reset_peak()
    baseline = tracemalloc.get_traced_memory()[0]

    out = io.BytesIO()
    t0 = time.perf_counter()
    out.write(compressor._header())
    if isinstance(compressor.streams, SpoolStreamSet):
        compressor.streams.serialize_to(out, compress=options.compress,
                                        level=options.zlib_level)
        spool = compressor.streams.spool_stats()
    else:
        out.write(compressor.streams.serialize(
            compress=options.compress, level=options.zlib_level))
        spool = None
    serialize_s = time.perf_counter() - t0
    serialize_delta = tracemalloc.get_traced_memory()[1] - baseline
    tracemalloc.stop()

    data = out.getvalue()
    report = {
        "mode": args.mode,
        "backend": args.backend,
        "shape": args.shape,
        "classes": len(ordered),
        "budget_bytes": args.budget if args.mode == "stream" else None,
        "raw_bytes": raw_bytes,
        "packed_bytes": len(data),
        "digest": hashlib.sha256(data).hexdigest(),
        "codec_peak_kb": codec_peak // 1024,
        "serialize_delta_kb": serialize_delta // 1024,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "spool": spool,
        "seconds": {
            "generate": round(generate_s, 3),
            "build": round(build_s, 3),
            "codec": round(codec_s, 3),
            "serialize": round(serialize_s, 3),
        },
    }
    json.dump(report, sys.stdout)
    sys.stdout.write("\n")

    cap = args.serialize_cap_bytes
    if cap is not None and serialize_delta > cap:
        print(f"serialize phase allocated {serialize_delta} bytes, "
              f"over the {cap}-byte cap", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
