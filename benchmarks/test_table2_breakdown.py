"""Table 2: class-file component breakdown (swingall & javac analogs).

Paper columns (uncompressed KBytes): total, field definitions, method
definitions, code, other constant pool, Utf8 entries, Utf8 if shared,
Utf8 if shared & factored.  Reproduction targets: the constant pool —
and the Utf8 entries in particular — dominate; sharing shrinks Utf8
substantially and factoring shrinks it much further (the paper:
2,037 -> 1,704 -> 371 K for swingall).
"""

from repro.classfile.analysis import breakdown

from conftest import print_table, suite_classfiles


def _row(name):
    result = breakdown(suite_classfiles(name))
    return name, result


def test_table2(benchmark):
    results = benchmark.pedantic(
        lambda: [_row("swingall"), _row("javac")], rounds=1, iterations=1)
    rows = []
    for name, result in results:
        data = result.as_dict()
        rows.append([name] + [round(data[key] / 1024, 1) for key in (
            "total", "field_definitions", "method_definitions", "code",
            "other_constant_pool", "utf8_entries", "utf8_shared",
            "utf8_shared_factored")])
    print_table(
        "Table 2: class-file breakdown (uncompressed KBytes)",
        ["suite", "total", "fields", "methods", "code", "other CP",
         "Utf8", "Utf8 shared", "Utf8 shared+factored"],
        rows)
    for name, result in results:
        pool_total = result.utf8_entries + result.other_constant_pool
        # The constant pool makes up most of the class file.
        assert pool_total > result.total * 0.4, name
        # Utf8 alone is the single largest component.
        assert result.utf8_entries >= result.code * 0.8, name
        # Sharing and factoring each give a real reduction.
        assert result.utf8_shared < result.utf8_entries * 0.95, name
        assert result.utf8_shared_factored < result.utf8_shared * 0.7, name
