"""Section 14 ablation: preloaded reference dictionaries.

The paper's conclusion proposes seeding the coders with "a standard
set of preloaded references to frequently used package names, classes,
method references and so on", expecting it "would help on small
archives" while "preloaded references that were never used would
degrade compression".  This ablation measures that trade-off across
archive sizes.
"""

from repro.pack import PackOptions, pack_archive

from conftest import print_table, suite_classfiles

SUITES = ["Hanoi_jax", "db", "Hanoi_big", "Hanoi", "compress",
          "raytrace", "icebrowserbean", "jess", "javac", "tools"]


def _measure():
    rows = []
    for name in SUITES:
        classfiles = suite_classfiles(name)
        plain = len(pack_archive(classfiles))
        preloaded = len(pack_archive(classfiles,
                                     PackOptions(preload=True)))
        rows.append((name, plain, preloaded))
    return rows


def test_ablation_preload(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    printable = [[name, plain, preloaded,
                  f"{100 * (plain - preloaded) / plain:+.1f}%"]
                 for name, plain, preloaded in rows]
    print_table("Section 14 ablation: preloaded dictionaries",
                ["suite", "plain", "preloaded", "saving"], printable)
    smallest = rows[:4]
    # Preloading helps the small archives...
    for name, plain, preloaded in smallest:
        assert preloaded < plain, name
    # ...and the relative benefit shrinks as archives grow.
    small_gain = sum((p - q) / p for _, p, q in rows[:3]) / 3
    large_gain = sum((p - q) / p for _, p, q in rows[-3:]) / 3
    assert small_gain > large_gain
    # Never catastrophic on large archives.
    for name, plain, preloaded in rows:
        assert preloaded < plain * 1.05, name
