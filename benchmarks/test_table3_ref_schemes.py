"""Table 3: compressed reference-stream size per encoding scheme.

Paper columns: Simple, Basic, Freq, Cache, MTF Basic, MTF Transients,
MTF Use Context, MTF Transients+Context — the size in bytes of the
compressed reference streams for each benchmark.  Reproduction
targets: Simple > Basic > Freq; the MTF family beats the fixed-id
schemes; the transients/context variants give small further wins on
the larger suites.
"""

from repro.ir.build import build_archive
from repro.pack.compressor import Compressor
from repro.pack.options import TABLE3_VARIANTS

from conftest import MEDIUM_SUITES, print_table, suite_classfiles

VARIANTS = list(TABLE3_VARIANTS)


def _ref_bytes(name, options):
    archive = build_archive(suite_classfiles(name))
    compressor = Compressor(options)
    compressor.pack(archive)
    sizes = compressor.stream_sizes(compressed=True)
    return sum(size for stream, size in sizes.items()
               if stream.startswith("refs."))


def _matrix():
    return {
        name: {label: _ref_bytes(name, options)
               for label, options in TABLE3_VARIANTS.items()}
        for name in MEDIUM_SUITES
    }


def test_table3(benchmark):
    matrix = benchmark.pedantic(_matrix, rounds=1, iterations=1)
    rows = [[name] + [matrix[name][label] for label in VARIANTS]
            for name in MEDIUM_SUITES]
    print_table("Table 3: compressed reference bytes per scheme",
                ["benchmark"] + VARIANTS, rows)
    for name in MEDIUM_SUITES:
        row = matrix[name]
        # Fixed two-byte ids are the worst encoding.
        assert row["Simple"] >= row["Basic"], name
        # Frequency ranking beats arrival order.
        assert row["Freq"] <= row["Basic"], name
        # The best MTF variant beats every fixed-id scheme (tiny
        # suites get a few bytes of slack — at 3 classes the queue
        # never warms up, which the paper's smallest rows also show).
        best_mtf = min(row["MTF Basic"], row["MTF Transients"],
                       row["MTF Use Context"],
                       row["MTF Transients and Context"])
        assert best_mtf <= row["Freq"] * 1.05 + 8, name
    # On the bigger suites, the paper's final configuration
    # (transients + context) is at or near the best.
    for name in ("javac", "jess", "jack"):
        row = matrix[name]
        best = min(row.values())
        assert row["MTF Transients and Context"] <= best * 1.06, name
