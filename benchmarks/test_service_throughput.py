"""Service throughput: parallel speedup and cache-warm reruns.

Not a paper table — this guards the two performance claims of the
`repro.service` batch engine:

* **fan-out**: on a multi-core machine, a 4-worker batch over >= 8
  corpus jars must beat the 1-worker batch by >= 1.5x wall clock
  (packing is CPU-bound pure Python, so process fan-out is the only
  parallelism available);
* **caching**: rerunning a batch against a warm content-addressed
  cache must be >= 5x faster than the cold run — a warm job is one
  SHA-256 of the input plus a dict lookup, no codec work.

The speedup check needs real cores and is skipped below 4; the cache
check holds on any machine.
"""

import os
import time

import pytest

from repro.classfile.classfile import write_class
from repro.service import BatchEngine, PackJob, ResultCache

from conftest import print_table, stripped_suite

#: >= 8 distinct jars, spread across suite shapes so jobs are not all
#: the same size (the scheduler must still win on an uneven mix).
SUITES = ["Hanoi", "Hanoi_big", "Hanoi_jax", "compress", "db",
          "javafig", "icebrowserbean", "jmark20"]

SPEEDUP_FLOOR = 1.5
WARM_FLOOR = 5.0


@pytest.fixture(scope="module")
def jobs():
    built = []
    for suite in SUITES:
        classes = {c.name + ".class": write_class(c)
                   for c in stripped_suite(suite)}
        built.append(PackJob(job_id=suite, classes=classes))
    return built


def _run(jobs, workers, cache=None):
    with BatchEngine(workers=workers, cache=cache) as engine:
        start = time.perf_counter()
        results = engine.run_batch(jobs)
        elapsed = time.perf_counter() - start
    assert all(result.status == "ok" for result in results)
    return elapsed, results


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup check needs >= 4 cores")
def test_four_workers_beat_one(jobs):
    # interleave rounds so machine noise hits both configurations;
    # score the best round of each (min-of-N, like the paper timings)
    serial_times, parallel_times = [], []
    for _ in range(2):
        serial_times.append(_run(jobs, workers=1)[0])
        parallel_times.append(_run(jobs, workers=4)[0])
    serial, parallel = min(serial_times), min(parallel_times)
    speedup = serial / parallel
    print_table(
        "service throughput: 1 vs 4 workers",
        ["workers", "seconds", "speedup"],
        [["1", f"{serial:.3f}", "1.0x"],
         ["4", f"{parallel:.3f}", f"{speedup:.2f}x"]])
    assert speedup >= SPEEDUP_FLOOR, \
        f"4-worker speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x"


def test_cache_warm_rerun_is_faster(jobs):
    cache = ResultCache()
    workers = min(4, os.cpu_count() or 1)
    with BatchEngine(workers=workers, cache=cache) as engine:
        start = time.perf_counter()
        cold_results = engine.run_batch(jobs)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        warm_results = engine.run_batch(jobs)
        warm = time.perf_counter() - start
    assert all(result.status == "ok" for result in cold_results)
    assert all(result.cached for result in warm_results)
    # identical bytes either way
    assert [r.data for r in cold_results] == \
        [r.data for r in warm_results]
    ratio = cold / warm if warm else float("inf")
    print_table(
        "service throughput: cold vs cache-warm",
        ["run", "seconds", "ratio"],
        [["cold", f"{cold:.3f}", "1.0x"],
         ["warm", f"{warm:.4f}", f"{ratio:.1f}x"]])
    assert ratio >= WARM_FLOOR, \
        f"warm rerun only {ratio:.1f}x faster (need {WARM_FLOOR}x)"
