"""Delta-size guard: incremental updates must beat re-shipping.

Not a paper table — this guards the economic claim of the
``repro.delta`` subsystem: when at most 10% of a corpus's classes
change between two builds, the delta container must cost **at most
30%** of the full packed archive (the acceptance bar; in practice it
lands near 10-17% on the medium suites).  Each scenario also
round-trips the delta through ``patch`` and checks byte-identity, so
the size being measured is the size of a *working* update.

The measurements are written as a JSON report
(``benchmarks/reports/delta_size.json`` by default,
``DELTA_SIZE_REPORT`` overrides) which CI uploads as a workflow
artifact, so the ratio's drift is visible across runs without
rerunning anything.
"""

import copy
import json
import math
import os
from pathlib import Path

import pytest

from repro.delta import diff_packed, patch_packed
from repro.pack import PackOptions, pack_archive

from conftest import print_table, suite_classfiles

#: The hard acceptance bar: delta <= 30% of the full pack when <= 10%
#: of the classes changed.
RATIO_CEILING = 0.30

#: Medium suites spanning class counts (12-27) and code shapes.
SUITES = ["javac", "jess", "jack"]

REPORT_PATH = Path(os.environ.get(
    "DELTA_SIZE_REPORT",
    Path(__file__).parent / "reports" / "delta_size.json"))


def _mutate(classes, count):
    """Copy the corpus with ``count`` classes semantically changed
    (ACC_FINAL toggled), spread across the archive."""
    mutated = [copy.deepcopy(classfile) for classfile in classes]
    n = len(mutated)
    for i in range(count):
        mutated[(i * 7) % n].access_flags ^= 0x0010
    return mutated


def _measure(suite):
    classes = suite_classfiles(suite)
    n = len(classes)
    options = PackOptions()
    base = pack_archive(classes, options)
    rows = []
    for label, changed in [("1-class", 1),
                           ("10pct", max(1, math.floor(n * 0.10)))]:
        target = pack_archive(_mutate(classes, changed), options)
        delta, summary = diff_packed(base, target, options)
        patched, _ = patch_packed(base, delta)
        assert patched == target, (
            f"{suite}/{label}: patched bytes differ from fresh pack")
        rows.append({
            "suite": suite, "scenario": label, "classes": n,
            "changed": summary.modified,
            "delta_bytes": len(delta), "full_bytes": len(target),
            "ratio": round(summary.ratio, 4),
        })
    return rows


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for suite in SUITES:
        rows.extend(_measure(suite))
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(json.dumps({
        "schema": "repro.benchmarks.delta_size/1",
        "ratio_ceiling": RATIO_CEILING,
        "rows": rows,
    }, indent=2) + "\n")
    return rows


def test_delta_is_fraction_of_full_pack(measurements):
    print_table(
        "Delta size vs. full pack (<= 10% of classes changed)",
        ["suite", "scenario", "classes", "changed", "delta", "full",
         "ratio"],
        [[r["suite"], r["scenario"], r["classes"], r["changed"],
          r["delta_bytes"], r["full_bytes"], f"{r['ratio']:.1%}"]
         for r in measurements])
    print(f"report written to {REPORT_PATH}")
    for row in measurements:
        assert row["ratio"] <= RATIO_CEILING, (
            f"{row['suite']}/{row['scenario']}: delta is "
            f"{row['ratio']:.1%} of the full pack "
            f"(ceiling {RATIO_CEILING:.0%})")


def test_single_class_change_on_standard_corpus(measurements):
    """The acceptance criterion verbatim: one changed class on the
    standard (javac) corpus stays under 30% of the full pack."""
    row = next(r for r in measurements
               if r["suite"] == "javac" and r["scenario"] == "1-class")
    assert row["changed"] == 1
    assert row["ratio"] < RATIO_CEILING
