"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``compile``  mini-Java sources -> a jar of class files
``pack``     a jar (or directory of .class files) -> packed archive
``unpack``   a packed archive -> jar
``stats``    pack and report sizes per category plus phase timings
``inspect``  summarize a class file, jar, or packed archive
``bench``    size comparison of every format on one corpus suite
``run``      execute class files on the bytecode interpreter
``diff``     delta between two packed archives -> .dpack container
``patch``    apply a .dpack delta to a base archive
``batch``    pack many jars concurrently (manifest or directory)
``serve``    the pack service daemon (/pack, /delta, /stats, /healthz)
``triage``   inspect an input through bounded recursive ingestion

``pack`` and ``batch`` accept ``--triage`` (plus ``--triage-*`` budget
flags) to ingest nested/compressed real-world containers; ``serve
--triage`` does the same for request bodies.  See docs/TRIAGE.md.

``pack``, ``unpack``, ``stats``, and ``batch`` accept ``--trace``
(print the phase timing tree) and ``--metrics-json FILE`` (write the
``repro.observe/1`` document); see docs/CLI.md and docs/SERVICE.md.

Expected operational failures (malformed archives, missing files)
print a one-line ``error:`` message and exit with status 2 instead of
a traceback.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from . import observe
from .classfile.classfile import ClassFile, parse_class, write_class
from .jar.formats import strip_classes
from .jar.jarfile import classes_to_entries, make_jar, read_jar
from .loader.eager import eager_order
from .minijava import compile_sources
from .errors import ReproError
from .pack import (
    PackOptions,
    iter_unpack_archive,
    pack_archive,
    pack_archive_to,
    pack_archive_with_stats,
    recorded_scheme,
)


def _scheme_label(variant) -> str:
    """Render a ``(scheme, use_context, transients)`` triple."""
    scheme, use_context, transients = variant
    if scheme != "mtf":
        return scheme
    flags = [name for name, on in (("context", use_context),
                                   ("transients", transients)) if on]
    return "mtf" + (f" (+{', +'.join(flags)})" if flags else "")


def _options_from_args(args: argparse.Namespace) -> PackOptions:
    return PackOptions(
        scheme=args.scheme,
        use_context=not args.no_context,
        transients=not args.no_transients,
        stack_state=not args.no_stack_state,
        compress=not args.no_gzip,
        preload=args.preload,
        codec_backend=args.codec_backend,
        auto_sample=args.auto_sample,
        memory_budget=getattr(args, "memory_budget", None),
    )


def _add_pack_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheme", default="mtf",
                        choices=["simple", "basic", "freq", "cache",
                                 "mtf", "auto"],
                        help="reference-encoding scheme (Table 3); "
                             "auto scores the whole matrix per archive "
                             "and records the winner in the header")
    parser.add_argument("--no-context", action="store_true",
                        help="disable stack-context MTF queues")
    parser.add_argument("--no-transients", action="store_true",
                        help="disable transient handling")
    parser.add_argument("--no-stack-state", action="store_true",
                        help="disable opcode collapsing (7.1)")
    parser.add_argument("--no-gzip", action="store_true",
                        help="disable the zlib stage (Table 5)")
    parser.add_argument("--preload", action="store_true",
                        help="seed coders with the standard dictionary")
    parser.add_argument("--codec-backend", default="compiled",
                        metavar="{interpreted,compiled}",
                        help="codec execution backend; byte-identical "
                             "output, compiled is faster (default: "
                             "compiled)")
    parser.add_argument("--auto-sample", type=float, default=1.0,
                        metavar="RATE",
                        help="fraction of the reference trace "
                             "--scheme=auto scoring replays (seeded, "
                             "deterministic; default: 1.0 = full "
                             "trace)")
    parser.add_argument("--memory-budget", type=int, default=None,
                        metavar="BYTES",
                        help="bound the encoder's resident stream "
                             "bytes; overflow spills to temp files and "
                             "the output stays byte-identical "
                             "(default: unbounded, all in memory)")


def _add_triage_options(parser: argparse.ArgumentParser,
                        mode_flag: bool = True) -> None:
    """The triage ingestion flags (budgets + the ``--triage`` mode
    switch for commands where triage is opt-in)."""
    from .triage import TriageBudget

    defaults = TriageBudget()
    if mode_flag:
        parser.add_argument("--triage", action="store_true",
                            help="ingest input through bounded "
                                 "recursive triage (nested jars/zips, "
                                 "gzip blobs, MRJARs; see "
                                 "docs/TRIAGE.md)")
        parser.add_argument("--triage-report", metavar="FILE",
                            default=None,
                            help="write the repro.triage/1 report "
                                 "JSON to FILE (implies --triage)")
    parser.add_argument("--triage-depth", type=int,
                        default=defaults.max_depth, metavar="N",
                        help="max container nesting depth "
                             f"(default: {defaults.max_depth})")
    parser.add_argument("--triage-bytes", type=int,
                        default=defaults.max_total_bytes,
                        metavar="BYTES",
                        help="max total decompressed bytes "
                             f"(default: {defaults.max_total_bytes})")
    parser.add_argument("--triage-entries", type=int,
                        default=defaults.max_entries, metavar="N",
                        help="max entries across all artifacts "
                             f"(default: {defaults.max_entries})")
    parser.add_argument("--triage-artifacts", type=int,
                        default=defaults.max_artifacts, metavar="N",
                        help="max artifacts walked "
                             f"(default: {defaults.max_artifacts})")
    parser.add_argument("--triage-deadline", type=float,
                        default=defaults.deadline_seconds,
                        metavar="SECONDS",
                        help="wall-clock deadline per ingest "
                             f"(default: {defaults.deadline_seconds})")
    parser.add_argument("--triage-ratio", type=float,
                        default=defaults.max_expansion_ratio,
                        metavar="X",
                        help="max per-entry expansion ratio, the "
                             "zip-bomb guard (default: "
                             f"{defaults.max_expansion_ratio:.0f})")
    parser.add_argument("--triage-spool", type=int,
                        default=defaults.spool_window_bytes,
                        metavar="BYTES",
                        help="spool extracted entries at or above "
                             "this size to a temp file instead of "
                             "holding them resident (default: "
                             f"{defaults.spool_window_bytes})")


def _triage_budget(args: argparse.Namespace):
    from .triage import TriageBudget

    return TriageBudget(
        max_depth=args.triage_depth,
        max_total_bytes=args.triage_bytes,
        max_entries=args.triage_entries,
        max_artifacts=args.triage_artifacts,
        deadline_seconds=args.triage_deadline,
        max_expansion_ratio=args.triage_ratio,
        spool_window_bytes=args.triage_spool,
    ).validate()


def _triage_requested(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "triage", False) or
                getattr(args, "triage_report", None))


def _add_observe_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", action="store_true",
                        help="print the phase timing tree when done")
    parser.add_argument("--metrics-json", metavar="FILE", default=None,
                        help="write trace + metrics JSON "
                             "(repro.observe/1 schema) to FILE")


@contextmanager
def _observed(args: argparse.Namespace,
              always: bool = False) -> Iterator[Optional[observe.Recorder]]:
    """Install an observe recorder when the flags (or ``always``) ask
    for one; yields it (or None when observability stays off)."""
    if always or args.trace or args.metrics_json:
        with observe.recording() as recorder:
            yield recorder
    else:
        yield None


def _report_observed(args: argparse.Namespace,
                     recorder: Optional[observe.Recorder],
                     stats=None) -> None:
    if recorder is None:
        return
    if getattr(args, "trace", False):
        print("phase timings:")
        print(recorder.trace.render())
    if args.metrics_json:
        observe.dump_json(recorder, args.metrics_json, stats=stats)
        print(f"metrics written to {args.metrics_json}")


def _load_classes(path: Path) -> Dict[str, ClassFile]:
    """Class files from a jar, a .class file, or a directory."""
    classes: Dict[str, ClassFile] = {}
    if path.is_dir():
        for classfile_path in sorted(path.rglob("*.class")):
            classfile = parse_class(classfile_path.read_bytes())
            classes[classfile.name] = classfile
    elif path.suffix == ".class":
        classfile = parse_class(path.read_bytes())
        classes[classfile.name] = classfile
    else:
        for name, data in read_jar(path.read_bytes()):
            if name.endswith(".class"):
                classfile = parse_class(data)
                classes[classfile.name] = classfile
    if not classes:
        raise SystemExit(f"no class files found in {path}")
    return classes


def cmd_compile(args: argparse.Namespace) -> int:
    sources = [Path(p).read_text() for p in args.sources]
    classes = compile_sources(sources)
    serialized = {name: write_class(c) for name, c in classes.items()}
    Path(args.output).write_bytes(
        make_jar(classes_to_entries(serialized)))
    print(f"compiled {len(classes)} classes -> {args.output}")
    return 0


def _triage_input(args: argparse.Namespace) -> Dict[str, ClassFile]:
    """Load class files through bounded recursive triage; stashes the
    :class:`~repro.triage.ingest.TriageResult` on ``args`` so the
    command can write the report and the resources jar."""
    from .triage import classes_from_triage, triage_path

    result = triage_path(Path(args.input),
                         budget=_triage_budget(args))
    args.triage_result = result
    class_bytes = classes_from_triage(result)
    with observe.current().span("parse"):
        classes: Dict[str, ClassFile] = {}
        for name in sorted(class_bytes):
            classfile = parse_class(class_bytes[name])
            classes[classfile.name] = classfile
    return classes


def _report_triage(args: argparse.Namespace) -> None:
    """Print the triage summary; write the report when asked."""
    result = getattr(args, "triage_result", None)
    if result is None:
        return
    print(result.report.summary())
    if getattr(args, "triage_report", None):
        Path(args.triage_report).write_text(result.report.to_json())
        print(f"triage report written to {args.triage_report}")
    if result.resources:
        target = Path(args.output).with_suffix(".resources.jar")
        target.write_bytes(
            make_jar(sorted(result.resources.items()), compress=True))
        print(f"{len(result.resources)} non-class entries -> {target} "
              "(deflate fallback)")


def _prepare_input(args: argparse.Namespace) -> List[ClassFile]:
    """Load, optionally strip, and order the input class files."""
    if _triage_requested(args):
        classes = _triage_input(args)
    else:
        with observe.current().span("parse"):
            classes = _load_classes(Path(args.input))
    if args.strip:
        with observe.current().span("strip"):
            classes = strip_classes(classes)
    return eager_order(list(classes.values())) if args.eager else \
        [classes[name] for name in sorted(classes)]


def cmd_pack(args: argparse.Namespace) -> int:
    with _observed(args) as recorder:
        ordered = _prepare_input(args)
        options = _options_from_args(args)
        if options.memory_budget is not None:
            # Streaming path: encoded streams spill to temp files and
            # the archive is written straight to the output file — the
            # packed bytes never exist in memory at once.
            with open(args.output, "wb") as out:
                packed_len = pack_archive_to(ordered, out, options)
            with open(args.output, "rb") as fh:
                header = fh.read(6)
        else:
            packed = pack_archive(ordered, options)
            Path(args.output).write_bytes(packed)
            packed_len, header = len(packed), packed
        raw = sum(len(write_class(c)) for c in ordered)
    print(f"packed {len(ordered)} classes: {raw} -> {packed_len} bytes "
          f"({100 * packed_len / raw:.0f}%)")
    if options.scheme == "auto":
        print(f"scheme auto -> {_scheme_label(recorded_scheme(header))} "
              "(recorded in header)")
    _report_triage(args)
    _report_observed(args, recorder)
    return 0


def cmd_triage(args: argparse.Namespace) -> int:
    """Inspect an input through triage; print the report as JSON."""
    from .triage import triage_path

    result = triage_path(Path(args.input),
                         budget=_triage_budget(args))
    doc = result.report.to_json()
    if args.output:
        Path(args.output).write_text(doc)
        print(result.report.summary())
        print(f"report written to {args.output}")
    else:
        sys.stdout.write(doc)
    return 0


def cmd_unpack(args: argparse.Namespace) -> int:
    options = _options_from_args(args)
    with _observed(args) as recorder:
        data = Path(args.input).read_bytes()
        # One class resident at a time: each ClassFile is serialized
        # and dropped before the next is decoded (§11 load order).
        serialized: Dict[str, bytes] = {}
        with observe.current().span("unpack"):
            for classfile in iter_unpack_archive(data, options):
                serialized[classfile.name] = write_class(classfile)
        with observe.current().span("write-jar"):
            Path(args.output).write_bytes(
                make_jar(classes_to_entries(serialized)))
    print(f"unpacked {len(serialized)} classes -> {args.output}")
    recorded = recorded_scheme(data)
    if recorded is not None:
        print(f"scheme {_scheme_label(recorded)} (from header)")
    _report_observed(args, recorder)
    return 0


def _packed_stats(args: argparse.Namespace, data: bytes) -> int:
    """``repro stats`` on an already-packed archive: decode one class
    at a time (each dropped after its size is attributed — the whole
    class list is never resident) and report the decoded stream
    bytes."""
    from .pack.decompressor import Decompressor
    from .pack.stats import collect_stats

    options = _options_from_args(args)
    with _observed(args, always=True) as recorder:
        decompressor = Decompressor(options)
        count = raw = 0
        with observe.current().span("unpack"):
            for classfile in decompressor.iter_classes(data):
                raw += len(write_class(classfile))
                count += 1
        stats = collect_stats(decompressor.streams.raw_sizes())
    print(f"{count} classes: {len(data)} packed bytes -> "
          f"{raw} class-file bytes "
          f"({100 * len(data) / raw:.0f}%)")
    if decompressor.recorded is not None:
        print(f"scheme {_scheme_label(decompressor.recorded)} "
              "(from header)")
    print(stats.render(title="per-category breakdown "
                             "(decoded stream bytes)",
                       per_stream=args.per_stream))
    print("phase timings:")
    print(recorder.trace.render())
    if args.metrics_json:
        observe.dump_json(recorder, args.metrics_json, stats=stats)
        print(f"metrics written to {args.metrics_json}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Pack the input and report Table-6-style sizes plus timings.

    A packed archive as input (recognized by its magic) flips the
    direction: decode streamingly and attribute the decoded bytes."""
    import struct

    from .pack import wire

    source = Path(args.input)
    if source.is_file():
        data = source.read_bytes()
        if data[:4] == struct.pack(">I", wire.MAGIC):
            return _packed_stats(args, data)
    options = _options_from_args(args)
    with _observed(args, always=True) as recorder:
        ordered = _prepare_input(args)
        packed, stats = pack_archive_with_stats(ordered, options)
    raw = sum(len(write_class(c)) for c in ordered)
    print(f"{len(ordered)} classes: {raw} class-file bytes -> "
          f"{len(packed)} packed bytes "
          f"({100 * len(packed) / raw:.0f}%)")
    recorded = recorded_scheme(packed)
    if recorded is not None:
        print(f"scheme {'auto -> ' if options.scheme == 'auto' else ''}"
              f"{_scheme_label(recorded)} (recorded in header)")
    print(stats.render(per_stream=args.per_stream))
    print("phase timings:")
    print(recorder.trace.render())
    if args.metrics_json:
        observe.dump_json(recorder, args.metrics_json, stats=stats)
        print(f"metrics written to {args.metrics_json}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    from .classfile.analysis import breakdown

    classes = _load_classes(Path(args.input))
    result = breakdown(classes.values())
    print(f"{len(classes)} classes, {result.total} bytes")
    for classfile in classes.values():
        fields = len(classfile.fields)
        methods = len(classfile.methods)
        print(f"  {classfile.name}: {fields} fields, {methods} methods, "
              f"extends {classfile.super_name}")
    print("component breakdown:")
    for key, value in result.as_dict().items():
        print(f"  {key:24s} {value:8d}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from .jvm import JavaThrow, Machine

    classes = _load_classes(Path(args.input))
    machine = Machine(list(classes.values()))
    main_class = args.main
    if main_class is None:
        from .loader.profile import find_roots

        roots = find_roots(list(classes.values()))
        if not roots:
            raise SystemExit("no class with main(String[]); use --main")
        main_class = roots[0]
    try:
        output = machine.run_main(main_class.replace(".", "/"),
                                  args.args)
    except JavaThrow as thrown:
        output = machine.stdout()
        sys.stdout.write(output)
        message = thrown.throwable.fields.get("message")
        print(f"Exception in thread \"main\" "
              f"{thrown.throwable.class_name.replace('/', '.')}"
              f"{': ' + message if message else ''}")
        return 1
    sys.stdout.write(output)
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from .delta import diff_packed

    options = _options_from_args(args)
    with _observed(args) as recorder:
        delta, summary = diff_packed(Path(args.base).read_bytes(),
                                     Path(args.target).read_bytes(),
                                     options)
        Path(args.output).write_bytes(delta)
    print(f"delta {args.base} -> {args.target}: "
          f"{summary.unchanged} unchanged, {summary.modified} modified, "
          f"{summary.added} added, {summary.removed} removed")
    print(f"wrote {summary.delta_bytes} bytes to {args.output} "
          f"({100 * summary.ratio:.0f}% of the {summary.target_pack_bytes}"
          f"-byte full pack)")
    _report_observed(args, recorder)
    return 0


def cmd_patch(args: argparse.Namespace) -> int:
    from .delta import patch_packed

    with _observed(args) as recorder:
        target, summary = patch_packed(Path(args.base).read_bytes(),
                                       Path(args.delta).read_bytes())
        Path(args.output).write_bytes(target)
    print(f"patched {args.base} + {args.delta} -> {args.output}: "
          f"{summary.target_classes} classes, "
          f"{summary.target_pack_bytes} bytes (verified)")
    _report_observed(args, recorder)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .baselines.jazz import jazz_pack
    from .corpus.suites import generate_suite
    from .jar.formats import jar_sizes

    classes = generate_suite(args.suite)
    sizes = jar_sizes(classes)
    stripped = strip_classes(classes)
    ordered = [stripped[name] for name in sorted(stripped)]
    packed = pack_archive(ordered, _options_from_args(args))
    jazz = jazz_pack(ordered)
    rows = [
        ("jar", sizes.jar), ("sjar", sizes.sjar),
        ("sj0r.gz", sizes.sj0r_gz), ("Jazz", len(jazz)),
        ("Packed", len(packed)),
    ]
    for label, size in rows:
        print(f"{label:8s} {size:8d} bytes "
              f"({100 * size / sizes.sjar:5.1f}% of sjar)")
    return 0


def _add_service_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-j", "--workers", type=int, default=None,
                        metavar="N",
                        help="worker processes (default: CPU count; "
                             "0 packs in-process)")
    parser.add_argument("--queue-limit", type=int, default=None,
                        metavar="N",
                        help="max in-flight attempts before submit "
                             "blocks (default: 2x workers)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-attempt timeout (default: none)")
    parser.add_argument("--max-attempts", type=int, default=3,
                        metavar="N",
                        help="attempts per job before degrading")
    parser.add_argument("--backoff", type=float, default=0.05,
                        metavar="SECONDS",
                        help="initial retry backoff (doubles per try)")
    parser.add_argument("--no-degrade", action="store_true",
                        help="report exhausted jobs as failed instead "
                             "of emitting a fallback jar")
    parser.add_argument("--cache-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="in-memory result-cache budget "
                             "(default: 64 MiB)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent on-disk cache store "
                             "(shared across runs)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed cache")


def _engine_from_args(args: argparse.Namespace):
    from .service import BatchEngine, ResultCache, RetryPolicy
    from .service.cache import DEFAULT_MAX_BYTES

    cache = None
    if not args.no_cache:
        budget = DEFAULT_MAX_BYTES if args.cache_bytes is None \
            else args.cache_bytes
        shards = getattr(args, "cache_shards", None)
        if shards is None and getattr(args, "async_serve", False):
            from .gateway import DEFAULT_SHARDS
            shards = DEFAULT_SHARDS
        if shards:
            from .gateway import ShardedResultCache
            cache = ShardedResultCache(shards=shards,
                                       max_bytes=budget,
                                       spill_dir=args.cache_dir)
        else:
            cache = ResultCache(max_bytes=budget,
                                spill_dir=args.cache_dir)
    retry = RetryPolicy(max_attempts=args.max_attempts,
                        backoff=args.backoff)
    backend = PackOptions(
        codec_backend=getattr(args, "codec_backend", "compiled"),
    ).validate().codec_backend
    return BatchEngine(workers=args.workers,
                       queue_limit=args.queue_limit,
                       cache=cache, retry=retry,
                       timeout=args.timeout,
                       degrade=not args.no_degrade,
                       codec_backend=backend)


def _batch_jobs(args: argparse.Namespace, options: PackOptions):
    from .service import (job_from_path, jobs_from_directory,
                          jobs_from_manifest, triage_job_from_path,
                          triage_jobs_from_directory,
                          triage_jobs_from_manifest)

    source = Path(args.input)
    if _triage_requested(args):
        budget = _triage_budget(args)
        if source.is_dir():
            return triage_jobs_from_directory(
                source, options, strip=args.strip, eager=args.eager,
                budget=budget)
        if source.suffix == ".json":
            return triage_jobs_from_manifest(
                source, options, strip=args.strip, eager=args.eager,
                budget=budget)
        return [triage_job_from_path(source, options, strip=args.strip,
                                     eager=args.eager, budget=budget)]
    if source.is_dir():
        return jobs_from_directory(source, options, strip=args.strip,
                                   eager=args.eager)
    if source.suffix == ".json":
        return jobs_from_manifest(source, options, strip=args.strip,
                                  eager=args.eager)
    return [job_from_path(source, options, strip=args.strip,
                          eager=args.eager)]


def cmd_batch(args: argparse.Namespace) -> int:
    import json
    import time

    from .service import STATUS_DEGRADED, STATUS_FAILED, batch_report

    options = _options_from_args(args)
    jobs = _batch_jobs(args, options)
    outdir = Path(args.output_dir)
    outdir.mkdir(parents=True, exist_ok=True)
    with _observed(args) as recorder:
        start = time.perf_counter()
        with _engine_from_args(args) as engine:
            results = engine.run_batch(jobs)
            elapsed = time.perf_counter() - start
            engine_stats = engine.stats_dict()
    for job, result in zip(jobs, results):
        if result.data is None:
            result.output = None
        else:
            if job.output is not None:
                target = job.output
            elif result.degraded:
                target = outdir / f"{result.job_id}.fallback.jar"
            else:
                target = outdir / f"{result.job_id}.pack"
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(result.data)
            result.output = str(target)
            if job.resources:
                # Triage's non-class entries ride along as a plain
                # deflate jar next to the packed artifact.
                side = outdir / f"{result.job_id}.resources.jar"
                side.write_bytes(make_jar(sorted(job.resources.items()),
                                          compress=True))
        marker = {STATUS_DEGRADED: " DEGRADED",
                  STATUS_FAILED: " FAILED"}.get(result.status, "")
        cached = " (cached)" if result.cached else ""
        print(f"  {result.job_id}: {result.input_bytes} -> "
              f"{result.output_bytes} bytes in {result.attempts} "
              f"attempt(s){cached}{marker}")
        if result.status == STATUS_FAILED and result.error:
            print(f"    error: {result.error}")
    report = batch_report(results, elapsed, engine_stats)
    triage_reports = {job.job_id: job.triage for job in jobs
                      if job.triage is not None}
    if triage_reports:
        report["triage"] = triage_reports
        if args.triage_report:
            Path(args.triage_report).write_text(
                json.dumps(triage_reports, indent=2) + "\n")
            print(f"triage reports written to {args.triage_report}")
    totals = report["totals"]
    print(f"batch: {totals['ok']} ok, {totals['degraded']} degraded, "
          f"{totals['failed']} failed, {totals['cached']} cached "
          f"in {elapsed:.2f}s")
    if args.report:
        Path(args.report).write_text(
            json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.report}")
    _report_observed(args, recorder)
    return 1 if totals["failed"] else 0


def cmd_serve(args: argparse.Namespace) -> int:
    import time

    engine = _engine_from_args(args)
    if args.async_serve:
        from .gateway import AsyncGateway

        service = AsyncGateway(engine, host=args.host,
                               port=args.port,
                               verbose=args.verbose,
                               max_body=args.max_body,
                               triage=args.triage)
        # The asyncio gateway binds inside the event loop, so run it
        # in the background to learn the address, then block on the
        # serving thread.
        host, port = service.start_background()
        front = "asyncio gateway"
    else:
        from .service import PackService

        service = PackService(engine, host=args.host, port=args.port,
                              verbose=args.verbose,
                              max_body=args.max_body,
                              triage=args.triage)
        host, port = service.address
        front = "threaded"
    print(f"repro serve listening on http://{host}:{port} "
          f"({front}, workers={engine.workers}, "
          f"queue_limit={engine.queue_limit})")
    try:
        if args.async_serve:
            while True:
                time.sleep(3600)
        else:
            service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.shutdown()
        engine.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compressing Java Class Files (Pugh, PLDI 1999)")
    commands = parser.add_subparsers(dest="command", required=True)

    compile_parser = commands.add_parser(
        "compile", help="compile mini-Java sources to a jar")
    compile_parser.add_argument("sources", nargs="+")
    compile_parser.add_argument("-o", "--output", default="out.jar")
    compile_parser.set_defaults(func=cmd_compile)

    pack_parser = commands.add_parser(
        "pack", help="pack class files into the wire format")
    pack_parser.add_argument("input",
                             help="jar, .class file, or directory")
    pack_parser.add_argument("-o", "--output", default="out.pack")
    pack_parser.add_argument("--strip", action="store_true",
                             help="apply the Section 2 preprocessing")
    pack_parser.add_argument("--eager", action="store_true",
                             help="order for eager class loading (11)")
    _add_pack_options(pack_parser)
    _add_triage_options(pack_parser)
    _add_observe_options(pack_parser)
    pack_parser.set_defaults(func=cmd_pack)

    triage_parser = commands.add_parser(
        "triage", help="inspect an input through bounded recursive "
                       "triage; prints the repro.triage/1 report")
    triage_parser.add_argument("input",
                               help="container file, blob, or "
                                    "directory")
    triage_parser.add_argument("-o", "--output", default=None,
                               help="write the report JSON here "
                                    "instead of stdout")
    _add_triage_options(triage_parser, mode_flag=False)
    triage_parser.set_defaults(func=cmd_triage)

    unpack_parser = commands.add_parser(
        "unpack", help="decompress a packed archive to a jar")
    unpack_parser.add_argument("input")
    unpack_parser.add_argument("-o", "--output", default="out.jar")
    _add_pack_options(unpack_parser)
    _add_observe_options(unpack_parser)
    unpack_parser.set_defaults(func=cmd_unpack)

    stats_parser = commands.add_parser(
        "stats", help="pack and report per-stream sizes and timings "
                      "(a packed archive as input is decoded and "
                      "attributed instead)")
    stats_parser.add_argument("input",
                              help="jar, .class file, directory, or "
                                   "packed archive")
    stats_parser.add_argument("--strip", action="store_true",
                              help="apply the Section 2 preprocessing")
    stats_parser.add_argument("--eager", action="store_true",
                              help="order for eager class loading (11)")
    stats_parser.add_argument("--per-stream", action="store_true",
                              help="also list every stream's bytes")
    _add_pack_options(stats_parser)
    _add_observe_options(stats_parser)
    stats_parser.set_defaults(func=cmd_stats)

    inspect_parser = commands.add_parser(
        "inspect", help="summarize class files")
    inspect_parser.add_argument("input")
    inspect_parser.set_defaults(func=cmd_inspect)

    run_parser = commands.add_parser(
        "run", help="execute class files on the bytecode interpreter")
    run_parser.add_argument("input",
                            help="jar, .class file, or directory")
    run_parser.add_argument("--main", default=None,
                            help="main class (default: autodetect)")
    run_parser.add_argument("args", nargs="*",
                            help="arguments passed to main")
    run_parser.set_defaults(func=cmd_run)

    diff_parser = commands.add_parser(
        "diff", help="delta between two packed archives")
    diff_parser.add_argument("base", help="base packed archive")
    diff_parser.add_argument("target", help="target packed archive")
    diff_parser.add_argument("-o", "--output", default="out.dpack")
    _add_pack_options(diff_parser)
    _add_observe_options(diff_parser)
    diff_parser.set_defaults(func=cmd_diff)

    patch_parser = commands.add_parser(
        "patch", help="apply a delta to a base packed archive")
    patch_parser.add_argument("base", help="base packed archive")
    patch_parser.add_argument("delta", help=".dpack delta container")
    patch_parser.add_argument("-o", "--output", default="out.pack")
    _add_observe_options(patch_parser)
    patch_parser.set_defaults(func=cmd_patch)

    bench_parser = commands.add_parser(
        "bench", help="compare formats on a corpus suite")
    bench_parser.add_argument("suite")
    _add_pack_options(bench_parser)
    bench_parser.set_defaults(func=cmd_bench)

    batch_parser = commands.add_parser(
        "batch", help="pack many jars concurrently")
    batch_parser.add_argument(
        "input",
        help="JSON manifest, directory of jars, or one jar")
    batch_parser.add_argument("-o", "--output-dir", default="packed",
                              help="directory for per-job artifacts")
    batch_parser.add_argument("--report", metavar="FILE", default=None,
                              help="write the repro.service/1 JSON "
                                   "report to FILE")
    batch_parser.add_argument("--strip", action="store_true",
                              help="apply the Section 2 preprocessing")
    batch_parser.add_argument("--eager", action="store_true",
                              help="order for eager class loading (11)")
    _add_service_options(batch_parser)
    _add_pack_options(batch_parser)
    _add_triage_options(batch_parser)
    _add_observe_options(batch_parser)
    batch_parser.set_defaults(func=cmd_batch)

    serve_parser = commands.add_parser(
        "serve", help="run the pack service daemon")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8790)
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log every request")
    serve_parser.add_argument("--max-body", type=int,
                              default=32 * 1024 * 1024, metavar="BYTES",
                              help="reject request bodies larger than "
                                   "this with 413 (default: 32 MiB; "
                                   "0 disables the cap)")
    serve_parser.add_argument("--codec-backend", default="compiled",
                              metavar="{interpreted,compiled}",
                              help="default codec backend for requests "
                                   "(?backend=… overrides per request)")
    serve_parser.add_argument("--triage", action="store_true",
                              help="triage request bodies by default "
                                   "(?triage=0 opts a request out)")
    serve_parser.add_argument("--async", dest="async_serve",
                              action="store_true",
                              help="serve on the asyncio gateway: "
                                   "streamed chunked bodies, ETag/304, "
                                   "Range resume, X-Repro-Have "
                                   "release-chain deltas, sharded "
                                   "cache")
    serve_parser.add_argument("--cache-shards", type=int, default=None,
                              metavar="N",
                              help="split the result cache into N "
                                   "independently locked shards "
                                   "(default: 8 with --async, "
                                   "unsharded otherwise)")
    _add_service_options(serve_parser)
    serve_parser.set_defaults(func=cmd_serve)
    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Malformed archives, unpackable inputs, unusable job inputs:
        # operational errors, not bugs — one line, exit 2, no
        # traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
