"""Eager class loading (Section 11).

When a packed archive is decompressed class-by-class and each class is
handed to ``ClassLoader.defineClass`` as it arrives, a class's
superclass and all implemented interfaces must already be defined.
This module provides:

* :func:`eager_order` — reorder an archive so every class follows its
  intra-archive dependencies (stable topological sort);
* :class:`EagerClassLoader` — a simulated JVM class loader that
  enforces the constraint, used to validate orders and to model the
  streamed-definition pipeline;
* :func:`stream_define` — run a packed archive through decompression
  and define every class eagerly, returning the loader.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..classfile.classfile import ClassFile


class EagerLoadError(ValueError):
    """Raised when a class is defined before its dependencies."""


def _dependencies(classfile: ClassFile) -> List[str]:
    deps: List[str] = []
    if classfile.super_name is not None:
        deps.append(classfile.super_name)
    deps.extend(classfile.interface_names())
    return deps


def eager_order(classfiles: Sequence[ClassFile]) -> List[ClassFile]:
    """Stable topological order: superclass and interfaces first.

    Dependencies outside the archive (e.g. ``java/lang/Object``) are
    assumed pre-loadable by the bootstrap loader and ignored.  Cycles
    (illegal in Java) raise :class:`EagerLoadError`.
    """
    by_name: Dict[str, ClassFile] = {c.name: c for c in classfiles}
    ordered: List[ClassFile] = []
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str) -> None:
        mark = state.get(name)
        if mark == 1:
            return
        if mark == 0:
            raise EagerLoadError(f"inheritance cycle through {name}")
        state[name] = 0
        for dependency in _dependencies(by_name[name]):
            if dependency in by_name:
                visit(dependency)
        state[name] = 1
        ordered.append(by_name[name])

    for classfile in classfiles:
        visit(classfile.name)
    return ordered


class EagerClassLoader:
    """A simulated class loader with ``defineClass`` semantics."""

    def __init__(self, preloaded: Optional[Iterable[str]] = None):
        #: Classes the bootstrap loader provides (java.* runtime).
        self.bootstrap = set(preloaded or ())
        self.defined: Dict[str, ClassFile] = {}
        self.definition_order: List[str] = []

    def _resolvable(self, name: str) -> bool:
        return name in self.defined or name not in self._archive_names

    def define_all(self, classfiles: Sequence[ClassFile]) -> None:
        self._archive_names = {c.name for c in classfiles}
        for classfile in classfiles:
            self.define_class(classfile)

    def define_class(self, classfile: ClassFile) -> None:
        """Define one class; its supertypes must already be loadable."""
        if not hasattr(self, "_archive_names"):
            self._archive_names = set()
        name = classfile.name
        if name in self.defined:
            raise EagerLoadError(f"duplicate definition of {name}")
        for dependency in _dependencies(classfile):
            if dependency in self._archive_names and \
                    dependency not in self.defined:
                raise EagerLoadError(
                    f"class {name} defined before its supertype "
                    f"{dependency}")
        self.defined[name] = classfile
        self.definition_order.append(name)

    def loaded(self, name: str) -> bool:
        return name in self.defined


def stream_define(packed: bytes, options=None) -> EagerClassLoader:
    """Decompress a packed archive and define classes eagerly, in
    archive order.  Raises :class:`EagerLoadError` if the archive was
    not ordered for eager loading."""
    from ..pack import unpack_archive

    classfiles = unpack_archive(packed, options)
    loader = EagerClassLoader()
    loader.define_all(classfiles)
    return loader
