"""Eager class loading simulation (Section 11)."""

from .eager import (
    EagerClassLoader,
    EagerLoadError,
    eager_order,
    stream_define,
)

__all__ = [
    "EagerClassLoader",
    "EagerLoadError",
    "eager_order",
    "stream_define",
]
