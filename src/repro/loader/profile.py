"""Profile-guided archive ordering (Section 11 + [KCLZ98]).

The paper: "Profiling could be used to determine a desirable order for
classes" so that eager loading makes the classes an application needs
first available first.  We model the profile as reachability from one
or more root classes over the static reference graph (method/field/
class references in the constant pool) — a stand-in for Krintz et
al.'s first-use profiles — then produce an order that is

* first-use-greedy: classes appear in (approximate) first-touch order,
* dependency-correct: every class still follows its superclass and
  interfaces (the Section 11 constraint), via the stable topological
  sort of :func:`repro.loader.eager.eager_order`.

``time_to_class`` measures the benefit: the fraction of the archive
that must arrive before a given class (and its supertypes) can be
defined.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..classfile import constant_pool as cp
from ..classfile.classfile import ClassFile, write_class
from .eager import eager_order


def referenced_classes(classfile: ClassFile) -> Set[str]:
    """Internal names of every class the constant pool mentions."""
    names: Set[str] = set()
    pool = classfile.pool
    for index, entry in pool.entries():
        if isinstance(entry, cp.ClassInfo):
            name = pool.utf8_value(entry.name_index)
            while name.startswith("["):
                name = name[1:]
            if name.startswith("L") and name.endswith(";"):
                name = name[1:-1]
            if not name or len(name) == 1:
                continue  # primitive array element
            names.add(name)
    names.discard(classfile.name)
    return names


def reference_graph(classfiles: Sequence[ClassFile]
                    ) -> Dict[str, List[str]]:
    """Intra-archive reference graph, deterministic edge order."""
    in_archive = {c.name for c in classfiles}
    return {
        classfile.name: sorted(
            referenced_classes(classfile) & in_archive)
        for classfile in classfiles
    }


def find_roots(classfiles: Sequence[ClassFile]) -> List[str]:
    """Classes declaring ``public static void main(String[])`` — the
    default profile roots."""
    roots = []
    for classfile in classfiles:
        for method in classfile.methods:
            if classfile.member_name(method) == "main" and \
                    classfile.member_descriptor(method) == \
                    "([Ljava/lang/String;)V":
                roots.append(classfile.name)
    return roots


def profile_order(classfiles: Sequence[ClassFile],
                  roots: Optional[Iterable[str]] = None
                  ) -> List[ClassFile]:
    """Order the archive by first-use distance from the roots, then
    repair supertype constraints.

    Classes unreachable from any root go last (they may never load at
    all — the paper's candidates for a separate archive).
    """
    by_name = {c.name: c for c in classfiles}
    graph = reference_graph(classfiles)
    root_names = [r for r in (roots or find_roots(classfiles))
                  if r in by_name]
    if not root_names:
        root_names = [classfiles[0].name] if classfiles else []

    # Breadth-first first-touch order from the roots.
    order: List[str] = []
    seen: Set[str] = set()
    frontier = list(root_names)
    for name in frontier:
        seen.add(name)
    while frontier:
        current = frontier.pop(0)
        order.append(current)
        for successor in graph.get(current, ()):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    # Unreachable classes keep their original relative order, last.
    for classfile in classfiles:
        if classfile.name not in seen:
            order.append(classfile.name)

    return eager_order([by_name[name] for name in order])


def time_to_class(ordered: Sequence[ClassFile], target: str) -> float:
    """Fraction of the archive's class bytes that must arrive before
    ``target`` (and everything preceding it) is available.

    A proxy for [KCLZ98]'s "overlapping execution with transfer"
    metric: smaller means the class is usable earlier in the download.
    """
    sizes = [len(write_class(c)) for c in ordered]
    total = sum(sizes)
    if not total:
        raise ValueError("empty archive")
    running = 0
    for classfile, size in zip(ordered, sizes):
        running += size
        if classfile.name == target:
            return running / total
    raise KeyError(f"{target} not in archive")
