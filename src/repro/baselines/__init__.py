"""Related-work baselines: Jazz [BHV98] and Clazz [HC98]."""

from .clazz import clazz_pack, clazz_total_size, clazz_unpack
from .jazz import jazz_pack, jazz_unpack

__all__ = [
    "clazz_pack",
    "clazz_total_size",
    "clazz_unpack",
    "jazz_pack",
    "jazz_unpack",
]
