"""The Clazz format [HC98] (Section 13.1) as a baseline.

Clazz was the predecessor of Jazz: the same custom-coded structure,
but "applied to individual classfiles in isolation" — so nothing is
shared across class files, and compression suffers accordingly.  We
model it faithfully as the Jazz codec applied one class at a time.
"""

from __future__ import annotations

from typing import List

from ..classfile.classfile import ClassFile
from .jazz import JazzCompressor, JazzDecompressor


def clazz_pack(classfiles: List[ClassFile]) -> List[bytes]:
    """Compress each class file in isolation; one blob per class."""
    return [JazzCompressor().pack([classfile]) for classfile in classfiles]


def clazz_unpack(blobs: List[bytes]) -> List[ClassFile]:
    out: List[ClassFile] = []
    for blob in blobs:
        out.extend(JazzDecompressor(blob).unpack())
    return out


def clazz_total_size(classfiles: List[ClassFile]) -> int:
    """Total archive size under per-class Clazz compression."""
    return sum(len(blob) for blob in clazz_pack(classfiles))
