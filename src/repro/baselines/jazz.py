"""A reimplementation of the Jazz archive format [BHV98] (Section 13.1).

Jazz, per the paper's description, is "a less radical format" than the
packed format:

* it keeps the standard kinds of constant-pool entries but moves them
  into a **global constant pool** shared across all class files;
* it does **no factoring** — class names and descriptors remain whole
  Utf8 strings;
* constant-pool indices inside bytecode are encoded with a **static
  per-kind Huffman code** that ignores locality of reference.

This module implements both directions so the baseline can be
validated by roundtrip, not just measured.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Optional, Tuple

from ..classfile import constant_pool as cp
from ..classfile import mutf8
from ..classfile.attributes import (
    CodeAttribute,
    ConstantValueAttribute,
    ExceptionsAttribute,
    ExceptionTableEntry,
)
from ..classfile.bytecode import (
    Instruction,
    SwitchData,
    assemble,
    disassemble,
    layout,
)
from ..classfile.classfile import ClassFile
from ..classfile.members import FieldInfo, MethodInfo
from ..classfile.opcodes import OPCODES, OperandKind as K
from ..coding.huffman import HuffmanCoder
from ..coding.varint import read_uvarint, write_uvarint

MAGIC = b"JAZZ"

#: Entry kinds with their own global table and Huffman code.
KINDS = ["utf8", "int", "float", "long", "double", "class", "string",
         "nat", "fieldref", "methodref", "imethodref"]

_CP_KIND_FOR_OPERAND = {
    K.CP_FIELD: "fieldref",
    K.CP_METHOD: "methodref",
    K.CP_IMETHOD: "imethodref",
    K.CP_CLASS: "class",
}


class JazzError(ValueError):
    """Raised on malformed Jazz archives."""


class _GlobalPool:
    """Per-kind interned global tables."""

    def __init__(self):
        self.tables: Dict[str, List] = {kind: [] for kind in KINDS}
        self._intern: Dict[str, Dict] = {kind: {} for kind in KINDS}

    def add(self, kind: str, value) -> int:
        table = self._intern[kind]
        index = table.get(value)
        if index is None:
            index = len(self.tables[kind])
            self.tables[kind].append(value)
            table[value] = index
        return index

    def intern_entry(self, pool: cp.ConstantPool,
                     index: int) -> Tuple[str, int]:
        """Intern the entry at local ``index``; returns (kind, gid)."""
        entry = pool[index]
        if isinstance(entry, cp.Utf8):
            return "utf8", self.add("utf8", entry.value)
        if isinstance(entry, cp.IntegerConst):
            return "int", self.add("int", entry.value)
        if isinstance(entry, cp.FloatConst):
            return "float", self.add("float", entry.bits)
        if isinstance(entry, cp.LongConst):
            return "long", self.add("long", entry.value)
        if isinstance(entry, cp.DoubleConst):
            return "double", self.add("double", entry.bits)
        if isinstance(entry, cp.ClassInfo):
            name = pool.utf8_value(entry.name_index)
            return "class", self.add("class", self.add("utf8", name))
        if isinstance(entry, cp.StringConst):
            text = pool.utf8_value(entry.utf8_index)
            return "string", self.add("string", self.add("utf8", text))
        if isinstance(entry, cp.NameAndType):
            pair = (self.add("utf8", pool.utf8_value(entry.name_index)),
                    self.add("utf8",
                             pool.utf8_value(entry.descriptor_index)))
            return "nat", self.add("nat", pair)
        if isinstance(entry, (cp.Fieldref, cp.Methodref,
                              cp.InterfaceMethodref)):
            owner = pool.class_name(entry.class_index)
            class_gid = self.add("class", self.add("utf8", owner))
            nat = pool[entry.name_and_type_index]
            nat_gid = self.add("nat", (
                self.add("utf8", pool.utf8_value(nat.name_index)),
                self.add("utf8", pool.utf8_value(nat.descriptor_index))))
            kind = {cp.Fieldref: "fieldref", cp.Methodref: "methodref",
                    cp.InterfaceMethodref: "imethodref"}[type(entry)]
            return kind, self.add(kind, (class_gid, nat_gid))
        raise JazzError(f"unsupported entry {entry!r}")

    # -- serialization ----------------------------------------------------

    def serialize(self) -> bytes:
        out = bytearray()
        write_uvarint(out, len(self.tables["utf8"]))
        for text in self.tables["utf8"]:
            encoded = mutf8.encode(text)
            write_uvarint(out, len(encoded))
            out.extend(encoded)
        for kind in ("int", "long"):
            values = self.tables[kind]
            write_uvarint(out, len(values))
            for value in values:
                write_uvarint(out, value & ((1 << 64) - 1))
        for kind, fmt in (("float", ">I"), ("double", ">Q")):
            values = self.tables[kind]
            write_uvarint(out, len(values))
            for bits in values:
                out.extend(struct.pack(fmt, bits))
        for kind in ("class", "string"):
            values = self.tables[kind]
            write_uvarint(out, len(values))
            for utf8_gid in values:
                write_uvarint(out, utf8_gid)
        write_uvarint(out, len(self.tables["nat"]))
        for name_gid, descriptor_gid in self.tables["nat"]:
            write_uvarint(out, name_gid)
            write_uvarint(out, descriptor_gid)
        for kind in ("fieldref", "methodref", "imethodref"):
            values = self.tables[kind]
            write_uvarint(out, len(values))
            for class_gid, nat_gid in values:
                write_uvarint(out, class_gid)
                write_uvarint(out, nat_gid)
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "_GlobalPool":
        pool = cls()
        pos = 0
        count, pos = read_uvarint(data, pos)
        for _ in range(count):
            length, pos = read_uvarint(data, pos)
            pool.tables["utf8"].append(mutf8.decode(data[pos:pos + length]))
            pos += length
        for kind in ("int", "long"):
            count, pos = read_uvarint(data, pos)
            for _ in range(count):
                raw, pos = read_uvarint(data, pos)
                if raw >= 1 << 63:
                    raw -= 1 << 64
                pool.tables[kind].append(raw)
        for kind, width, fmt in (("float", 4, ">I"), ("double", 8, ">Q")):
            count, pos = read_uvarint(data, pos)
            for _ in range(count):
                pool.tables[kind].append(
                    struct.unpack(fmt, data[pos:pos + width])[0])
                pos += width
        for kind in ("class", "string"):
            count, pos = read_uvarint(data, pos)
            for _ in range(count):
                gid, pos = read_uvarint(data, pos)
                pool.tables[kind].append(gid)
        count, pos = read_uvarint(data, pos)
        for _ in range(count):
            name_gid, pos = read_uvarint(data, pos)
            descriptor_gid, pos = read_uvarint(data, pos)
            pool.tables["nat"].append((name_gid, descriptor_gid))
        for kind in ("fieldref", "methodref", "imethodref"):
            count, pos = read_uvarint(data, pos)
            for _ in range(count):
                class_gid, pos = read_uvarint(data, pos)
                nat_gid, pos = read_uvarint(data, pos)
                pool.tables[kind].append((class_gid, nat_gid))
        return pool


class JazzCompressor:
    """Encoder: class files -> Jazz archive bytes."""

    def __init__(self):
        self.pool = _GlobalPool()
        self.structure = bytearray()
        #: per-kind operand index sequences, Huffman-coded at the end.
        self.index_sequences: Dict[str, List[int]] = {
            kind: [] for kind in KINDS}

    def pack(self, classfiles: List[ClassFile]) -> bytes:
        write_uvarint(self.structure, len(classfiles))
        for classfile in classfiles:
            self._encode_class(classfile)
        tables = zlib.compress(self.pool.serialize(), 9)
        structure = zlib.compress(bytes(self.structure), 9)
        huffman = self._encode_indices()
        out = bytearray(MAGIC)
        for section in (tables, structure, huffman):
            out.extend(struct.pack(">I", len(section)))
            out.extend(section)
        return bytes(out)

    def _encode_indices(self) -> bytes:
        out = bytearray()
        for kind in KINDS:
            sequence = self.index_sequences[kind]
            write_uvarint(out, len(sequence))
            if not sequence:
                continue
            frequencies: Dict[int, int] = {}
            for symbol in sequence:
                frequencies[symbol] = frequencies.get(symbol, 0) + 1
            coder = HuffmanCoder(frequencies)
            write_uvarint(out, len(coder.lengths))
            for symbol in sorted(coder.lengths):
                write_uvarint(out, symbol)
                out.append(coder.lengths[symbol])
            payload = coder.encode(sequence)
            write_uvarint(out, len(payload))
            out.extend(payload)
        return bytes(out)

    # -- structure --------------------------------------------------------

    def _u(self, value: int) -> None:
        write_uvarint(self.structure, value)

    def _gid(self, kind: str, gid: int) -> None:
        """Queue a per-kind global index for Huffman coding."""
        self.index_sequences[kind].append(gid)

    def _entry_gid(self, classfile: ClassFile, index: int,
                   expected_kind: Optional[str] = None) -> None:
        kind, gid = self.pool.intern_entry(classfile.pool, index)
        if expected_kind is not None and kind != expected_kind:
            raise JazzError(f"expected {expected_kind}, found {kind}")
        self._gid(kind, gid)

    def _encode_class(self, classfile: ClassFile) -> None:
        self._u(classfile.access_flags)
        self._entry_gid(classfile, classfile.this_class, "class")
        self._u(1 if classfile.super_class else 0)
        if classfile.super_class:
            self._entry_gid(classfile, classfile.super_class, "class")
        self._u(len(classfile.interfaces))
        for interface in classfile.interfaces:
            self._entry_gid(classfile, interface, "class")
        self._u(len(classfile.fields))
        self._u(len(classfile.methods))
        for member in classfile.fields:
            self._encode_member(classfile, member, is_field=True)
        for member in classfile.methods:
            self._encode_member(classfile, member, is_field=False)

    def _encode_member(self, classfile: ClassFile, member,
                       is_field: bool) -> None:
        pool = classfile.pool
        self._u(member.access_flags)
        self._gid("utf8", self.pool.add(
            "utf8", pool.utf8_value(member.name_index)))
        self._gid("utf8", self.pool.add(
            "utf8", pool.utf8_value(member.descriptor_index)))
        constant = None
        exceptions = None
        code = None
        for attribute in member.attributes:
            if isinstance(attribute, ConstantValueAttribute):
                constant = attribute
            elif isinstance(attribute, ExceptionsAttribute):
                exceptions = attribute
            elif isinstance(attribute, CodeAttribute):
                code = attribute
        bits = (1 if constant else 0) | (2 if exceptions else 0) | \
            (4 if code else 0)
        self._u(bits)
        if constant is not None:
            entry = pool[constant.value_index]
            kind = {cp.IntegerConst: "int", cp.FloatConst: "float",
                    cp.LongConst: "long", cp.DoubleConst: "double",
                    cp.StringConst: "string"}[type(entry)]
            self._u(KINDS.index(kind))
            self._entry_gid(classfile, constant.value_index, kind)
        if exceptions is not None:
            self._u(len(exceptions.exception_indices))
            for index in exceptions.exception_indices:
                self._entry_gid(classfile, index, "class")
        if code is not None:
            self._encode_code(classfile, code)

    def _encode_code(self, classfile: ClassFile,
                     code: CodeAttribute) -> None:
        self._u(code.max_stack)
        self._u(code.max_locals)
        instructions = disassemble(code.code)
        self._u(len(instructions))
        for instruction in instructions:
            self._encode_instruction(classfile, instruction)
        self._u(len(code.exception_table))
        for entry in code.exception_table:
            self._u(entry.start_pc)
            self._u(entry.end_pc)
            self._u(entry.handler_pc)
            self._u(1 if entry.catch_type else 0)
            if entry.catch_type:
                self._entry_gid(classfile, entry.catch_type, "class")

    def _encode_instruction(self, classfile: ClassFile,
                            instruction: Instruction) -> None:
        pool = classfile.pool
        spec = instruction.spec
        self.structure.append(instruction.opcode)
        if spec.is_switch:
            switch = instruction.switch
            self._u(switch.default - instruction.offset + (1 << 20))
            if switch.is_table:
                self._u(1)
                self._u(switch.low + (1 << 20))
                self._u(len(switch.pairs))
                for _, target in switch.pairs:
                    self._u(target - instruction.offset + (1 << 20))
            else:
                self._u(0)
                self._u(len(switch.pairs))
                for match, target in switch.pairs:
                    self._u(match + (1 << 20))
                    self._u(target - instruction.offset + (1 << 20))
            return
        for kind in spec.operands:
            if kind == K.LOCAL:
                self._u(instruction.local)
            elif kind in (K.SBYTE, K.SSHORT, K.IINC_DELTA):
                self._u(instruction.immediate + (1 << 16))
            elif kind in (K.BRANCH2, K.BRANCH4):
                self._u(instruction.target - instruction.offset + (1 << 20))
            elif kind == K.ATYPE:
                self._u(instruction.atype)
            elif kind == K.DIMS:
                self._u(instruction.dims)
            elif kind == K.COUNT:
                self._u(instruction.count)
            elif kind == K.ZERO:
                pass
            elif kind in (K.CP_LDC, K.CP_LDC_W, K.CP_LDC2_W):
                entry_kind, gid = self.pool.intern_entry(
                    pool, instruction.cp_index)
                self._u(KINDS.index(entry_kind))
                self._gid(entry_kind, gid)
            elif kind in _CP_KIND_FOR_OPERAND:
                self._entry_gid(classfile, instruction.cp_index,
                                _CP_KIND_FOR_OPERAND[kind])
            else:  # pragma: no cover
                raise JazzError(f"unhandled operand {kind}")


class JazzDecompressor:
    """Decoder: Jazz archive bytes -> class files."""

    def __init__(self, data: bytes):
        if data[:4] != MAGIC:
            raise JazzError("bad Jazz magic")
        pos = 4
        sections = []
        for _ in range(3):
            length = struct.unpack(">I", data[pos:pos + 4])[0]
            pos += 4
            sections.append(data[pos:pos + length])
            pos += length
        self.pool = _GlobalPool.deserialize(zlib.decompress(sections[0]))
        self.structure = zlib.decompress(sections[1])
        self.pos = 0
        self._queues: Dict[str, List[int]] = {}
        self._queue_pos: Dict[str, int] = {}
        self._decode_indices(sections[2])

    def _decode_indices(self, data: bytes) -> None:
        pos = 0
        for kind in KINDS:
            count, pos = read_uvarint(data, pos)
            if not count:
                self._queues[kind] = []
                self._queue_pos[kind] = 0
                continue
            symbol_count, pos = read_uvarint(data, pos)
            lengths: Dict[int, int] = {}
            for _ in range(symbol_count):
                symbol, pos = read_uvarint(data, pos)
                lengths[symbol] = data[pos]
                pos += 1
            payload_length, pos = read_uvarint(data, pos)
            payload = data[pos:pos + payload_length]
            pos += payload_length
            coder = HuffmanCoder.from_lengths(lengths)
            self._queues[kind] = coder.decode(payload, count)
            self._queue_pos[kind] = 0

    # -- structure --------------------------------------------------------

    def _u(self) -> int:
        value, self.pos = read_uvarint(self.structure, self.pos)
        return value

    def _gid(self, kind: str) -> int:
        position = self._queue_pos[kind]
        self._queue_pos[kind] = position + 1
        return self._queues[kind][position]

    def unpack(self) -> List[ClassFile]:
        count = self._u()
        return [self._decode_class() for _ in range(count)]

    # -- global -> local pool ----------------------------------------------

    def _local_entry(self, pool: cp.ConstantPool, kind: str,
                     gid: int) -> int:
        tables = self.pool.tables
        if kind == "utf8":
            return pool.utf8(tables["utf8"][gid])
        if kind == "int":
            return pool.add(cp.IntegerConst(tables["int"][gid]))
        if kind == "float":
            return pool.add(cp.FloatConst(tables["float"][gid]))
        if kind == "long":
            return pool.add(cp.LongConst(tables["long"][gid]))
        if kind == "double":
            return pool.add(cp.DoubleConst(tables["double"][gid]))
        if kind == "class":
            return pool.class_info(tables["utf8"][tables["class"][gid]])
        if kind == "string":
            return pool.string(tables["utf8"][tables["string"][gid]])
        if kind == "nat":
            name_gid, descriptor_gid = tables["nat"][gid]
            return pool.name_and_type(tables["utf8"][name_gid],
                                      tables["utf8"][descriptor_gid])
        class_gid, nat_gid = tables[kind][gid]
        owner = tables["utf8"][tables["class"][class_gid]]
        name_gid, descriptor_gid = tables["nat"][nat_gid]
        name = tables["utf8"][name_gid]
        descriptor = tables["utf8"][descriptor_gid]
        if kind == "fieldref":
            return pool.fieldref(owner, name, descriptor)
        if kind == "methodref":
            return pool.methodref(owner, name, descriptor)
        if kind == "imethodref":
            return pool.interface_methodref(owner, name, descriptor)
        raise JazzError(f"unknown kind {kind}")

    def _decode_class(self) -> ClassFile:
        classfile = ClassFile()
        pool = classfile.pool
        classfile.access_flags = self._u()
        classfile.this_class = self._local_entry(pool, "class",
                                                 self._gid("class"))
        if self._u():
            classfile.super_class = self._local_entry(
                pool, "class", self._gid("class"))
        interface_count = self._u()
        classfile.interfaces = [
            self._local_entry(pool, "class", self._gid("class"))
            for _ in range(interface_count)]
        field_count = self._u()
        method_count = self._u()
        for _ in range(field_count):
            classfile.fields.append(
                self._decode_member(pool, FieldInfo))
        for _ in range(method_count):
            classfile.methods.append(
                self._decode_member(pool, MethodInfo))
        return classfile

    def _decode_member(self, pool: cp.ConstantPool, factory):
        access_flags = self._u()
        name_index = self._local_entry(pool, "utf8", self._gid("utf8"))
        descriptor_index = self._local_entry(pool, "utf8",
                                             self._gid("utf8"))
        member = factory(access_flags, name_index, descriptor_index)
        bits = self._u()
        if bits & 1:
            kind = KINDS[self._u()]
            member.attributes.append(ConstantValueAttribute(
                self._local_entry(pool, kind, self._gid(kind))))
        if bits & 2:
            count = self._u()
            member.attributes.append(ExceptionsAttribute([
                self._local_entry(pool, "class", self._gid("class"))
                for _ in range(count)]))
        if bits & 4:
            member.attributes.append(self._decode_code(pool))
        return member

    def _decode_code(self, pool: cp.ConstantPool) -> CodeAttribute:
        max_stack = self._u()
        max_locals = self._u()
        instruction_count = self._u()
        instructions = [self._decode_instruction(pool)
                        for _ in range(instruction_count)]
        layout(instructions)
        # Branch targets were encoded as deltas against the original
        # offsets, which the canonical layout reproduces; make them
        # absolute now that offsets are assigned.
        for instruction in instructions:
            if getattr(instruction, "_target_is_relative", False):
                instruction.target += instruction.offset
            if getattr(instruction, "_switch_is_relative", False):
                switch = instruction.switch
                switch.default += instruction.offset
                switch.pairs = [(m, t + instruction.offset)
                                for m, t in switch.pairs]
        raw = assemble(instructions, relayout=False)
        handler_count = self._u()
        table = []
        for _ in range(handler_count):
            start = self._u()
            end = self._u()
            handler_pc = self._u()
            catch_type = 0
            if self._u():
                catch_type = self._local_entry(pool, "class",
                                               self._gid("class"))
            table.append(ExceptionTableEntry(start, end, handler_pc,
                                             catch_type))
        return CodeAttribute(max_stack, max_locals, raw, table)

    def _decode_instruction(self, pool: cp.ConstantPool) -> Instruction:
        opcode = self.structure[self.pos]
        self.pos += 1
        spec = OPCODES[opcode]
        instruction = Instruction(opcode)
        # Offsets are assigned later by layout(); decode targets as
        # deltas against a running offset we maintain here.
        if spec.is_switch:
            default_delta = self._u() - (1 << 20)
            is_table = bool(self._u())
            if is_table:
                low = self._u() - (1 << 20)
                count = self._u()
                pairs = [(low + i, self._u() - (1 << 20))
                         for i in range(count)]
                instruction.switch = SwitchData(default_delta, low, pairs)
            else:
                count = self._u()
                pairs = []
                for _ in range(count):
                    match = self._u() - (1 << 20)
                    target = self._u() - (1 << 20)
                    pairs.append((match, target))
                instruction.switch = SwitchData(default_delta, None, pairs)
            instruction._switch_is_relative = True  # type: ignore
            return instruction
        for kind in spec.operands:
            if kind == K.LOCAL:
                instruction.local = self._u()
            elif kind in (K.SBYTE, K.SSHORT, K.IINC_DELTA):
                instruction.immediate = self._u() - (1 << 16)
            elif kind in (K.BRANCH2, K.BRANCH4):
                instruction.target = self._u() - (1 << 20)
                instruction._target_is_relative = True  # type: ignore
            elif kind == K.ATYPE:
                instruction.atype = self._u()
            elif kind == K.DIMS:
                instruction.dims = self._u()
            elif kind == K.COUNT:
                instruction.count = self._u()
            elif kind == K.ZERO:
                pass
            elif kind in (K.CP_LDC, K.CP_LDC_W, K.CP_LDC2_W):
                entry_kind = KINDS[self._u()]
                instruction.cp_index = self._local_entry(
                    pool, entry_kind, self._gid(entry_kind))
            elif kind in _CP_KIND_FOR_OPERAND:
                entry_kind = _CP_KIND_FOR_OPERAND[kind]
                instruction.cp_index = self._local_entry(
                    pool, entry_kind, self._gid(entry_kind))
            else:  # pragma: no cover
                raise JazzError(f"unhandled operand {kind}")
        return instruction


def jazz_pack(classfiles: List[ClassFile]) -> bytes:
    """Compress class files into a Jazz archive."""
    return JazzCompressor().pack(classfiles)


def jazz_unpack(data: bytes) -> List[ClassFile]:
    """Decompress a Jazz archive."""
    decompressor = JazzDecompressor(data)
    classfiles = decompressor.unpack()
    return classfiles
