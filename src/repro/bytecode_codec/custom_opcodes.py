"""Custom-opcode pair combining (Section 7.2).

The paper's experiment, after [EEF+97, FP95]: repeatedly find the pair
of adjacent opcodes (or a *skip-pair* — two opcodes with one wildcard
slot between them) whose replacement by a fresh opcode most reduces the
estimated encoded length, where a symbol occurring with frequency ``p``
costs ``log2(1/p)`` bits.  After each introduction the frequencies are
recalculated.

The paper found this "substantially decreased the number of opcodes"
but barely improved the gzipped size, and dropped it; the benchmark
``test_table4_bytecode.py`` reproduces that comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Fresh opcodes can use the byte values the JVM leaves unassigned
#: (0xCA breakpoint slot and 0xCB-0xFF), keeping sequences byte-wide.
FIRST_FRESH = 0xCA
MAX_FRESH = 0x100 - FIRST_FRESH


@dataclass(frozen=True)
class PairRule:
    """One introduced opcode: ``first [skip] second`` -> ``fresh``."""

    fresh: int
    first: int
    second: int
    skip: bool  # True when a wildcard slot sits between the two


def _entropy_cost(frequencies: Dict[int, int]) -> Dict[int, float]:
    total = sum(frequencies.values()) or 1
    return {symbol: math.log2(total / count)
            for symbol, count in frequencies.items()}


def _count_pairs(sequences: List[List[int]]
                 ) -> Tuple[Dict[Tuple[int, int], int],
                            Dict[Tuple[int, int], int]]:
    adjacent: Dict[Tuple[int, int], int] = {}
    skip: Dict[Tuple[int, int], int] = {}
    for sequence in sequences:
        for i in range(len(sequence) - 1):
            pair = (sequence[i], sequence[i + 1])
            adjacent[pair] = adjacent.get(pair, 0) + 1
        for i in range(len(sequence) - 2):
            pair = (sequence[i], sequence[i + 2])
            skip[pair] = skip.get(pair, 0) + 1
    return adjacent, skip


def _apply_rule(sequence: List[int], rule: PairRule) -> List[int]:
    out: List[int] = []
    i = 0
    n = len(sequence)
    while i < n:
        if not rule.skip and i + 1 < n and \
                sequence[i] == rule.first and sequence[i + 1] == rule.second:
            out.append(rule.fresh)
            i += 2
        elif rule.skip and i + 2 < n and \
                sequence[i] == rule.first and \
                sequence[i + 2] == rule.second:
            # The wildcard operand follows the fresh opcode.
            out.append(rule.fresh)
            out.append(sequence[i + 1])
            i += 3
        else:
            out.append(sequence[i])
            i += 1
    return out


def combine_pairs(sequences: List[List[int]],
                  max_rules: int = MAX_FRESH,
                  min_gain_bits: float = 64.0
                  ) -> Tuple[List[List[int]], List[PairRule]]:
    """Greedy pair combining; returns (rewritten sequences, rules).

    ``min_gain_bits`` stops the loop when the best candidate saves less
    than that many estimated bits (the dictionary row itself costs a
    few bytes to transmit).
    """
    sequences = [list(sequence) for sequence in sequences]
    rules: List[PairRule] = []
    while len(rules) < max_rules:
        frequencies: Dict[int, int] = {}
        for sequence in sequences:
            for symbol in sequence:
                frequencies[symbol] = frequencies.get(symbol, 0) + 1
        cost = _entropy_cost(frequencies)
        total = sum(frequencies.values())
        if total == 0:
            break
        adjacent, skip = _count_pairs(sequences)
        best: Optional[Tuple[float, Tuple[int, int], bool]] = None
        for pairs, is_skip in ((adjacent, False), (skip, True)):
            for (first, second), count in pairs.items():
                if count < 4:
                    continue
                new_cost = math.log2(max(total, 2) / count)
                gain = count * (cost[first] + cost[second] - new_cost)
                if best is None or gain > best[0]:
                    best = (gain, (first, second), is_skip)
        if best is None or best[0] < min_gain_bits:
            break
        fresh = FIRST_FRESH + len(rules)
        (gain, (first, second), is_skip) = best
        rule = PairRule(fresh, first, second, is_skip)
        rules.append(rule)
        sequences = [_apply_rule(sequence, rule) for sequence in sequences]
    return sequences, rules


def expand_rules(sequences: List[List[int]],
                 rules: List[PairRule]) -> List[List[int]]:
    """Inverse of :func:`combine_pairs` (the cheap decompressor side).

    Rules must be undone in *reverse introduction order*: a later rule
    may capture an earlier rule's fresh opcode (or sit between a skip
    rule's opcode and its wildcard operand), so expanding all rules in
    one simultaneous pass would reassemble operands in the wrong
    positions.  Each rule's definition only mentions symbols that
    existed before it, so one pass per rule suffices.
    """
    out: List[List[int]] = []
    for sequence in sequences:
        current = list(sequence)
        for rule in reversed(rules):
            expanded: List[int] = []
            i = 0
            while i < len(current):
                if current[i] != rule.fresh:
                    expanded.append(current[i])
                    i += 1
                elif rule.skip:
                    expanded.append(rule.first)
                    expanded.append(current[i + 1])
                    expanded.append(rule.second)
                    i += 2
                else:
                    expanded.append(rule.first)
                    expanded.append(rule.second)
                    i += 1
            current = expanded
        out.append(current)
    return out


def sequences_to_bytes(sequences: List[List[int]]) -> bytes:
    """Flatten opcode sequences to a byte stream for zlib comparison."""
    out = bytearray()
    for sequence in sequences:
        out.extend(sequence)
    return bytes(out)
