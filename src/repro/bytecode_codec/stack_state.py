"""Approximate stack-state tracking and opcode collapsing (Section 7.1).

The compressor computes, before each instruction, an approximation of
the operand stack's contents (number and types of values).  When the
state is known, typed opcode families collapse onto a single canonical
member (``ladd``/``fadd``/``dadd`` all become ``iadd``), and the
decompressor — running this *same* state machine over the decoded
stream — regenerates the original opcode from the types on its own
stack.  The computation is forward-only and remembers the state over
at most one pending forward branch at a time, exactly the paper's
constraints; whenever the state is unknown, opcodes pass through
unchanged, so the scheme is always lossless.

The stack is modeled at slot granularity.  Each slot holds one of:

* a primitive category: ``I`` (covers int/byte/short/char/boolean),
  ``F``, ``J``, ``D`` (wide values occupy their category slot plus a
  ``#`` second-half slot above it),
* a reference descriptor (``Ljava/lang/String;``, ``[I``, ...) when
  known, or the generic ``A`` when only "some reference" is known,
* ``N`` for null, ``R`` for a ``jsr`` return address.

The same object is also used to derive the (top-two-categories)
context for method-reference MTF queues (Section 5.1.6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..classfile.descriptors import parse_method_descriptor
from ..classfile.opcodes import ATYPE_DESCRIPTORS, BY_NAME

SECOND = "#"

_OP = {name: spec.opcode for name, spec in BY_NAME.items()}

#: Typed families: canonical mnemonic -> {type category: member mnemonic}.
ARITH_FAMILIES = {
    "iadd": {"I": "iadd", "J": "ladd", "F": "fadd", "D": "dadd"},
    "isub": {"I": "isub", "J": "lsub", "F": "fsub", "D": "dsub"},
    "imul": {"I": "imul", "J": "lmul", "F": "fmul", "D": "dmul"},
    "idiv": {"I": "idiv", "J": "ldiv", "F": "fdiv", "D": "ddiv"},
    "irem": {"I": "irem", "J": "lrem", "F": "frem", "D": "drem"},
    "ineg": {"I": "ineg", "J": "lneg", "F": "fneg", "D": "dneg"},
    "iand": {"I": "iand", "J": "land"},
    "ior": {"I": "ior", "J": "lor"},
    "ixor": {"I": "ixor", "J": "lxor"},
}
SHIFT_FAMILIES = {
    "ishl": {"I": "ishl", "J": "lshl"},
    "ishr": {"I": "ishr", "J": "lshr"},
    "iushr": {"I": "iushr", "J": "lushr"},
}
RETURN_FAMILY = {"I": "ireturn", "J": "lreturn", "F": "freturn",
                 "D": "dreturn", "A": "areturn"}
STORE_FAMILIES = {
    "": {"I": "istore", "J": "lstore", "F": "fstore", "D": "dstore",
         "A": "astore"},
    "_0": {"I": "istore_0", "J": "lstore_0", "F": "fstore_0",
           "D": "dstore_0", "A": "astore_0"},
    "_1": {"I": "istore_1", "J": "lstore_1", "F": "fstore_1",
           "D": "dstore_1", "A": "astore_1"},
    "_2": {"I": "istore_2", "J": "lstore_2", "F": "fstore_2",
           "D": "dstore_2", "A": "astore_2"},
    "_3": {"I": "istore_3", "J": "lstore_3", "F": "fstore_3",
           "D": "dstore_3", "A": "astore_3"},
}
ALOAD_FAMILY = {"I": "iaload", "J": "laload", "F": "faload",
                "D": "daload", "A": "aaload", "B": "baload",
                "C": "caload", "S": "saload"}
ASTORE_FAMILY = {"I": "iastore", "J": "lastore", "F": "fastore",
                 "D": "dastore", "A": "aastore", "B": "bastore",
                 "C": "castore", "S": "sastore"}

#: member mnemonic -> (canonical mnemonic, family dict)
_MEMBER_TO_FAMILY: Dict[str, Tuple[str, Dict[str, str]]] = {}
for _fams in (ARITH_FAMILIES, SHIFT_FAMILIES):
    for _canon, _family in _fams.items():
        for _member in _family.values():
            _MEMBER_TO_FAMILY[_member] = (_canon, _family)
for _member in RETURN_FAMILY.values():
    _MEMBER_TO_FAMILY[_member] = ("ireturn", RETURN_FAMILY)
for _suffix, _family in STORE_FAMILIES.items():
    for _member in _family.values():
        _MEMBER_TO_FAMILY[_member] = ("istore" + _suffix, _family)
for _member in ALOAD_FAMILY.values():
    _MEMBER_TO_FAMILY[_member] = ("iaload", ALOAD_FAMILY)
for _member in ASTORE_FAMILY.values():
    _MEMBER_TO_FAMILY[_member] = ("iastore", ASTORE_FAMILY)


def value_category(slot_type: str) -> str:
    """Map a slot type to a family category letter."""
    if slot_type in ("I", "J", "F", "D"):
        return slot_type
    if slot_type in ("N", "A") or slot_type.startswith(("L", "[")):
        return "A"
    return "?"  # SECOND, R, or anything unexpected


def _element_category(array_type: str) -> Optional[str]:
    """Family category of an array's elements, if determinable."""
    if not array_type.startswith("["):
        return None
    element = array_type[1:]
    if element in ("I",):
        return "I"
    if element in ("B", "Z"):
        return "B"
    if element == "C":
        return "C"
    if element == "S":
        return "S"
    if element == "J":
        return "J"
    if element == "F":
        return "F"
    if element == "D":
        return "D"
    return "A"  # reference or nested array elements


def _push_type(stack: List[str], descriptor: str) -> None:
    if descriptor == "V":
        return
    if descriptor in ("J", "D"):
        stack.append(descriptor)
        stack.append(SECOND)
    elif descriptor in ("B", "C", "S", "Z", "I"):
        stack.append("I")
    elif descriptor == "F":
        stack.append("F")
    else:
        stack.append(descriptor)


class StackTracker:
    """The per-method approximate stack state."""

    def __init__(self):
        self.stack: Optional[List[str]] = []
        #: single pending forward-branch state: (offset, stack copy)
        self.pending: Optional[Tuple[int, List[str]]] = None

    # -- queries ---------------------------------------------------------

    @property
    def known(self) -> bool:
        return self.stack is not None

    def top_value_type(self, depth: int = 0) -> Optional[str]:
        """Type of the value ``depth`` values below the top (0 = top)."""
        if self.stack is None:
            return None
        index = len(self.stack) - 1
        for _ in range(depth + 1):
            if index < 0:
                return None
            if self.stack[index] == SECOND:
                index -= 1
            if index < 0:
                return None
            value_type = self.stack[index]
            index -= 1
        return value_type

    def top_categories(self) -> Tuple[str, str]:
        """Top-two value categories, for MTF context selection."""
        if self.stack is None:
            return ("?", "?")
        first = self.top_value_type(0)
        second = self.top_value_type(1)
        return (
            value_category(first) if first is not None else "-",
            value_category(second) if second is not None else "-",
        )

    # -- control flow -----------------------------------------------------

    def at_instruction(self, offset: int) -> None:
        """Call before processing the instruction at ``offset``."""
        if self.pending is not None and self.pending[0] == offset:
            _, saved = self.pending
            self.pending = None
            if self.stack is None:
                self.stack = saved
            elif saved is not None and saved != self.stack:
                self.stack = None

    def _save_branch(self, current_offset: int, target: int) -> None:
        if target > current_offset and self.pending is None and \
                self.stack is not None:
            self.pending = (target, list(self.stack))

    # -- collapse / expand -------------------------------------------------

    def collapse(self, mnemonic: str) -> str:
        """Compressor side: canonicalize ``mnemonic`` if the state
        determines it; otherwise return it unchanged."""
        entry = _MEMBER_TO_FAMILY.get(mnemonic)
        if entry is None or self.stack is None:
            return mnemonic
        canonical, family = entry
        regenerated = self._regenerate(canonical, family)
        if regenerated == mnemonic:
            return canonical
        return mnemonic

    def expand(self, mnemonic: str) -> str:
        """Decompressor side: regenerate the original opcode for a
        canonical family member when the state determines it."""
        entry = _MEMBER_TO_FAMILY.get(mnemonic)
        if entry is None or self.stack is None:
            return mnemonic
        canonical, family = entry
        if mnemonic != canonical:
            return mnemonic
        regenerated = self._regenerate(canonical, family)
        return regenerated if regenerated is not None else mnemonic

    def _regenerate(self, canonical: str,
                    family: Dict[str, str]) -> Optional[str]:
        """Which family member does the current state imply for the
        canonical opcode?  None when the state cannot tell."""
        if canonical in ("iaload", "iastore"):
            return self._regenerate_array(canonical)
        if canonical in SHIFT_FAMILIES:
            # Shift: value is one below the int shift amount.
            value_type = self.top_value_type(1)
        else:
            value_type = self.top_value_type(0)
        if value_type is None:
            return None
        category = value_category(value_type)
        return family.get(category)

    def _regenerate_array(self, canonical: str) -> Optional[str]:
        if self.stack is None:
            return None
        if canonical == "iaload":
            array_type = self.top_value_type(1)
            family = ALOAD_FAMILY
        else:
            # xastore: [array, index, value]; the value may be wide,
            # which top_value_type's second-half markers disambiguate.
            array_type = self.top_value_type(2)
            family = ASTORE_FAMILY
        if array_type is None:
            return None
        category = _element_category(array_type)
        if category is None:
            return None
        return family.get(category)

    # -- effects -----------------------------------------------------------

    def apply(self, mnemonic: str, offset: int, *,
              local: Optional[int] = None,
              field_descriptor: Optional[str] = None,
              method_descriptor: Optional[str] = None,
              is_static_call: bool = False,
              const_kind: Optional[str] = None,
              class_descriptor: Optional[str] = None,
              atype: Optional[int] = None,
              dims: Optional[int] = None,
              branch_target: Optional[int] = None,
              switch: bool = False) -> None:
        """Update the state across one (original, expanded) instruction.

        ``mnemonic`` must be the *real* (uncollapsed) mnemonic.  Branch
        and terminator bookkeeping is included: call exactly once per
        instruction, after collapse/expand decisions were made.
        """
        stack = self.stack
        if switch:
            self.stack = None
            return
        if mnemonic in ("goto", "goto_w"):
            if branch_target is not None:
                self._save_branch(offset, branch_target)
            self.stack = None
            return
        if mnemonic in ("ireturn", "lreturn", "freturn", "dreturn",
                        "areturn", "return", "athrow", "ret"):
            self.stack = None
            return
        if mnemonic in ("jsr", "jsr_w"):
            self.stack = None
            return
        if stack is None:
            return
        try:
            self._apply_effect(stack, mnemonic, field_descriptor,
                               method_descriptor, is_static_call,
                               const_kind, class_descriptor, atype, dims)
        except _Unknown:
            self.stack = None
            if branch_target is not None:
                # Even with an unknown result we no longer know the
                # state; do not save.
                return
            return
        if branch_target is not None:
            self._save_branch(offset, branch_target)

    def _apply_effect(self, stack: List[str], mnemonic: str,
                      field_descriptor, method_descriptor, is_static_call,
                      const_kind, class_descriptor, atype, dims) -> None:
        pop = self._pop_value
        if mnemonic == "nop" or mnemonic == "iinc":
            return
        if mnemonic == "aconst_null":
            stack.append("N")
            return
        if mnemonic.startswith("iconst") or mnemonic in ("bipush", "sipush"):
            stack.append("I")
            return
        if mnemonic.startswith("lconst"):
            _push_type(stack, "J")
            return
        if mnemonic.startswith("fconst"):
            stack.append("F")
            return
        if mnemonic.startswith("dconst"):
            _push_type(stack, "D")
            return
        if mnemonic in ("ldc", "ldc_w", "ldc2_w"):
            kinds = {"int": "I", "float": "F", "long": "J", "double": "D",
                     "string": "Ljava/lang/String;"}
            _push_type(stack, kinds[const_kind])
            return
        if mnemonic[1:] in ("load", "load_0", "load_1", "load_2",
                            "load_3") and mnemonic[0] in "ilfda":
            kinds = {"i": "I", "l": "J", "f": "F", "d": "D", "a": "A"}
            _push_type(stack, kinds[mnemonic[0]])
            return
        if mnemonic in ALOAD_FAMILY.values():
            pop()  # index
            array_type = pop()
            element = {"iaload": "I", "laload": "J", "faload": "F",
                       "daload": "D", "baload": "I", "caload": "I",
                       "saload": "I"}.get(mnemonic)
            if mnemonic == "aaload":
                if array_type.startswith("["):
                    _push_type(stack, array_type[1:])
                else:
                    stack.append("A")
            else:
                _push_type(stack, element)
            return
        if mnemonic[1:] in ("store", "store_0", "store_1", "store_2",
                            "store_3") and mnemonic[0] in "ilfda":
            pop()
            return
        if mnemonic in ASTORE_FAMILY.values():
            pop()  # value
            pop()  # index
            pop()  # array
            return
        if mnemonic == "pop":
            self._pop_slot(stack)
            return
        if mnemonic == "pop2":
            self._pop_slot(stack)
            self._pop_slot(stack)
            return
        if mnemonic == "dup":
            stack.append(stack[-1])
            return
        if mnemonic == "dup_x1":
            stack.insert(len(stack) - 2, stack[-1])
            return
        if mnemonic == "dup_x2":
            stack.insert(len(stack) - 3, stack[-1])
            return
        if mnemonic == "dup2":
            stack.extend(stack[-2:])
            return
        if mnemonic == "dup2_x1":
            tail = stack[-2:]
            stack[len(stack) - 3:len(stack) - 3] = tail
            return
        if mnemonic == "dup2_x2":
            tail = stack[-2:]
            stack[len(stack) - 4:len(stack) - 4] = tail
            return
        if mnemonic == "swap":
            stack[-1], stack[-2] = stack[-2], stack[-1]
            return
        entry = _MEMBER_TO_FAMILY.get(mnemonic)
        if entry is not None and entry[0] in ARITH_FAMILIES:
            if mnemonic.endswith("neg"):
                value = pop()
                _push_type(stack, value_category(value))
                return
            pop()
            left = pop()
            _push_type(stack, value_category(left))
            return
        if entry is not None and entry[0] in SHIFT_FAMILIES:
            pop()  # shift amount
            value = pop()
            _push_type(stack, value_category(value))
            return
        if mnemonic[0] in "ilfd" and "2" in mnemonic and \
                len(mnemonic) == 3:
            pop()
            target = mnemonic[2]
            _push_type(stack, {"i": "I", "l": "J", "f": "F", "d": "D",
                               "b": "B", "c": "C", "s": "S"}[target])
            return
        if mnemonic in ("lcmp", "fcmpl", "fcmpg", "dcmpl", "dcmpg"):
            pop()
            pop()
            stack.append("I")
            return
        if mnemonic in ("ifeq", "ifne", "iflt", "ifge", "ifgt", "ifle",
                        "ifnull", "ifnonnull"):
            pop()
            return
        if mnemonic.startswith(("if_icmp", "if_acmp")):
            pop()
            pop()
            return
        if mnemonic == "getstatic":
            _push_type(stack, field_descriptor)
            return
        if mnemonic == "getfield":
            pop()
            _push_type(stack, field_descriptor)
            return
        if mnemonic == "putstatic":
            pop()
            return
        if mnemonic == "putfield":
            pop()
            pop()
            return
        if mnemonic in ("invokevirtual", "invokespecial", "invokestatic",
                        "invokeinterface"):
            args, ret = parse_method_descriptor(method_descriptor)
            for _ in args:
                pop()
            if not is_static_call:
                pop()
            _push_type(stack, ret)
            return
        if mnemonic == "new":
            _push_type(stack, class_descriptor)
            return
        if mnemonic == "newarray":
            pop()
            stack.append("[" + ATYPE_DESCRIPTORS[atype])
            return
        if mnemonic == "anewarray":
            pop()
            stack.append("[" + class_descriptor)
            return
        if mnemonic == "multianewarray":
            for _ in range(dims):
                pop()
            _push_type(stack, class_descriptor)
            return
        if mnemonic == "arraylength":
            pop()
            stack.append("I")
            return
        if mnemonic in ("checkcast",):
            pop()
            _push_type(stack, class_descriptor)
            return
        if mnemonic == "instanceof":
            pop()
            stack.append("I")
            return
        if mnemonic in ("monitorenter", "monitorexit"):
            pop()
            return
        raise _Unknown(mnemonic)

    def _pop_value(self) -> str:
        stack = self.stack
        if not stack:
            raise _Unknown("underflow")
        top = stack.pop()
        if top == SECOND:
            if not stack:
                raise _Unknown("underflow")
            return stack.pop()
        return top

    @staticmethod
    def _pop_slot(stack: List[str]) -> str:
        if not stack:
            raise _Unknown("underflow")
        return stack.pop()


class _Unknown(Exception):
    """Internal: the effect cannot be modeled; state becomes unknown."""
