"""Mode-independent operand layout: the wire shape of every operand.

One table, consumed by the codec driver in all three modes (count /
encode / decode), says for each JVM operand kind which
:class:`~repro.ir.model.IRInstruction` attribute carries it and which
*channel* it travels on:

``reg``
    an unsigned varint of a local-variable index,
``int``
    a signed (zigzag) varint immediate,
``uint``
    an unsigned varint immediate,
``branch``
    a signed varint *delta* against the instruction's own offset,
``derived``
    nothing on the wire — regenerated from the method descriptor
    during reconstruction,
``const`` / ``field`` / ``method`` / ``class``
    structured operands routed through the shared-object codecs.

The channel-to-stream routing (which named stream each channel writes)
is a wire-format concern and lives with the codec specs in
:mod:`repro.pack.codec_core`; this module is deliberately free of
``pack`` imports so the stack-state walk and the operand shapes stay
usable by analysis tools that never touch the wire.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..classfile.opcodes import OperandKind as K

#: operand kind -> (IRInstruction attribute, channel).
OPERAND_CHANNELS: Dict[K, Tuple[Optional[str], str]] = {
    K.LOCAL: ("local", "reg"),
    K.SBYTE: ("immediate", "int"),
    K.SSHORT: ("immediate", "int"),
    K.IINC_DELTA: ("immediate", "int"),
    K.BRANCH2: ("target", "branch"),
    K.BRANCH4: ("target", "branch"),
    K.ATYPE: ("atype", "uint"),
    K.DIMS: ("dims", "uint"),
    K.COUNT: (None, "derived"),
    K.ZERO: (None, "derived"),
    K.CP_LDC: ("const", "const"),
    K.CP_LDC_W: ("const", "const"),
    K.CP_LDC2_W: ("const", "const"),
    K.CP_FIELD: ("field_ref", "field"),
    K.CP_METHOD: ("method_ref", "method"),
    K.CP_IMETHOD: ("method_ref", "method"),
    K.CP_CLASS: ("class_ref", "class"),
}


def operand_channel(kind: K) -> Tuple[Optional[str], str]:
    """The ``(attribute, channel)`` pair for one operand kind."""
    return OPERAND_CHANNELS[kind]
