"""Feeding IR instructions through the stack tracker.

Shared by the compressor, the decompressor, and the component-analysis
harness, which is what guarantees all three compute identical
approximate stack states.
"""

from __future__ import annotations

from ..classfile.opcodes import OPCODES
from ..ir.model import IRInstruction
from ..observe.recorder import current as _observe_current
from .stack_state import StackTracker

#: mnemonic -> opcode value.
OPCODES_BY_NAME = {spec.mnemonic: opcode
                   for opcode, spec in OPCODES.items()}


def apply_instruction_state(tracker: StackTracker,
                            instruction: IRInstruction,
                            offset: int) -> None:
    """Update ``tracker`` across one (original, expanded) instruction."""
    metrics = _observe_current().metrics
    if metrics is not None:
        metrics.count("stack_state.applied")
        if not tracker.known:
            metrics.count("stack_state.unknown")
    spec = OPCODES[instruction.opcode]
    mnemonic = spec.mnemonic
    kwargs = {}
    if instruction.const is not None:
        kwargs["const_kind"] = instruction.const.kind
    if instruction.field_ref is not None:
        kwargs["field_descriptor"] = instruction.field_ref.type.descriptor
    if instruction.method_ref is not None:
        kwargs["method_descriptor"] = instruction.method_ref.descriptor
        kwargs["is_static_call"] = (mnemonic == "invokestatic")
    if mnemonic in ("new", "checkcast", "instanceof", "anewarray",
                    "multianewarray"):
        if instruction.type_ref is not None:
            kwargs["class_descriptor"] = instruction.type_ref.descriptor
        else:
            kwargs["class_descriptor"] = \
                f"L{instruction.class_ref.internal_name};"
        if mnemonic == "multianewarray":
            kwargs["dims"] = instruction.dims
    if instruction.atype is not None:
        kwargs["atype"] = instruction.atype
    if instruction.target is not None:
        kwargs["branch_target"] = instruction.target
    if spec.is_switch:
        kwargs["switch"] = True
    if instruction.local is not None:
        kwargs["local"] = instruction.local
    tracker.apply(mnemonic, offset, **kwargs)
