"""Bytecode compression machinery (Section 7)."""

from .analysis import ComponentSizes, bytecode_components
from .custom_opcodes import PairRule, combine_pairs, expand_rules
from .stack_state import StackTracker

__all__ = [
    "ComponentSizes",
    "PairRule",
    "StackTracker",
    "bytecode_components",
    "combine_pairs",
    "expand_rules",
]
