"""Bytecode compression machinery (Section 7).

Everything here is *mode-independent*: the stack-state walk
(:func:`~repro.bytecode_codec.apply.apply_instruction_state`), the
operand layout table (:mod:`~repro.bytecode_codec.operands`), and the
pair-combination rules serve the encoder, the decoder, and the
analysis harness from a single definition each.
"""

from .analysis import ComponentSizes, bytecode_components
from .apply import OPCODES_BY_NAME, apply_instruction_state
from .custom_opcodes import PairRule, combine_pairs, expand_rules
from .operands import OPERAND_CHANNELS, operand_channel
from .stack_state import StackTracker

__all__ = [
    "ComponentSizes",
    "OPCODES_BY_NAME",
    "OPERAND_CHANNELS",
    "PairRule",
    "StackTracker",
    "apply_instruction_state",
    "bytecode_components",
    "combine_pairs",
    "expand_rules",
    "operand_channel",
]
