"""Bytecode component compression measurement (Table 4).

For a collection of class files this module separates code into the
paper's component streams and reports, per component, the raw and
zlib-compressed sizes:

* the undivided bytecode **bytestream**,
* the **opcode** stream alone,
* the opcode stream with **stack-state collapsing** (Section 7.1),
* the opcode stream after **custom-opcode** pair combining (7.2),
* **register numbers**, **branch offsets** and **method references**.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..classfile.classfile import ClassFile
from ..coding.varint import encode_uvarints, write_svarint
from ..ir.build import build_class
from ..ir.model import Interner
from .apply import OPCODES_BY_NAME, apply_instruction_state
from ..pack.codec_core.layout import ir_instruction_size
from .custom_opcodes import combine_pairs, sequences_to_bytes
from .stack_state import StackTracker


@dataclass
class ComponentSizes:
    raw: int
    compressed: int

    @property
    def ratio(self) -> float:
        return self.compressed / self.raw if self.raw else 0.0


def _sizes(data: bytes) -> ComponentSizes:
    return ComponentSizes(len(data), len(zlib.compress(data, 9)))


def bytecode_components(classfiles: Iterable[ClassFile]
                        ) -> Dict[str, ComponentSizes]:
    """Measure every Table 4 component over ``classfiles``."""
    interner = Interner()
    bytestream = bytearray()
    opcode_sequences: List[List[int]] = []
    collapsed_sequences: List[List[int]] = []
    registers = bytearray()
    branches = bytearray()
    method_ref_indices: List[int] = []
    #: naive sequential ids for method references, mirroring what a
    #: reference stream carries before entropy coding.
    method_ids: Dict[object, int] = {}

    for classfile in classfiles:
        for member in classfile.methods:
            code = member.code()
            if code is None:
                continue
            bytestream.extend(code.code)
        definition = build_class(classfile, interner)
        for method in definition.methods:
            if method.code is None:
                continue
            opcodes: List[int] = []
            collapsed: List[int] = []
            tracker = StackTracker()
            offset = 0
            from ..classfile.opcodes import OPCODES
            from .apply import OPCODES_BY_NAME
            for instruction in method.code.instructions:
                tracker.at_instruction(offset)
                mnemonic = OPCODES[instruction.opcode].mnemonic
                opcodes.append(instruction.opcode)
                collapsed.append(OPCODES_BY_NAME[tracker.collapse(mnemonic)])
                if instruction.local is not None:
                    registers.append(min(instruction.local, 255))
                if instruction.target is not None:
                    write_svarint(branches, instruction.target - offset)
                if instruction.switch_pairs is not None:
                    write_svarint(branches,
                                  instruction.switch_default - offset)
                    for _, target in instruction.switch_pairs:
                        write_svarint(branches, target - offset)
                if instruction.method_ref is not None:
                    key = instruction.method_ref
                    if key not in method_ids:
                        method_ids[key] = len(method_ids)
                    method_ref_indices.append(method_ids[key])
                apply_instruction_state(tracker, instruction, offset)
                offset += ir_instruction_size(instruction, offset)
            opcode_sequences.append(opcodes)
            collapsed_sequences.append(collapsed)

    custom_sequences, rules = combine_pairs(collapsed_sequences)
    return {
        "bytestream": _sizes(bytes(bytestream)),
        "opcodes": _sizes(sequences_to_bytes(opcode_sequences)),
        "opcodes_stack_state": _sizes(
            sequences_to_bytes(collapsed_sequences)),
        "opcodes_custom": _sizes(sequences_to_bytes(custom_sequences)),
        "registers": _sizes(bytes(registers)),
        "branch_offsets": _sizes(bytes(branches)),
        "method_references": _sizes(
            encode_uvarints(method_ref_indices)),
    }
