"""Runtime value model for the bytecode interpreter.

Values on the operand stack / in locals:

* ``int``   — Java int/short/char/byte/boolean (32-bit semantics
  enforced at operation boundaries),
* ``JLong`` — Java long (wrapped so int and long never mix silently),
* ``float`` — Java float and double (doubles exactly; floats rounded
  through IEEE-754 single precision at operation boundaries),
* ``JFloat`` tags single-precision values,
* ``str``   — java.lang.String instances,
* ``JavaObject`` / ``JavaArray`` — reference types,
* ``None``  — the null reference.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List

INT_MIN = -(1 << 31)
INT_MASK = (1 << 32) - 1
LONG_MASK = (1 << 64) - 1


def to_int(value: int) -> int:
    """Wrap to 32-bit two's complement."""
    value &= INT_MASK
    return value - (1 << 32) if value >= 1 << 31 else value


def to_long(value: int) -> int:
    """Wrap to 64-bit two's complement."""
    value &= LONG_MASK
    return value - (1 << 64) if value >= 1 << 63 else value


def to_short(value: int) -> int:
    value &= 0xFFFF
    return value - (1 << 16) if value >= 1 << 15 else value


def to_byte(value: int) -> int:
    value &= 0xFF
    return value - (1 << 8) if value >= 1 << 7 else value


def to_char(value: int) -> int:
    return value & 0xFFFF


def to_f32(value: float) -> float:
    """Round through IEEE-754 single precision (overflow -> infinity)."""
    try:
        return struct.unpack(">f", struct.pack(">f", value))[0]
    except OverflowError:
        return float("inf") if value > 0 else float("-inf")


@dataclass(frozen=True)
class JLong:
    """A Java long; distinct from int so width bugs surface loudly."""

    value: int

    def __post_init__(self):
        object.__setattr__(self, "value", to_long(self.value))


@dataclass(frozen=True)
class JFloat:
    """A Java float (single precision); doubles are plain ``float``."""

    value: float

    def __post_init__(self):
        object.__setattr__(self, "value", to_f32(self.value))


@dataclass
class JavaObject:
    """An instance of a class (source-defined or runtime stub)."""

    class_name: str
    fields: Dict[str, object] = field(default_factory=dict)
    #: Backing storage for runtime stubs (e.g. StringBuffer chunks).
    native: object = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.class_name}@{id(self):x}>"


@dataclass
class JavaArray:
    """A Java array with element-type tracking."""

    element_descriptor: str
    elements: List[object]

    @classmethod
    def new(cls, element_descriptor: str, length: int) -> "JavaArray":
        if length < 0:
            raise ValueError("negative array size")
        default: object
        if element_descriptor in ("I", "B", "S", "C", "Z"):
            default = 0
        elif element_descriptor == "J":
            default = JLong(0)
        elif element_descriptor == "F":
            default = JFloat(0.0)
        elif element_descriptor == "D":
            default = 0.0
        else:
            default = None
        return cls(element_descriptor, [default] * length)

    @property
    def length(self) -> int:
        return len(self.elements)


def default_value(descriptor: str) -> object:
    """The JVM default value for a field of the given type."""
    if descriptor in ("I", "B", "S", "C", "Z"):
        return 0
    if descriptor == "J":
        return JLong(0)
    if descriptor == "F":
        return JFloat(0.0)
    if descriptor == "D":
        return 0.0
    return None


def java_string_of(value: object) -> str:
    """``String.valueOf`` semantics for println/append arguments."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return value
    if isinstance(value, JLong):
        return str(value.value)
    if isinstance(value, JFloat):
        return format_java_double(value.value)
    if isinstance(value, float):
        return format_java_double(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, JavaObject):
        return f"{value.class_name}@{id(value):x}"
    if isinstance(value, JavaArray):
        return f"[{value.element_descriptor}@{id(value):x}"
    raise TypeError(f"cannot stringify {value!r}")


def format_java_double(value: float) -> str:
    """Approximate Java's Double.toString (enough for test oracles)."""
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "Infinity"
    if value == float("-inf"):
        return "-Infinity"
    if value == int(value) and abs(value) < 1e16:
        return f"{value:.1f}"
    return repr(value)
