"""Native stubs for the java.* runtime classes.

Mirrors the compiler's runtime model
(:mod:`repro.minijava.runtime`): everything mini-Java programs can
link against has an executable counterpart here.
"""

from __future__ import annotations

import math
from typing import List

from .values import (
    JavaObject,
    JFloat,
    JLong,
    java_string_of,
    to_int,
)

_EXCEPTION_CLASSES = frozenset({
    "java/lang/Throwable", "java/lang/Exception",
    "java/lang/RuntimeException", "java/lang/IllegalArgumentException",
    "java/lang/IllegalStateException",
    "java/lang/IndexOutOfBoundsException",
    "java/lang/ArithmeticException", "java/lang/NullPointerException",
    "java/lang/UnsupportedOperationException", "java/io/IOException",
})


class NativeError(RuntimeError):
    """Raised when a runtime method has no stub."""


def native_new(machine, class_name: str) -> JavaObject:
    """`new` on a runtime (non-archive) class."""
    instance = JavaObject(class_name)
    if class_name == "java/lang/StringBuffer":
        instance.native = []
    elif class_name == "java/util/Vector":
        instance.native = []
    elif class_name == "java/util/Hashtable":
        instance.native = {}
    elif class_name in _EXCEPTION_CLASSES:
        instance.fields["message"] = None
    return instance


def native_static_get(machine, class_name: str, field: str,
                      descriptor: str):
    if class_name == "java/lang/System" and field in ("out", "err"):
        stream = JavaObject("java/io/PrintStream")
        stream.native = field
        return stream
    if class_name == "java/lang/Math":
        if field == "PI":
            return math.pi
        if field == "E":
            return math.e
    if class_name == "java/lang/Integer":
        if field == "MAX_VALUE":
            return 0x7FFFFFFF
        if field == "MIN_VALUE":
            return -0x80000000
    raise NativeError(f"no native static {class_name}.{field}")


def _as_double(value) -> float:
    if isinstance(value, JFloat):
        return value.value
    if isinstance(value, JLong):
        return float(value.value)
    return float(value)


def _string_method(machine, name, descriptor, receiver: str,
                   args: List[object]):
    if name == "length":
        return len(receiver)
    if name == "charAt":
        index = args[0]
        if not 0 <= index < len(receiver):
            machine.throw("java/lang/IndexOutOfBoundsException",
                          f"index {index}")
        return ord(receiver[index])
    if name == "indexOf":
        return receiver.find(args[0])
    if name == "substring":
        if len(args) == 1:
            return receiver[args[0]:]
        return receiver[args[0]:args[1]]
    if name == "equals":
        return 1 if isinstance(args[0], str) and args[0] == receiver \
            else 0
    if name == "compareTo":
        other = args[0]
        return (receiver > other) - (receiver < other)
    if name == "concat":
        return receiver + args[0]
    if name == "toLowerCase":
        return receiver.lower()
    if name == "toUpperCase":
        return receiver.upper()
    if name == "trim":
        return receiver.strip()
    if name == "hashCode":
        result = 0
        for char in receiver:
            result = to_int(31 * result + ord(char))
        return result
    if name == "toString":
        return receiver
    raise NativeError(f"String.{name}{descriptor}")


def _stringbuffer_method(machine, name, descriptor,
                         receiver: JavaObject, args):
    if name == "<init>":
        receiver.native = [args[0]] if args else []
        return None
    if name == "append":
        receiver.native.append(java_string_of(
            args[0] if not isinstance(args[0], int) or
            "(C)" not in descriptor else chr(args[0])))
        return receiver
    if name == "toString":
        return "".join(receiver.native)
    if name == "length":
        return sum(len(chunk) for chunk in receiver.native)
    raise NativeError(f"StringBuffer.{name}{descriptor}")


def _math_method(machine, name, descriptor, args):
    if name == "abs":
        value = args[0]
        if isinstance(value, JLong):
            return JLong(abs(value.value))
        if isinstance(value, JFloat):
            return JFloat(abs(value.value))
        if isinstance(value, float):
            return abs(value)
        return to_int(abs(value))
    if name in ("max", "min"):
        picker = max if name == "max" else min
        a, b = args
        if isinstance(a, (int,)) and isinstance(b, (int,)):
            return picker(a, b)
        return picker(_as_double(a), _as_double(b))
    if name == "random":
        return 0.5  # deterministic: tests need reproducible output
    if name == "round":
        return JLong(math.floor(_as_double(args[0]) + 0.5))
    if name == "pow":
        return math.pow(_as_double(args[0]), _as_double(args[1]))
    functions = {
        "sin": math.sin, "cos": math.cos, "tan": math.tan,
        "sqrt": lambda v: math.sqrt(v) if v >= 0 else float("nan"),
        "log": lambda v: math.log(v) if v > 0 else float("-inf")
        if v == 0 else float("nan"),
        "exp": math.exp, "floor": math.floor, "ceil": math.ceil,
    }
    if name in functions:
        result = functions[name](_as_double(args[0]))
        return float(result)
    raise NativeError(f"Math.{name}{descriptor}")


def _printstream_method(machine, name, descriptor,
                        receiver: JavaObject, args):
    if name in ("print", "println"):
        text = java_string_of(args[0]) if args else ""
        if args and isinstance(args[0], int) and "(C)" in descriptor:
            text = chr(args[0])
        if args and isinstance(args[0], int) and "(Z)" in descriptor:
            text = "true" if args[0] else "false"
        if name == "println":
            text += "\n"
        machine._print(text)
        return None
    if name == "flush":
        return None
    raise NativeError(f"PrintStream.{name}{descriptor}")


def _vector_method(machine, name, descriptor, receiver: JavaObject,
                   args):
    if name == "<init>":
        receiver.native = []
        return None
    if name == "addElement":
        receiver.native.append(args[0])
        return None
    if name == "elementAt":
        index = args[0]
        if not 0 <= index < len(receiver.native):
            machine.throw("java/lang/IndexOutOfBoundsException",
                          f"index {index}")
        return receiver.native[index]
    if name == "size":
        return len(receiver.native)
    if name == "removeElementAt":
        del receiver.native[args[0]]
        return None
    if name == "contains":
        return 1 if args[0] in receiver.native else 0
    raise NativeError(f"Vector.{name}{descriptor}")


def _hashtable_method(machine, name, descriptor, receiver: JavaObject,
                      args):
    if name == "<init>":
        receiver.native = {}
        return None
    if name == "put":
        key = _hash_key(args[0])
        previous = receiver.native.get(key)
        receiver.native[key] = args[1]
        return previous
    if name == "get":
        return receiver.native.get(_hash_key(args[0]))
    if name == "containsKey":
        return 1 if _hash_key(args[0]) in receiver.native else 0
    if name == "size":
        return len(receiver.native)
    raise NativeError(f"Hashtable.{name}{descriptor}")


def _hash_key(value):
    return value if isinstance(value, (str, int)) else id(value)


def _throwable_method(machine, name, descriptor, receiver: JavaObject,
                      args):
    if name == "<init>":
        receiver.fields["message"] = args[0] if args else None
        return None
    if name == "getMessage":
        return receiver.fields.get("message")
    if name == "printStackTrace":
        machine._print(f"{receiver.class_name.replace('/', '.')}: "
                       f"{receiver.fields.get('message')}\n")
        return None
    if name == "toString":
        return f"{receiver.class_name.replace('/', '.')}: " \
               f"{receiver.fields.get('message')}"
    raise NativeError(f"Throwable.{name}{descriptor}")


def dispatch_native(machine, class_name: str, target: str, name: str,
                    descriptor: str, receiver, args: List[object]):
    """Route a call with no bytecode implementation to its stub."""
    # String receivers dispatch on their runtime type.
    if isinstance(receiver, str):
        return _string_method(machine, name, descriptor, receiver, args)
    if isinstance(receiver, JavaObject):
        runtime = receiver.class_name
        if runtime == "java/lang/StringBuffer":
            return _stringbuffer_method(machine, name, descriptor,
                                        receiver, args)
        if runtime == "java/io/PrintStream":
            return _printstream_method(machine, name, descriptor,
                                       receiver, args)
        if runtime == "java/util/Vector":
            return _vector_method(machine, name, descriptor, receiver,
                                  args)
        if runtime == "java/util/Hashtable":
            return _hashtable_method(machine, name, descriptor,
                                     receiver, args)
        if runtime in ("java/lang/Integer", "java/lang/Long",
                       "java/lang/Double"):
            if name == "<init>":
                receiver.fields["value"] = args[0]
                return None
            if name in ("intValue", "longValue", "doubleValue"):
                return receiver.fields.get("value")
            if name == "toString":
                return java_string_of(receiver.fields.get("value"))
        if runtime in _EXCEPTION_CLASSES or machine.is_subclass(
                runtime, "java/lang/Throwable"):
            try:
                return _throwable_method(machine, name, descriptor,
                                         receiver, args)
            except NativeError:
                pass
        # java/lang/Object defaults for archive classes.
        if name == "<init>" and descriptor == "()V":
            return None
        if name == "hashCode" and not args:
            return to_int(id(receiver))
        if name == "equals":
            return 1 if receiver is args[0] else 0
        if name == "toString":
            return java_string_of(receiver)
        raise NativeError(
            f"no native {runtime}.{name}{descriptor}")
    # Static runtime calls.
    if class_name == "java/lang/Math":
        return _math_method(machine, name, descriptor, args)
    if class_name == "java/lang/String" and name == "valueOf":
        return java_string_of(args[0])
    if class_name == "java/lang/System":
        if name == "currentTimeMillis":
            return JLong(0)  # deterministic
        if name == "exit":
            raise NativeError("System.exit called")
        if name == "arraycopy":
            source, source_pos, dest, dest_pos, length = args
            for i in range(length):
                dest.elements[dest_pos + i] = \
                    source.elements[source_pos + i]
            return None
    if class_name == "java/lang/Integer":
        if name == "parseInt":
            try:
                return to_int(int(args[0].strip()))
            except ValueError:
                machine.throw("java/lang/RuntimeException",
                              f"NumberFormatException: {args[0]!r}")
        if name == "toString":
            return str(args[0])
    if class_name == "java/lang/Long" and name == "parseLong":
        return JLong(int(args[0].strip()))
    if class_name == "java/lang/Double" and name == "parseDouble":
        return float(args[0].strip())
    if receiver is None and name == "<init>":
        return None
    raise NativeError(f"no native {class_name}.{name}{descriptor}")
