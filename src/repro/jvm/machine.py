"""A JVM bytecode interpreter.

Executes the class files this repository produces (from the mini-Java
compiler or from packed-archive decompression) with faithful
semantics for the instruction subset those class files use: 32/64-bit
integer wrapping, IEEE-754 float/double behaviour, dynamic dispatch,
exceptions, arrays, string building, and static initialization.

The interpreter is the repository's stand-in for "run it on a JVM":
tests execute the same program before and after a pack/unpack cycle
and require identical output.

Runtime (java.*) classes are modeled by native stubs matching the
compiler's runtime model (:mod:`repro.minijava.runtime`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..classfile.bytecode import Instruction, disassemble
from ..classfile.classfile import ClassFile
from ..classfile.constants import AccessFlags
from ..classfile.descriptors import parse_method_descriptor, slot_width
from ..classfile import constant_pool as cp
from .values import (
    JavaArray,
    JavaObject,
    JFloat,
    JLong,
    default_value,
    to_byte,
    to_char,
    to_int,
    to_short,
)


class MachineError(RuntimeError):
    """Raised for conditions the interpreter cannot model."""


class JavaThrow(Exception):
    """A Java exception in flight; carries the throwable object."""

    def __init__(self, throwable: JavaObject):
        super().__init__(throwable.class_name)
        self.throwable = throwable


#: Built-in exception hierarchy (mirrors minijava.runtime).
_EXCEPTION_SUPERS = {
    "java/lang/Exception": "java/lang/Throwable",
    "java/lang/RuntimeException": "java/lang/Exception",
    "java/io/IOException": "java/lang/Exception",
    "java/lang/IllegalArgumentException": "java/lang/RuntimeException",
    "java/lang/IllegalStateException": "java/lang/RuntimeException",
    "java/lang/IndexOutOfBoundsException": "java/lang/RuntimeException",
    "java/lang/ArithmeticException": "java/lang/RuntimeException",
    "java/lang/NullPointerException": "java/lang/RuntimeException",
    "java/lang/UnsupportedOperationException":
        "java/lang/RuntimeException",
}


class Machine:
    """Interpreter state: loaded classes, statics, console output."""

    def __init__(self, classfiles: List[ClassFile],
                 max_steps: int = 2_000_000, max_call_depth: int = 128):
        self.classes: Dict[str, ClassFile] = {
            classfile.name: classfile for classfile in classfiles}
        self.statics: Dict[Tuple[str, str], object] = {}
        self.initialized: set = set()
        self.output: List[str] = []
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.depth = 0
        self.steps = 0
        self._code_cache: Dict[int, Tuple[List[Instruction],
                                          Dict[int, int]]] = {}

    # -- console ---------------------------------------------------------

    def stdout(self) -> str:
        return "".join(self.output)

    def _print(self, text: str) -> None:
        self.output.append(text)

    # -- class machinery ----------------------------------------------------

    def super_name(self, class_name: str) -> Optional[str]:
        classfile = self.classes.get(class_name)
        if classfile is not None:
            return classfile.super_name
        if class_name in _EXCEPTION_SUPERS:
            return _EXCEPTION_SUPERS[class_name]
        if class_name == "java/lang/Object":
            return None
        return "java/lang/Object"

    def is_subclass(self, sub: str, sup: str) -> bool:
        current: Optional[str] = sub
        while current is not None:
            if current == sup:
                return True
            classfile = self.classes.get(current)
            if classfile is not None and \
                    sup in classfile.interface_names():
                return True
            current = self.super_name(current)
        return False

    def ensure_initialized(self, class_name: str) -> None:
        """Run ``<clinit>`` on first active use (superclass first)."""
        if class_name in self.initialized:
            return
        self.initialized.add(class_name)
        classfile = self.classes.get(class_name)
        if classfile is None:
            return
        if classfile.super_name:
            self.ensure_initialized(classfile.super_name)
        for member in classfile.fields:
            if not member.access_flags & AccessFlags.STATIC:
                continue
            name = classfile.member_name(member)
            descriptor = classfile.member_descriptor(member)
            value: object = default_value(descriptor)
            for attribute in member.attributes:
                if attribute.name == "ConstantValue":
                    value = self._constant(classfile.pool,
                                           attribute.value_index,
                                           descriptor)
            self.statics[(class_name, name)] = value
        clinit = self._find_declared(classfile, "<clinit>", "()V")
        if clinit is not None:
            self.invoke(class_name, "<clinit>", "()V", None, [])

    def _constant(self, pool: cp.ConstantPool, index: int,
                  descriptor: str) -> object:
        entry = pool[index]
        if isinstance(entry, cp.IntegerConst):
            return entry.value
        if isinstance(entry, cp.LongConst):
            return JLong(entry.value)
        if isinstance(entry, cp.FloatConst):
            return JFloat(_float_from_bits(entry.bits))
        if isinstance(entry, cp.DoubleConst):
            return _double_from_bits(entry.bits)
        if isinstance(entry, cp.StringConst):
            return pool.utf8_value(entry.utf8_index)
        raise MachineError(f"bad constant for {descriptor}")

    @staticmethod
    def _find_declared(classfile: ClassFile, name: str,
                       descriptor: str):
        for member in classfile.methods:
            if classfile.member_name(member) == name and \
                    classfile.member_descriptor(member) == descriptor:
                return member
        return None

    def resolve_method(self, class_name: str, name: str,
                       descriptor: str):
        """Walk the hierarchy for a concrete method; returns
        ``(declaring class file, member)`` or None for native."""
        current: Optional[str] = class_name
        while current is not None:
            classfile = self.classes.get(current)
            if classfile is not None:
                member = self._find_declared(classfile, name, descriptor)
                if member is not None and member.code() is not None:
                    return classfile, member
            current = self.super_name(current)
        return None

    # -- object construction ---------------------------------------------

    def new_instance(self, class_name: str) -> JavaObject:
        self.ensure_initialized(class_name)
        instance = JavaObject(class_name)
        current: Optional[str] = class_name
        while current is not None:
            classfile = self.classes.get(current)
            if classfile is None:
                break
            for member in classfile.fields:
                if member.access_flags & AccessFlags.STATIC:
                    continue
                name = classfile.member_name(member)
                descriptor = classfile.member_descriptor(member)
                instance.fields.setdefault(name,
                                           default_value(descriptor))
            current = classfile.super_name
        return instance

    def throw(self, class_name: str, message: Optional[str] = None):
        throwable = JavaObject(class_name)
        throwable.fields["message"] = message
        raise JavaThrow(throwable)

    # -- invocation -----------------------------------------------------------

    def invoke(self, class_name: str, name: str, descriptor: str,
               receiver: Optional[object], args: List[object]) -> object:
        """Invoke a method; dispatches to bytecode or a native stub."""
        target = class_name
        if receiver is not None and isinstance(receiver, JavaObject) and \
                name != "<init>":
            target = receiver.class_name
        resolved = self.resolve_method(target, name, descriptor)
        if resolved is None and name == "<init>":
            resolved = self.resolve_method(class_name, name, descriptor)
        if resolved is not None:
            classfile, member = resolved
            self.ensure_initialized(classfile.name)
            return self._execute(classfile, member, receiver, args)
        return self._native(class_name, target, name, descriptor,
                            receiver, args)

    def invoke_special(self, class_name: str, name: str,
                       descriptor: str, receiver: Optional[object],
                       args: List[object]) -> object:
        """invokespecial: no dynamic dispatch."""
        resolved = self.resolve_method(class_name, name, descriptor)
        if resolved is not None:
            classfile, member = resolved
            self.ensure_initialized(classfile.name)
            return self._execute(classfile, member, receiver, args)
        return self._native(class_name, class_name, name, descriptor,
                            receiver, args)

    def run_main(self, class_name: str,
                 argv: Optional[List[str]] = None) -> str:
        """Run ``main(String[])``; returns captured stdout."""
        array = JavaArray("Ljava/lang/String;", list(argv or []))
        self.ensure_initialized(class_name)
        self.invoke(class_name, "main", "([Ljava/lang/String;)V",
                    None, [array])
        return self.stdout()

    def call(self, class_name: str, name: str, descriptor: str,
             *args: object) -> object:
        """Convenience: construct-free static call."""
        self.ensure_initialized(class_name)
        return self.invoke(class_name, name, descriptor, None,
                           list(args))

    def construct(self, class_name: str, descriptor: str,
                  *args: object) -> JavaObject:
        """Convenience: ``new class_name(...)``."""
        instance = self.new_instance(class_name)
        self.invoke_special(class_name, "<init>", descriptor, instance,
                            list(args))
        return instance

    # -- frame execution --------------------------------------------------

    def _execute(self, classfile: ClassFile, member,
                 receiver: Optional[object],
                 args: List[object]) -> object:
        code = member.code()
        if code is None:
            raise MachineError(
                f"abstract/native method "
                f"{classfile.name}.{classfile.member_name(member)}")
        key = id(code)
        cached = self._code_cache.get(key)
        if cached is None:
            instructions = disassemble(code.code)
            by_offset = {ins.offset: i
                         for i, ins in enumerate(instructions)}
            cached = (instructions, by_offset)
            self._code_cache[key] = cached
        frame = _Frame(self, classfile, member, code, cached[0],
                       cached[1])
        self.depth += 1
        if self.depth > self.max_call_depth:
            self.depth -= 1
            raise MachineError("call depth limit exceeded "
                               "(likely unbounded recursion)")
        try:
            return frame.run(receiver, args)
        finally:
            self.depth -= 1

    # -- native runtime --------------------------------------------------

    def _native(self, class_name: str, target: str, name: str,
                descriptor: str, receiver, args) -> object:
        from .natives import dispatch_native

        return dispatch_native(self, class_name, target, name,
                               descriptor, receiver, args)

    def static_get(self, class_name: str, field: str,
                   descriptor: str) -> object:
        self.ensure_initialized(class_name)
        slot = (class_name, field)
        if slot in self.statics:
            return self.statics[slot]
        # Walk superclasses for inherited statics.
        current = self.super_name(class_name)
        while current is not None:
            if (current, field) in self.statics:
                return self.statics[(current, field)]
            current = self.super_name(current)
        from .natives import native_static_get

        return native_static_get(self, class_name, field, descriptor)

    def static_put(self, class_name: str, field: str,
                   value: object) -> None:
        self.ensure_initialized(class_name)
        slot = (class_name, field)
        if slot not in self.statics:
            current = self.super_name(class_name)
            while current is not None:
                if (current, field) in self.statics:
                    slot = (current, field)
                    break
                current = self.super_name(current)
        self.statics[slot] = value


def _float_from_bits(bits: int) -> float:
    import struct

    return struct.unpack(">f", struct.pack(">I", bits))[0]


def _double_from_bits(bits: int) -> float:
    import struct

    return struct.unpack(">d", struct.pack(">Q", bits))[0]


class _Frame:
    """One activation record; ``run`` is the dispatch loop."""

    def __init__(self, machine: Machine, classfile: ClassFile, member,
                 code, instructions: List[Instruction],
                 by_offset: Dict[int, int]):
        self.machine = machine
        self.classfile = classfile
        self.member = member
        self.code = code
        self.instructions = instructions
        self.by_offset = by_offset
        self.pool = classfile.pool

    def run(self, receiver: Optional[object],
            args: List[object]) -> object:
        machine = self.machine
        locals_: List[object] = [None] * max(self.code.max_locals, 1)
        slot = 0
        if not self.member.access_flags & AccessFlags.STATIC:
            locals_[slot] = receiver
            slot += 1
        arg_types, _ = parse_method_descriptor(
            self.classfile.member_descriptor(self.member))
        for value, descriptor in zip(args, arg_types):
            locals_[slot] = value
            slot += slot_width(descriptor)
        stack: List[object] = []
        index = 0
        while True:
            machine.steps += 1
            if machine.steps > machine.max_steps:
                raise MachineError("step budget exhausted "
                                   "(likely an infinite loop)")
            instruction = self.instructions[index]
            try:
                outcome = self._step(instruction, stack, locals_)
            except JavaThrow as thrown:
                handler = self._find_handler(instruction.offset,
                                             thrown.throwable)
                if handler is None:
                    raise
                stack.clear()
                stack.append(thrown.throwable)
                index = self.by_offset[handler]
                continue
            if outcome is None:
                index += 1
            elif outcome[0] == "jump":
                index = self.by_offset[outcome[1]]
            else:  # ("return", value)
                return outcome[1]

    def _find_handler(self, offset: int,
                      throwable: JavaObject) -> Optional[int]:
        for entry in self.code.exception_table:
            if not entry.start_pc <= offset < entry.end_pc:
                continue
            if entry.catch_type == 0:
                return entry.handler_pc
            catch_name = self.pool.class_name(entry.catch_type)
            if self.machine.is_subclass(throwable.class_name,
                                        catch_name):
                return entry.handler_pc
        return None

    # -- single instruction -------------------------------------------------

    def _step(self, ins: Instruction, stack: List[object],
              locals_: List[object]):
        mnemonic = ins.mnemonic
        handler = _DISPATCH.get(mnemonic)
        if handler is None:
            raise MachineError(f"unimplemented opcode {mnemonic}")
        return handler(self, ins, stack, locals_)


# ---------------------------------------------------------------------
# Instruction semantics.  Handlers return None (fall through),
# ("jump", offset) or ("return", value).
# ---------------------------------------------------------------------

_DISPATCH: Dict[str, Callable] = {}


def _op(*names):
    def register(function):
        for name in names:
            _DISPATCH[name] = function
        return function
    return register


@_op("nop")
def _nop(frame, ins, stack, locals_):
    return None


@_op("aconst_null")
def _aconst_null(frame, ins, stack, locals_):
    stack.append(None)


for _value in range(-1, 6):
    def _make_iconst(value):
        def handler(frame, ins, stack, locals_):
            stack.append(value)
        return handler
    name = "iconst_m1" if _value == -1 else f"iconst_{_value}"
    _DISPATCH[name] = _make_iconst(_value)

_DISPATCH["lconst_0"] = lambda f, i, s, l: s.append(JLong(0))
_DISPATCH["lconst_1"] = lambda f, i, s, l: s.append(JLong(1))
_DISPATCH["fconst_0"] = lambda f, i, s, l: s.append(JFloat(0.0))
_DISPATCH["fconst_1"] = lambda f, i, s, l: s.append(JFloat(1.0))
_DISPATCH["fconst_2"] = lambda f, i, s, l: s.append(JFloat(2.0))
_DISPATCH["dconst_0"] = lambda f, i, s, l: s.append(0.0)
_DISPATCH["dconst_1"] = lambda f, i, s, l: s.append(1.0)


@_op("bipush", "sipush")
def _push_immediate(frame, ins, stack, locals_):
    stack.append(ins.immediate)


@_op("ldc", "ldc_w", "ldc2_w")
def _ldc(frame, ins, stack, locals_):
    entry = frame.pool[ins.cp_index]
    if isinstance(entry, cp.IntegerConst):
        stack.append(entry.value)
    elif isinstance(entry, cp.FloatConst):
        stack.append(JFloat(_float_from_bits(entry.bits)))
    elif isinstance(entry, cp.LongConst):
        stack.append(JLong(entry.value))
    elif isinstance(entry, cp.DoubleConst):
        stack.append(_double_from_bits(entry.bits))
    elif isinstance(entry, cp.StringConst):
        stack.append(frame.pool.utf8_value(entry.utf8_index))
    else:
        raise MachineError(f"bad ldc operand {entry!r}")


@_op("iload", "lload", "fload", "dload", "aload",
     *[f"{p}load_{n}" for p in "ilfda" for n in range(4)])
def _load(frame, ins, stack, locals_):
    slot = ins.local if ins.local is not None \
        else int(ins.mnemonic[-1])
    stack.append(locals_[slot])


@_op("istore", "lstore", "fstore", "dstore", "astore",
     *[f"{p}store_{n}" for p in "ilfda" for n in range(4)])
def _store(frame, ins, stack, locals_):
    slot = ins.local if ins.local is not None \
        else int(ins.mnemonic[-1])
    locals_[slot] = stack.pop()


def _check_array(frame, array, index):
    if array is None:
        frame.machine.throw("java/lang/NullPointerException",
                            "array is null")
    if not 0 <= index < array.length:
        frame.machine.throw("java/lang/IndexOutOfBoundsException",
                            f"index {index}, length {array.length}")


@_op("iaload", "laload", "faload", "daload", "aaload", "baload",
     "caload", "saload")
def _array_load(frame, ins, stack, locals_):
    index = stack.pop()
    array = stack.pop()
    _check_array(frame, array, index)
    stack.append(array.elements[index])


@_op("iastore", "lastore", "fastore", "dastore", "aastore", "bastore",
     "castore", "sastore")
def _array_store(frame, ins, stack, locals_):
    value = stack.pop()
    index = stack.pop()
    array = stack.pop()
    _check_array(frame, array, index)
    kind = ins.mnemonic[0]
    if kind == "b":
        value = to_byte(value)
    elif kind == "c":
        value = to_char(value)
    elif kind == "s":
        value = to_short(value)
    array.elements[index] = value


@_op("pop")
def _pop(frame, ins, stack, locals_):
    stack.pop()


@_op("pop2")
def _pop2(frame, ins, stack, locals_):
    # Wide values occupy ONE Python stack slot; pop2 on a wide value
    # pops one entry, on two narrow values pops two.
    top = stack.pop()
    if not isinstance(top, (JLong, float)) or isinstance(top, bool):
        stack.pop()


@_op("dup")
def _dup(frame, ins, stack, locals_):
    stack.append(stack[-1])


@_op("dup_x1")
def _dup_x1(frame, ins, stack, locals_):
    stack.insert(-2, stack[-1])


@_op("dup_x2")
def _dup_x2(frame, ins, stack, locals_):
    below = stack[-2]
    wide = isinstance(below, (JLong, float)) and \
        not isinstance(below, bool)
    stack.insert(-2 if wide else -3, stack[-1])


@_op("dup2")
def _dup2(frame, ins, stack, locals_):
    top = stack[-1]
    if isinstance(top, (JLong, float)) and not isinstance(top, bool):
        stack.append(top)
    else:
        stack.extend(stack[-2:])


@_op("dup2_x1")
def _dup2_x1(frame, ins, stack, locals_):
    top = stack[-1]
    if isinstance(top, (JLong, float)) and not isinstance(top, bool):
        stack.insert(-2, top)
    else:
        pair = stack[-2:]
        stack[-3:-3] = pair


@_op("swap")
def _swap(frame, ins, stack, locals_):
    stack[-1], stack[-2] = stack[-2], stack[-1]


def _binary_int(op):
    def handler(frame, ins, stack, locals_):
        right = stack.pop()
        left = stack.pop()
        stack.append(to_int(op(frame, left, right)))
    return handler


def _binary_long(op):
    def handler(frame, ins, stack, locals_):
        right = stack.pop().value
        left = stack.pop().value
        stack.append(JLong(op(frame, left, right)))
    return handler


def _java_idiv(frame, a, b):
    if b == 0:
        frame.machine.throw("java/lang/ArithmeticException",
                            "/ by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _java_irem(frame, a, b):
    if b == 0:
        frame.machine.throw("java/lang/ArithmeticException",
                            "/ by zero")
    return a - _java_idiv(frame, a, b) * b


_DISPATCH["iadd"] = _binary_int(lambda f, a, b: a + b)
_DISPATCH["isub"] = _binary_int(lambda f, a, b: a - b)
_DISPATCH["imul"] = _binary_int(lambda f, a, b: a * b)
_DISPATCH["idiv"] = _binary_int(_java_idiv)
_DISPATCH["irem"] = _binary_int(_java_irem)
_DISPATCH["iand"] = _binary_int(lambda f, a, b: a & b)
_DISPATCH["ior"] = _binary_int(lambda f, a, b: a | b)
_DISPATCH["ixor"] = _binary_int(lambda f, a, b: a ^ b)
_DISPATCH["ishl"] = _binary_int(lambda f, a, b: a << (b & 31))
_DISPATCH["ishr"] = _binary_int(lambda f, a, b: a >> (b & 31))
_DISPATCH["iushr"] = _binary_int(
    lambda f, a, b: (a & 0xFFFFFFFF) >> (b & 31))
_DISPATCH["ladd"] = _binary_long(lambda f, a, b: a + b)
_DISPATCH["lsub"] = _binary_long(lambda f, a, b: a - b)
_DISPATCH["lmul"] = _binary_long(lambda f, a, b: a * b)
_DISPATCH["ldiv"] = _binary_long(_java_idiv)
_DISPATCH["lrem"] = _binary_long(_java_irem)
_DISPATCH["land"] = _binary_long(lambda f, a, b: a & b)
_DISPATCH["lor"] = _binary_long(lambda f, a, b: a | b)
_DISPATCH["lxor"] = _binary_long(lambda f, a, b: a ^ b)


@_op("lshl", "lshr", "lushr")
def _long_shift(frame, ins, stack, locals_):
    amount = stack.pop() & 63
    value = stack.pop().value
    if ins.mnemonic == "lshl":
        stack.append(JLong(value << amount))
    elif ins.mnemonic == "lshr":
        stack.append(JLong(value >> amount))
    else:
        stack.append(JLong((value & ((1 << 64) - 1)) >> amount))


def _binary_float(op, single):
    def handler(frame, ins, stack, locals_):
        right = stack.pop()
        left = stack.pop()
        a = left.value if isinstance(left, JFloat) else left
        b = right.value if isinstance(right, JFloat) else right
        try:
            result = op(a, b)
        except ZeroDivisionError:
            if op is _fdiv_op:
                result = float("nan") if a == 0 else \
                    float("inf") if a > 0 else float("-inf")
            else:  # frem by zero
                result = float("nan")
        stack.append(JFloat(result) if single else result)
    return handler


def _fdiv_op(a, b):
    return a / b


def _frem_op(a, b):
    import math

    return math.fmod(a, b)


for _pfx, _single in (("f", True), ("d", False)):
    _DISPATCH[f"{_pfx}add"] = _binary_float(lambda a, b: a + b, _single)
    _DISPATCH[f"{_pfx}sub"] = _binary_float(lambda a, b: a - b, _single)
    _DISPATCH[f"{_pfx}mul"] = _binary_float(lambda a, b: a * b, _single)
    _DISPATCH[f"{_pfx}div"] = _binary_float(_fdiv_op, _single)
    _DISPATCH[f"{_pfx}rem"] = _binary_float(_frem_op, _single)


@_op("ineg")
def _ineg(frame, ins, stack, locals_):
    stack.append(to_int(-stack.pop()))


@_op("lneg")
def _lneg(frame, ins, stack, locals_):
    stack.append(JLong(-stack.pop().value))


@_op("fneg")
def _fneg(frame, ins, stack, locals_):
    stack.append(JFloat(-stack.pop().value))


@_op("dneg")
def _dneg(frame, ins, stack, locals_):
    stack.append(-stack.pop())


@_op("iinc")
def _iinc(frame, ins, stack, locals_):
    locals_[ins.local] = to_int(locals_[ins.local] + ins.immediate)


# -- conversions ---------------------------------------------------------

_CONVERSIONS = {
    "i2l": lambda v: JLong(v),
    "i2f": lambda v: JFloat(float(v)),
    "i2d": lambda v: float(v),
    "l2i": lambda v: to_int(v.value),
    "l2f": lambda v: JFloat(float(v.value)),
    "l2d": lambda v: float(v.value),
    "f2i": lambda v: _float_to_int(v.value, 32),
    "f2l": lambda v: JLong(_float_to_int(v.value, 64)),
    "f2d": lambda v: v.value,
    "d2i": lambda v: _float_to_int(v, 32),
    "d2l": lambda v: JLong(_float_to_int(v, 64)),
    "d2f": lambda v: JFloat(v),
    "i2b": to_byte,
    "i2c": to_char,
    "i2s": to_short,
}


def _float_to_int(value: float, bits: int) -> int:
    if value != value:  # NaN
        return 0
    limit = (1 << (bits - 1)) - 1
    if value >= limit:
        return limit
    if value <= -(limit + 1):
        return -(limit + 1)
    return int(value)


for _name, _conversion in _CONVERSIONS.items():
    def _make_conversion(conversion):
        def handler(frame, ins, stack, locals_):
            stack.append(conversion(stack.pop()))
        return handler
    _DISPATCH[_name] = _make_conversion(_conversion)


# -- comparisons -----------------------------------------------------------


@_op("lcmp")
def _lcmp(frame, ins, stack, locals_):
    right = stack.pop().value
    left = stack.pop().value
    stack.append((left > right) - (left < right))


@_op("fcmpl", "fcmpg", "dcmpl", "dcmpg")
def _fcmp(frame, ins, stack, locals_):
    right = stack.pop()
    left = stack.pop()
    a = left.value if isinstance(left, JFloat) else left
    b = right.value if isinstance(right, JFloat) else right
    if a != a or b != b:  # NaN
        stack.append(1 if ins.mnemonic.endswith("g") else -1)
    else:
        stack.append((a > b) - (a < b))


_IF_OPS = {
    "ifeq": lambda v: v == 0, "ifne": lambda v: v != 0,
    "iflt": lambda v: v < 0, "ifge": lambda v: v >= 0,
    "ifgt": lambda v: v > 0, "ifle": lambda v: v <= 0,
}

for _name, _test in _IF_OPS.items():
    def _make_if(test):
        def handler(frame, ins, stack, locals_):
            if test(stack.pop()):
                return ("jump", ins.target)
        return handler
    _DISPATCH[_name] = _make_if(_test)

_ICMP_OPS = {
    "if_icmpeq": lambda a, b: a == b, "if_icmpne": lambda a, b: a != b,
    "if_icmplt": lambda a, b: a < b, "if_icmpge": lambda a, b: a >= b,
    "if_icmpgt": lambda a, b: a > b, "if_icmple": lambda a, b: a <= b,
}

for _name, _test in _ICMP_OPS.items():
    def _make_icmp(test):
        def handler(frame, ins, stack, locals_):
            right = stack.pop()
            left = stack.pop()
            if test(left, right):
                return ("jump", ins.target)
        return handler
    _DISPATCH[_name] = _make_icmp(_test)


@_op("if_acmpeq", "if_acmpne")
def _acmp(frame, ins, stack, locals_):
    right = stack.pop()
    left = stack.pop()
    same = left is right or (isinstance(left, str) and
                             isinstance(right, str) and left is right)
    if (ins.mnemonic == "if_acmpeq") == same:
        return ("jump", ins.target)


@_op("ifnull")
def _ifnull(frame, ins, stack, locals_):
    if stack.pop() is None:
        return ("jump", ins.target)


@_op("ifnonnull")
def _ifnonnull(frame, ins, stack, locals_):
    if stack.pop() is not None:
        return ("jump", ins.target)


@_op("goto", "goto_w")
def _goto(frame, ins, stack, locals_):
    return ("jump", ins.target)


@_op("tableswitch", "lookupswitch")
def _switch(frame, ins, stack, locals_):
    value = stack.pop()
    for match, target in ins.switch.pairs:
        if match == value:
            return ("jump", target)
    return ("jump", ins.switch.default)


@_op("ireturn", "lreturn", "freturn", "dreturn", "areturn")
def _return_value(frame, ins, stack, locals_):
    return ("return", stack.pop())


@_op("return")
def _return_void(frame, ins, stack, locals_):
    return ("return", None)


# -- fields ---------------------------------------------------------------


@_op("getstatic")
def _getstatic(frame, ins, stack, locals_):
    owner, name, descriptor = frame.pool.member_ref(ins.cp_index)
    stack.append(frame.machine.static_get(owner, name, descriptor))


@_op("putstatic")
def _putstatic(frame, ins, stack, locals_):
    owner, name, _ = frame.pool.member_ref(ins.cp_index)
    frame.machine.static_put(owner, name, stack.pop())


@_op("getfield")
def _getfield(frame, ins, stack, locals_):
    _, name, _ = frame.pool.member_ref(ins.cp_index)
    receiver = stack.pop()
    if receiver is None:
        frame.machine.throw("java/lang/NullPointerException",
                            f"reading field {name}")
    stack.append(receiver.fields[name])


@_op("putfield")
def _putfield(frame, ins, stack, locals_):
    _, name, _ = frame.pool.member_ref(ins.cp_index)
    value = stack.pop()
    receiver = stack.pop()
    if receiver is None:
        frame.machine.throw("java/lang/NullPointerException",
                            f"writing field {name}")
    receiver.fields[name] = value


# -- invokes ------------------------------------------------------------


def _pop_args(stack, descriptor):
    arg_types, _ = parse_method_descriptor(descriptor)
    args = [stack.pop() for _ in arg_types]
    args.reverse()
    return args


@_op("invokevirtual", "invokeinterface")
def _invokevirtual(frame, ins, stack, locals_):
    owner, name, descriptor = frame.pool.member_ref(ins.cp_index)
    args = _pop_args(stack, descriptor)
    receiver = stack.pop()
    if receiver is None:
        frame.machine.throw("java/lang/NullPointerException",
                            f"invoking {name}")
    result = frame.machine.invoke(owner, name, descriptor, receiver,
                                  args)
    if not descriptor.endswith(")V"):
        stack.append(result)


@_op("invokespecial")
def _invokespecial(frame, ins, stack, locals_):
    owner, name, descriptor = frame.pool.member_ref(ins.cp_index)
    args = _pop_args(stack, descriptor)
    receiver = stack.pop()
    result = frame.machine.invoke_special(owner, name, descriptor,
                                          receiver, args)
    if not descriptor.endswith(")V"):
        stack.append(result)


@_op("invokestatic")
def _invokestatic(frame, ins, stack, locals_):
    owner, name, descriptor = frame.pool.member_ref(ins.cp_index)
    args = _pop_args(stack, descriptor)
    frame.machine.ensure_initialized(owner)
    result = frame.machine.invoke(owner, name, descriptor, None, args)
    if not descriptor.endswith(")V"):
        stack.append(result)


# -- objects and arrays ------------------------------------------------------


@_op("new")
def _new(frame, ins, stack, locals_):
    class_name = frame.pool.class_name(ins.cp_index)
    if class_name in frame.machine.classes:
        stack.append(frame.machine.new_instance(class_name))
    else:
        from .natives import native_new

        stack.append(native_new(frame.machine, class_name))


@_op("newarray")
def _newarray(frame, ins, stack, locals_):
    from ..classfile.opcodes import ATYPE_DESCRIPTORS

    length = stack.pop()
    if length < 0:
        frame.machine.throw("java/lang/IndexOutOfBoundsException",
                            f"negative array size {length}")
    stack.append(JavaArray.new(ATYPE_DESCRIPTORS[ins.atype], length))


@_op("anewarray")
def _anewarray(frame, ins, stack, locals_):
    length = stack.pop()
    if length < 0:
        frame.machine.throw("java/lang/IndexOutOfBoundsException",
                            f"negative array size {length}")
    name = frame.pool.class_name(ins.cp_index)
    descriptor = name if name.startswith("[") else f"L{name};"
    stack.append(JavaArray.new(descriptor, length))


@_op("arraylength")
def _arraylength(frame, ins, stack, locals_):
    array = stack.pop()
    if array is None:
        frame.machine.throw("java/lang/NullPointerException",
                            "array length of null")
    stack.append(array.length)


@_op("athrow")
def _athrow(frame, ins, stack, locals_):
    throwable = stack.pop()
    if throwable is None:
        frame.machine.throw("java/lang/NullPointerException",
                            "throw null")
    raise JavaThrow(throwable)


def _runtime_instanceof(machine, value, class_name) -> bool:
    if value is None:
        return False
    if isinstance(value, str):
        return class_name in ("java/lang/String", "java/lang/Object")
    if isinstance(value, JavaArray):
        return class_name == "java/lang/Object"
    if isinstance(value, JavaObject):
        return machine.is_subclass(value.class_name, class_name)
    return class_name == "java/lang/Object"


@_op("checkcast")
def _checkcast(frame, ins, stack, locals_):
    class_name = frame.pool.class_name(ins.cp_index)
    value = stack[-1]
    if value is None or class_name.startswith("["):
        return
    if not _runtime_instanceof(frame.machine, value, class_name):
        frame.machine.throw(
            "java/lang/RuntimeException",
            f"ClassCastException: cannot cast to {class_name}")


@_op("instanceof")
def _instanceof(frame, ins, stack, locals_):
    class_name = frame.pool.class_name(ins.cp_index)
    value = stack.pop()
    stack.append(1 if _runtime_instanceof(frame.machine, value,
                                          class_name) else 0)


@_op("monitorenter", "monitorexit")
def _monitor(frame, ins, stack, locals_):
    stack.pop()  # single-threaded: monitors are no-ops


@_op("multianewarray")
def _multianewarray(frame, ins, stack, locals_):
    dims = [stack.pop() for _ in range(ins.dims)]
    dims.reverse()
    descriptor = frame.pool.class_name(ins.cp_index)

    def build(depth: int, element_descriptor: str):
        if depth == len(dims) - 1:
            return JavaArray.new(element_descriptor, dims[depth])
        array = JavaArray.new(element_descriptor, dims[depth])
        inner = element_descriptor[1:]
        for i in range(dims[depth]):
            array.elements[i] = build(depth + 1, inner)
        return array

    stack.append(build(0, descriptor[1:]))
