"""A JVM bytecode interpreter for the class files this repo produces."""

from .machine import JavaThrow, Machine, MachineError
from .values import JavaArray, JavaObject, JFloat, JLong

__all__ = [
    "JavaArray",
    "JavaObject",
    "JavaThrow",
    "JFloat",
    "JLong",
    "Machine",
    "MachineError",
]
