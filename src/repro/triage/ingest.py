"""Bounded recursive ingestion of real-world containers.

The walker takes an arbitrary blob — a flat jar, a jar-of-jars, an
MRJAR, a gzip of a zip of a jar, an executable with a zip stapled to
its tail, or adversarial garbage — and produces a
:class:`TriageResult`:

* ``classes``    — every class file found anywhere in the nesting,
  keyed by canonical entry name (MRJAR version prefixes resolved,
  duplicates deduplicated first-wins): the input to the normal pack
  pipeline;
* ``resources``  — every non-class entry, keyed by its ``!``-qualified
  path: the input to the deflate-fallback path
  (:func:`repro.jar.jarfile.make_jar`);
* ``report``     — the full :class:`~repro.triage.report.TriageReport`
  audit: every artifact visited, every skip, every budget truncation.

Degradation contract: **malformed input never raises out of the
walk**.  A corrupt nested container becomes an ``error`` artifact in
the report (its bytes routed to resources so nothing is lost); only
the *caller* decides whether zero usable classes is fatal
(:func:`classes_from_triage` raises :class:`TriageError` for pipeline
front doors that need classes).

Safety rules, all explicit in the report when applied:

* entry names that escape the root (``../``, absolute paths, drive
  letters) are rejected — path traversal;
* a child whose bytes digest-match an ancestor is a cycle and is not
  recursed;
* a child digest-matching any previously walked artifact is a
  duplicate and is not walked twice;
* every decompression is charged against the byte budget *before* it
  happens, and suspicious expansion ratios are refused unexpanded
  (the zip-bomb guard).
"""

from __future__ import annotations

import hashlib
import io
import re
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from .. import observe
from ..errors import TriageError
from ..pack.spool import BlobMap, BlobStore
from .budget import TRUNCATE_DEPTH, BudgetTracker, TriageBudget
from .magic import (
    CLASS_MAGIC,
    KIND_CLASS,
    KIND_GZIP,
    KIND_UNKNOWN,
    KIND_ZIP,
    detect,
)
from .report import (
    SKIP_BAD_CLASS_MAGIC,
    SKIP_CYCLIC,
    SKIP_DUPLICATE_ARTIFACT,
    SKIP_DUPLICATE_CLASS,
    SKIP_MRJAR_SHADOWED,
    SKIP_PATH_TRAVERSAL,
    SKIP_UNREADABLE_ENTRY,
    STATUS_ERROR,
    STATUS_TRUNCATED,
    ArtifactReport,
    TriageReport,
)

#: Synthetic artifact kind for a directory root.
KIND_DIR = "dir"

#: MRJAR layer prefix: ``META-INF/versions/<N>/<real entry name>``.
_MRJAR_LAYER = re.compile(r"^META-INF/versions/(\d+)/(.+)$")

#: Base (unversioned) entries sort below every MRJAR layer.
_BASE_VERSION = 0


@dataclass
class TriageResult:
    """What one recursive ingest produced."""

    report: TriageReport
    #: canonical class entry name -> class-file bytes.  A
    #: :class:`~repro.pack.spool.BlobMap` when produced by the walker:
    #: entries at or above ``budget.spool_window_bytes`` live in a
    #: shared temp file, not resident memory.  Callers that need a
    #: picklable/plain mapping must ``dict()`` it.
    classes: Mapping[str, bytes] = field(default_factory=dict)
    #: ``!``-qualified entry path -> raw bytes (deflate-fallback input).
    resources: Mapping[str, bytes] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when nothing was cut, skipped, or errored."""
        totals = self.report.totals()
        return not (totals["errors"] or totals["skips"]
                    or totals["truncations"])


def _unsafe_name(name: str) -> Optional[str]:
    """Why an entry name must be rejected, or None when it is safe."""
    if not name:
        return "empty name"
    if name.startswith(("/", "\\")):
        return "absolute path"
    if re.match(r"^[A-Za-z]:", name):
        return "drive-letter path"
    normalized = name.replace("\\", "/")
    if any(part == ".." for part in normalized.split("/")):
        return "parent-directory traversal"
    if "\x00" in name:
        return "NUL byte in name"
    return None


class _Walker:
    """One recursive ingest; see the module docstring for the rules."""

    def __init__(self, root: str, budget: TriageBudget,
                 tracker: Optional[BudgetTracker] = None):
        self.root = root
        self.budget = budget
        self.tracker = tracker or BudgetTracker(budget)
        self.report = TriageReport(root=root, budget=budget,
                                   truncations=self.tracker.truncations)
        # One shared spool: entries >= spool_window_bytes are kept in a
        # temp file rather than resident, so ingesting a container of
        # large artifacts costs bounded memory.
        self._store = BlobStore(budget.spool_window_bytes)
        self.classes: BlobMap = BlobMap(self._store)
        self.resources: BlobMap = BlobMap(self._store)
        #: canonical class name -> (MRJAR version, source path).
        self._class_sources: Dict[str, Tuple[int, str]] = {}
        #: digest of every artifact walked -> its path (dedup).
        self._seen: Dict[str, str] = {}
        self._metrics = observe.current().metrics

    # -- bookkeeping -----------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.count(f"triage.{name}", n)

    def _relative(self, path: str) -> str:
        prefix = self.root + "!"
        return path[len(prefix):] if path.startswith(prefix) else path

    def _add_resource(self, path: str, data: bytes,
                      artifact: ArtifactReport) -> None:
        self.resources[self._relative(path)] = data
        artifact.resources += 1

    def _add_class(self, canonical: str, version: int, data: bytes,
                   entry: str, path: str,
                   artifact: ArtifactReport) -> None:
        held = self._class_sources.get(canonical)
        if held is not None:
            held_version, held_path = held
            if held_path != artifact.path or version <= held_version:
                # Same artifact: lower/equal MRJAR layer is shadowed.
                # Different artifact: first occurrence wins.
                reason = SKIP_MRJAR_SHADOWED \
                    if held_path == artifact.path \
                    else SKIP_DUPLICATE_CLASS
                artifact.skip(entry, reason,
                              f"kept the copy from {held_path} "
                              f"(version {held_version})")
                self._count("skips")
                return
            # Higher MRJAR layer replaces the copy already held from
            # this artifact; the replaced layer becomes the skip.
            shadowed = canonical if held_version == 0 else \
                f"META-INF/versions/{held_version}/{canonical}"
            artifact.skip(shadowed, SKIP_MRJAR_SHADOWED,
                          f"replaced by the version-{version} layer")
            self._count("skips")
            artifact.classes -= 1
        self._class_sources[canonical] = (version, artifact.path)
        self.classes[canonical] = data
        artifact.classes += 1

    # -- the walk --------------------------------------------------------

    def walk(self, data: bytes, path: str, depth: int = 0,
             ancestors: Tuple[str, ...] = ()) -> None:
        if not self.tracker.admit_artifact(path):
            return
        artifact = ArtifactReport(path=path, kind=detect(data),
                                  depth=depth, bytes=len(data))
        self.report.artifacts.append(artifact)
        self._count("artifacts")
        if self._metrics is not None:
            self._metrics.observe("triage.depth", depth)
        if not self.tracker.check_deadline(path):
            artifact.status = STATUS_TRUNCATED
            self._count("truncations")
            return
        digest = hashlib.sha256(data).hexdigest()
        self._seen.setdefault(digest, path)
        if artifact.kind == KIND_CLASS:
            canonical = path.rsplit("!", 1)[-1]
            self._add_class(canonical, _BASE_VERSION, data,
                            canonical, path, artifact)
        elif artifact.kind == KIND_ZIP:
            self._walk_zip(data, path, depth, ancestors + (digest,),
                           artifact)
        elif artifact.kind == KIND_GZIP:
            self._walk_gzip(data, path, depth, ancestors + (digest,),
                            artifact)
        else:
            # Unknown blob: never dropped — route to deflate fallback.
            self._add_resource(path, data, artifact)

    def _child(self, data: bytes, entry: str, path: str, depth: int,
               ancestors: Tuple[str, ...],
               artifact: ArtifactReport) -> None:
        """Recurse into one nested container entry (cycle, duplicate,
        and depth guards applied here)."""
        child_path = f"{path}!{entry}"
        digest = hashlib.sha256(data).hexdigest()
        if digest in ancestors:
            artifact.skip(entry, SKIP_CYCLIC,
                          "child is byte-identical to an enclosing "
                          "artifact; not recursing")
            self._count("skips")
            return
        seen_at = self._seen.get(digest)
        if seen_at is not None:
            artifact.skip(entry, SKIP_DUPLICATE_ARTIFACT,
                          f"same bytes already ingested at {seen_at}")
            self._count("skips")
            return
        if depth + 1 > self.budget.max_depth:
            self.tracker.truncate(
                child_path, TRUNCATE_DEPTH,
                f"nesting depth {depth + 1} exceeds the "
                f"{self.budget.max_depth} limit; kept as a resource")
            self._count("truncations")
            self._add_resource(child_path, data, artifact)
            return
        artifact.children += 1
        self.walk(data, child_path, depth + 1, ancestors)

    def _walk_zip(self, data: bytes, path: str, depth: int,
                  ancestors: Tuple[str, ...],
                  artifact: ArtifactReport) -> None:
        try:
            archive = zipfile.ZipFile(io.BytesIO(data))
            infos = archive.infolist()
        except Exception as exc:  # BadZipFile, truncated EOCD, ...
            artifact.status = STATUS_ERROR
            artifact.error = f"unreadable zip: {exc}"
            self._count("errors")
            return
        versions = set()
        with archive:
            for index, info in enumerate(infos):
                if info.is_dir():
                    continue
                if not self.tracker.check_deadline(path) or \
                        self.tracker.exhausted is not None:
                    artifact.status = STATUS_TRUNCATED
                    self._count("truncations")
                    break
                if not self.tracker.admit_entry(path):
                    artifact.status = STATUS_TRUNCATED
                    self.tracker.truncations[-1].detail += (
                        f"; stopped before entry {index + 1} of "
                        f"{len(infos)} in {path}")
                    self._count("truncations")
                    break
                artifact.entries += 1
                name = info.filename
                reason = _unsafe_name(name)
                if reason is not None:
                    artifact.skip(name, SKIP_PATH_TRAVERSAL, reason)
                    self._count("skips")
                    continue
                if not self.tracker.ratio_allows(
                        f"{path}!{name}", info.file_size,
                        info.compress_size):
                    artifact.status = STATUS_TRUNCATED
                    self._count("truncations")
                    continue
                if not self.tracker.admit_bytes(f"{path}!{name}",
                                                info.file_size):
                    artifact.status = STATUS_TRUNCATED
                    self._count("truncations")
                    break
                try:
                    payload = archive.read(name)
                except Exception as exc:  # bad CRC, bogus header, ...
                    artifact.skip(name, SKIP_UNREADABLE_ENTRY,
                                  str(exc))
                    self._count("skips")
                    continue
                self._entry(payload, name, path, depth, ancestors,
                            artifact, versions)
        if versions:
            artifact.mrjar_versions = sorted(versions)

    def _entry(self, payload: bytes, name: str, path: str, depth: int,
               ancestors: Tuple[str, ...], artifact: ArtifactReport,
               versions: set) -> None:
        """Classify one extracted zip entry and route it."""
        canonical, version = name, _BASE_VERSION
        layer = _MRJAR_LAYER.match(name)
        if layer is not None:
            version = int(layer.group(1))
            canonical = layer.group(2)
            versions.add(version)
        if canonical.endswith(".class"):
            if payload.startswith(CLASS_MAGIC):
                self._add_class(canonical, version, payload, name,
                                path, artifact)
            else:
                # A .class entry without the magic is not a class
                # file; say so and keep the bytes as a resource.
                artifact.skip(name, SKIP_BAD_CLASS_MAGIC,
                              f"first bytes {payload[:4]!r} are not "
                              "0xCAFEBABE; kept as a resource")
                self._count("skips")
                self._add_resource(f"{path}!{name}", payload, artifact)
        elif detect(payload) in (KIND_ZIP, KIND_GZIP):
            self._child(payload, name, path, depth, ancestors,
                        artifact)
        elif payload.startswith(CLASS_MAGIC):
            # A class file under a non-.class name: magic wins.
            self._add_class(canonical, version, payload, name, path,
                            artifact)
        else:
            self._add_resource(f"{path}!{name}", payload, artifact)

    def _walk_gzip(self, data: bytes, path: str, depth: int,
                   ancestors: Tuple[str, ...],
                   artifact: ArtifactReport) -> None:
        budget = self.budget
        remaining = budget.max_total_bytes - self.tracker.total_bytes
        ratio_cap = int(max(len(data), 1) * budget.max_expansion_ratio)
        if ratio_cap <= budget.ratio_floor_bytes:
            ratio_cap = budget.ratio_floor_bytes
        cap = min(remaining, ratio_cap)
        inflater = zlib.decompressobj(16 + zlib.MAX_WBITS)
        try:
            inflated = inflater.decompress(data, cap + 1)
        except zlib.error as exc:
            artifact.status = STATUS_ERROR
            artifact.error = f"unreadable gzip: {exc}"
            self._count("errors")
            return
        if len(inflated) > cap or inflater.unconsumed_tail:
            reason_path = f"{path}!<gunzip>"
            if cap == ratio_cap and ratio_cap < remaining:
                self.tracker.ratio_allows(reason_path, len(inflated),
                                          len(data))
            else:
                self.tracker.admit_bytes(reason_path, len(inflated))
            artifact.status = STATUS_TRUNCATED
            self._count("truncations")
            return
        if not inflater.eof:
            artifact.status = STATUS_ERROR
            artifact.error = "truncated gzip stream"
            self._count("errors")
            return
        if not self.tracker.admit_bytes(f"{path}!<gunzip>",
                                        len(inflated)):
            artifact.status = STATUS_TRUNCATED
            self._count("truncations")
            return
        artifact.entries += 1
        self._child(inflated, "<gunzip>", path, depth, ancestors,
                    artifact)

    def finish(self) -> TriageResult:
        self.report.seconds = self.tracker.elapsed()
        if self._store.spilled_entries:
            self._count("spooled_entries", self._store.spilled_entries)
            self._count("spooled_bytes", self._store.spilled_bytes)
        return TriageResult(report=self.report, classes=self.classes,
                            resources=self.resources)


def triage_bytes(data: bytes, name: str = "<input>",
                 budget: Optional[TriageBudget] = None) -> TriageResult:
    """Recursively ingest one blob under explicit budgets.

    Never raises on malformed input — the report carries errors,
    skips, and truncations instead.
    """
    budget = (budget or TriageBudget()).validate()
    walker = _Walker(name, budget)
    with observe.current().span("triage", root=name):
        walker.walk(data, name)
    return walker.finish()


def triage_path(path: Path,
                budget: Optional[TriageBudget] = None) -> TriageResult:
    """Recursively ingest a file or a directory tree.

    A directory becomes a synthetic ``dir`` root artifact whose
    children are every regular file under it (sorted, so the walk is
    deterministic).  Unreadable paths raise :class:`TriageError` —
    the input *location* must exist; its *contents* may be arbitrary.
    """
    budget = (budget or TriageBudget()).validate()
    path = Path(path)
    if not path.exists():
        raise TriageError(f"no such input: {path}")
    if path.is_dir():
        walker = _Walker(path.name or str(path), budget)
        root = ArtifactReport(path=walker.root, kind=KIND_DIR,
                              depth=0, bytes=0)
        walker.report.artifacts.append(root)
        walker.tracker.admit_artifact(walker.root)
        with observe.current().span("triage", root=walker.root):
            for member in sorted(path.rglob("*")):
                if not member.is_file():
                    continue
                if not walker.tracker.check_deadline(walker.root) or \
                        walker.tracker.exhausted is not None:
                    root.status = STATUS_TRUNCATED
                    break
                relative = member.relative_to(path).as_posix()
                if not walker.tracker.admit_entry(walker.root):
                    root.status = STATUS_TRUNCATED
                    break
                root.entries += 1
                try:
                    data = member.read_bytes()
                except OSError as exc:
                    root.skip(relative, SKIP_UNREADABLE_ENTRY,
                              str(exc))
                    continue
                if not walker.tracker.admit_bytes(
                        f"{walker.root}!{relative}", len(data)):
                    root.status = STATUS_TRUNCATED
                    break
                root.children += 1
                walker.walk(data, f"{walker.root}!{relative}",
                            depth=1)
        return walker.finish()
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise TriageError(f"unreadable input {path}: {exc}") from exc
    return triage_bytes(data, name=path.name, budget=budget)


def classes_from_triage(result: TriageResult) -> Mapping[str, bytes]:
    """The packable classes of a triage, or :class:`TriageError`.

    Front doors that exist to *pack* (``repro pack --triage``, the
    service) call this: zero classes means the input — whatever it
    was — has nothing for the pipeline, and the error carries the
    report's own accounting of why.
    """
    if not result.classes:
        totals = result.report.totals()
        detail = result.report.summary()
        errors = result.report.errors
        if errors:
            detail += f"; first error: {errors[0].path}: " \
                      f"{errors[0].error}"
        raise TriageError(
            f"triage found no class files in {result.report.root} "
            f"({totals['artifacts']} artifact(s) examined) — {detail}")
    # Returned as-is (possibly spool-backed): iterating one entry at a
    # time never materializes the whole corpus.
    return result.classes


__all__ = [
    "KIND_DIR",
    "TriageResult",
    "classes_from_triage",
    "triage_bytes",
    "triage_path",
]
