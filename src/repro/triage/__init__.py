"""Bounded recursive ingestion of real-world containers.

``repro.triage`` is the front door for inputs that are *not* the flat
jars the paper assumes: jars-of-jars, MRJARs, gzip blobs, prefixed
archives, adversarial garbage.  It classifies blobs by magic bytes,
enumerates nested children under explicit budgets, and accounts for
every byte it refuses to ingest — see :mod:`repro.triage.ingest` for
the degradation contract and ``docs/TRIAGE.md`` for the operator view.
"""

from .budget import (
    GLOBAL_REASONS,
    TRUNCATE_ARTIFACTS,
    TRUNCATE_BYTES,
    TRUNCATE_DEADLINE,
    TRUNCATE_DEPTH,
    TRUNCATE_ENTRIES,
    TRUNCATE_RATIO,
    BudgetTracker,
    TriageBudget,
    Truncation,
)
from .ingest import (
    KIND_DIR,
    TriageResult,
    classes_from_triage,
    triage_bytes,
    triage_path,
)
from .magic import (
    CLASS_MAGIC,
    EOCD_MAGIC,
    GZIP_MAGIC,
    KIND_CLASS,
    KIND_GZIP,
    KIND_UNKNOWN,
    KIND_ZIP,
    KINDS,
    ZIP_LOCAL_MAGIC,
    detect,
    find_eocd,
    has_eocd,
)
from .report import (
    REPORT_SCHEMA,
    SKIP_BAD_CLASS_MAGIC,
    SKIP_CYCLIC,
    SKIP_DUPLICATE_ARTIFACT,
    SKIP_DUPLICATE_CLASS,
    SKIP_MRJAR_SHADOWED,
    SKIP_PATH_TRAVERSAL,
    SKIP_UNREADABLE_ENTRY,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TRUNCATED,
    ArtifactReport,
    EntrySkip,
    TriageReport,
)

__all__ = [
    "ArtifactReport",
    "BudgetTracker",
    "CLASS_MAGIC",
    "EOCD_MAGIC",
    "EntrySkip",
    "GLOBAL_REASONS",
    "GZIP_MAGIC",
    "KINDS",
    "KIND_CLASS",
    "KIND_DIR",
    "KIND_GZIP",
    "KIND_UNKNOWN",
    "KIND_ZIP",
    "REPORT_SCHEMA",
    "SKIP_BAD_CLASS_MAGIC",
    "SKIP_CYCLIC",
    "SKIP_DUPLICATE_ARTIFACT",
    "SKIP_DUPLICATE_CLASS",
    "SKIP_MRJAR_SHADOWED",
    "SKIP_PATH_TRAVERSAL",
    "SKIP_UNREADABLE_ENTRY",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TRUNCATED",
    "TRUNCATE_ARTIFACTS",
    "TRUNCATE_BYTES",
    "TRUNCATE_DEADLINE",
    "TRUNCATE_DEPTH",
    "TRUNCATE_ENTRIES",
    "TRUNCATE_RATIO",
    "TriageBudget",
    "TriageReport",
    "TriageResult",
    "Truncation",
    "ZIP_LOCAL_MAGIC",
    "classes_from_triage",
    "detect",
    "find_eocd",
    "has_eocd",
    "triage_bytes",
    "triage_path",
]
