"""Per-artifact triage reports (schema ``repro.triage/1``).

A :class:`TriageReport` is the full audit trail of one recursive
ingest: one :class:`ArtifactReport` per container/blob visited (in
deterministic walk order), every per-entry skip with its reason, and
every budget :class:`~repro.triage.budget.Truncation`.  The invariant
callers rely on::

    classes + resources + skips + truncation cuts == everything seen

No entry is ever dropped without a line in the report saying what was
dropped and why — the report is how a bounded ingest stays honest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .budget import TriageBudget, Truncation

#: Schema tag written at the top of every triage report.
REPORT_SCHEMA = "repro.triage/1"

#: Artifact terminal states.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TRUNCATED = "truncated"

#: Per-entry skip reasons (policy rejections, not budget cuts).
SKIP_PATH_TRAVERSAL = "path-traversal"
SKIP_CYCLIC = "cyclic"
SKIP_DUPLICATE_ARTIFACT = "duplicate-artifact"
SKIP_DUPLICATE_CLASS = "duplicate-class-entry"
SKIP_MRJAR_SHADOWED = "mrjar-shadowed"
SKIP_BAD_CLASS_MAGIC = "bad-class-magic"
SKIP_UNREADABLE_ENTRY = "unreadable-entry"


@dataclass
class EntrySkip:
    """One entry deliberately not ingested, and why."""

    entry: str
    reason: str
    detail: str = ""

    def to_dict(self) -> Dict[str, str]:
        doc = {"entry": self.entry, "reason": self.reason}
        if self.detail:
            doc["detail"] = self.detail
        return doc


@dataclass
class ArtifactReport:
    """What triage saw inside one artifact.

    ``path`` is the nesting chain, ``!``-separated
    (``app.jar!lib/inner.jar!deep.zip``) — the same convention JVM
    jar-URLs use, so operators can read it at a glance.
    """

    path: str
    kind: str
    depth: int
    bytes: int
    status: str = STATUS_OK
    error: Optional[str] = None
    entries: int = 0
    classes: int = 0
    resources: int = 0
    children: int = 0
    #: MRJAR ``META-INF/versions/<N>/`` layers seen in this artifact.
    mrjar_versions: List[int] = field(default_factory=list)
    skips: List[EntrySkip] = field(default_factory=list)

    def skip(self, entry: str, reason: str, detail: str = "") -> None:
        self.skips.append(EntrySkip(entry, reason, detail))

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "path": self.path,
            "kind": self.kind,
            "depth": self.depth,
            "bytes": self.bytes,
            "status": self.status,
            "entries": self.entries,
            "classes": self.classes,
            "resources": self.resources,
            "children": self.children,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.mrjar_versions:
            doc["mrjar_versions"] = sorted(self.mrjar_versions)
        if self.skips:
            doc["skips"] = [skip.to_dict() for skip in self.skips]
        return doc


@dataclass
class TriageReport:
    """The complete audit of one recursive ingest."""

    root: str
    budget: TriageBudget
    artifacts: List[ArtifactReport] = field(default_factory=list)
    truncations: List[Truncation] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def truncated(self) -> bool:
        return bool(self.truncations)

    @property
    def errors(self) -> List[ArtifactReport]:
        return [a for a in self.artifacts if a.status == STATUS_ERROR]

    @property
    def max_depth_seen(self) -> int:
        return max((a.depth for a in self.artifacts), default=0)

    def totals(self) -> Dict[str, Any]:
        return {
            "artifacts": len(self.artifacts),
            "classes": sum(a.classes for a in self.artifacts),
            "resources": sum(a.resources for a in self.artifacts),
            "entries": sum(a.entries for a in self.artifacts),
            "bytes": sum(a.bytes for a in self.artifacts),
            "errors": len(self.errors),
            "skips": sum(len(a.skips) for a in self.artifacts),
            "truncations": len(self.truncations),
            "max_depth": self.max_depth_seen,
            "seconds": round(self.seconds, 6),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "root": self.root,
            "budget": self.budget.to_dict(),
            "totals": self.totals(),
            "artifacts": [a.to_dict() for a in self.artifacts],
            "truncations": [t.to_dict() for t in self.truncations],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def summary(self) -> str:
        """The one-line operator summary the CLI prints."""
        totals = self.totals()
        parts = [f"{totals['artifacts']} artifact(s)",
                 f"{totals['classes']} class(es)",
                 f"{totals['resources']} resource(s)"]
        if totals["errors"]:
            parts.append(f"{totals['errors']} error(s)")
        if totals["skips"]:
            parts.append(f"{totals['skips']} skip(s)")
        if totals["truncations"]:
            parts.append(f"{totals['truncations']} truncation(s)")
        return f"triage: {', '.join(parts)} " \
               f"(depth {totals['max_depth']}, " \
               f"{totals['bytes']} bytes)"


__all__ = [
    "ArtifactReport",
    "EntrySkip",
    "REPORT_SCHEMA",
    "SKIP_BAD_CLASS_MAGIC",
    "SKIP_CYCLIC",
    "SKIP_DUPLICATE_ARTIFACT",
    "SKIP_DUPLICATE_CLASS",
    "SKIP_MRJAR_SHADOWED",
    "SKIP_PATH_TRAVERSAL",
    "SKIP_UNREADABLE_ENTRY",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TRUNCATED",
    "TriageReport",
]
