"""Magic-byte detection for real-world ingestion.

Real traffic is not flat jars of class files: it is jars-of-jars,
MRJARs, gzip blobs, self-extracting archives with executable prefixes,
and plain garbage.  The first triage decision — *what is this blob?* —
is made here, from leading magic bytes plus a bounded end-of-central-
directory (EOCD) scan for zips whose local-header magic is hidden
behind a prefix.

Detection never raises: any input maps to exactly one of the
:data:`KINDS`.  ``unknown`` is a first-class answer, not an error —
unknown blobs route to the deflate-fallback path, they are never
silently dropped (see :mod:`repro.triage.ingest`).
"""

from __future__ import annotations

from typing import Optional

#: ``0xCAFEBABE``, big-endian — a bare class file (JVMS §4.1).
CLASS_MAGIC = b"\xca\xfe\xba\xbe"

#: gzip member header (RFC 1952 §2.3.1).
GZIP_MAGIC = b"\x1f\x8b"

#: Zip local-file-header magic; jars, MRJARs, wars, zipapps all start
#: here.
ZIP_LOCAL_MAGIC = b"PK\x03\x04"

#: End-of-central-directory magic; a zip with no entries starts with
#: this directly, and every readable zip ends with one.
EOCD_MAGIC = b"PK\x05\x06"

#: The fixed portion of an EOCD record.
EOCD_SIZE = 22

#: Max bytes scanned backwards for the EOCD: the fixed record plus the
#: largest possible trailing comment (a 16-bit length field).
EOCD_SCAN_LIMIT = EOCD_SIZE + 0xFFFF

KIND_CLASS = "class"
KIND_ZIP = "zip"
KIND_GZIP = "gzip"
KIND_UNKNOWN = "unknown"

#: Every answer :func:`detect` can give.
KINDS = (KIND_CLASS, KIND_ZIP, KIND_GZIP, KIND_UNKNOWN)


def find_eocd(data: bytes) -> Optional[int]:
    """Offset of the EOCD record, scanning backwards from the tail.

    Returns ``None`` when no EOCD exists in the final
    :data:`EOCD_SCAN_LIMIT` bytes — the truncated-zip signature.
    """
    if len(data) < EOCD_SIZE:
        return None
    floor = max(0, len(data) - EOCD_SCAN_LIMIT)
    offset = data.rfind(EOCD_MAGIC, floor)
    return offset if offset >= 0 else None


def has_eocd(data: bytes) -> bool:
    return find_eocd(data) is not None


def detect(data: bytes) -> str:
    """Classify a blob by magic bytes; one of :data:`KINDS`.

    A blob whose head is not a known magic but whose tail carries an
    EOCD record is still a zip (prefixed archives — self-extracting
    jars, installers); a blob that *starts* like a zip but has no EOCD
    stays ``zip`` so the reader can report the truncation precisely
    instead of detection papering over it.
    """
    if data.startswith(CLASS_MAGIC):
        return KIND_CLASS
    if data.startswith((ZIP_LOCAL_MAGIC, EOCD_MAGIC)):
        return KIND_ZIP
    if data.startswith(GZIP_MAGIC):
        return KIND_GZIP
    if has_eocd(data):
        return KIND_ZIP
    return KIND_UNKNOWN


__all__ = [
    "CLASS_MAGIC",
    "EOCD_MAGIC",
    "EOCD_SCAN_LIMIT",
    "EOCD_SIZE",
    "GZIP_MAGIC",
    "KINDS",
    "KIND_CLASS",
    "KIND_GZIP",
    "KIND_UNKNOWN",
    "KIND_ZIP",
    "ZIP_LOCAL_MAGIC",
    "detect",
    "find_eocd",
    "has_eocd",
]
