"""Explicit resource budgets for recursive ingestion.

Every recursion triage performs runs under a :class:`TriageBudget`:
hard ceilings on nesting depth, total decompressed bytes, entry count,
artifact count, wall-clock time, and per-entry expansion ratio (the
zip-bomb guard).  The :class:`BudgetTracker` does the accounting and
records one :class:`Truncation` per cut — *never hide when we cut* is
the design rule: a budget that silently drops work would make a
truncated ingest indistinguishable from a complete one.

Budgets are deliberately generous by default (a normal fat jar never
trips them) and deliberately unforgiving when tripped: once a global
budget (bytes, entries, artifacts, deadline) is exhausted the whole
walk stops, because everything after the trip point would be cut
anyway and per-artifact "partial" accounting would lie about it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import TriageError

#: Truncation reasons — global budget trips that stop enumeration.
TRUNCATE_DEPTH = "max-depth"
TRUNCATE_BYTES = "max-total-bytes"
TRUNCATE_ENTRIES = "max-entries"
TRUNCATE_ARTIFACTS = "max-artifacts"
TRUNCATE_DEADLINE = "deadline"
TRUNCATE_RATIO = "expansion-ratio"

#: Budget trips that stop the *whole* walk (not just one subtree).
GLOBAL_REASONS = (TRUNCATE_BYTES, TRUNCATE_ENTRIES,
                  TRUNCATE_ARTIFACTS, TRUNCATE_DEADLINE)


@dataclass(frozen=True)
class TriageBudget:
    """Hard ceilings for one recursive ingest.

    ``max_expansion_ratio`` guards each decompression: an entry whose
    declared inflated size exceeds ``ratio * compressed size`` (and the
    ``ratio_floor_bytes`` floor, so tiny highly-compressible entries —
    a 100-byte run of zeros deflates 50:1 legitimately — don't trip
    it) is refused without being inflated.
    """

    max_depth: int = 8
    max_total_bytes: int = 256 * 1024 * 1024
    max_entries: int = 10_000
    max_artifacts: int = 1_000
    deadline_seconds: float = 30.0
    max_expansion_ratio: float = 200.0
    ratio_floor_bytes: int = 64 * 1024
    #: Extracted entries at or above this size are spooled to a shared
    #: temp file instead of held resident (see
    #: :class:`repro.pack.spool.BlobStore`), so ingesting a container
    #: full of large artifacts costs bounded memory.  Not a ceiling —
    #: nothing is refused — hence no truncation reason.
    spool_window_bytes: int = 4 * 1024 * 1024

    def validate(self) -> "TriageBudget":
        if self.max_depth < 0:
            raise TriageError("max_depth must be >= 0")
        for name in ("max_total_bytes", "max_entries", "max_artifacts"):
            if getattr(self, name) <= 0:
                raise TriageError(f"{name} must be positive")
        if self.deadline_seconds <= 0:
            raise TriageError("deadline_seconds must be positive")
        if self.max_expansion_ratio <= 1:
            raise TriageError("max_expansion_ratio must exceed 1")
        if self.spool_window_bytes <= 0:
            raise TriageError("spool_window_bytes must be positive")
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_depth": self.max_depth,
            "max_total_bytes": self.max_total_bytes,
            "max_entries": self.max_entries,
            "max_artifacts": self.max_artifacts,
            "deadline_seconds": self.deadline_seconds,
            "max_expansion_ratio": self.max_expansion_ratio,
            "ratio_floor_bytes": self.ratio_floor_bytes,
            "spool_window_bytes": self.spool_window_bytes,
        }


@dataclass
class Truncation:
    """One explicit budget cut: where, why, and what was skipped."""

    path: str
    reason: str
    detail: str = ""

    def to_dict(self) -> Dict[str, str]:
        doc = {"path": self.path, "reason": self.reason}
        if self.detail:
            doc["detail"] = self.detail
        return doc


@dataclass
class BudgetTracker:
    """Mutable accounting against one :class:`TriageBudget`.

    ``clock`` is injectable so deadline behavior is testable without
    real sleeps.
    """

    budget: TriageBudget
    clock: Callable[[], float] = time.monotonic
    total_bytes: int = 0
    entries: int = 0
    artifacts: int = 0
    truncations: List[Truncation] = field(default_factory=list)
    #: Set to the tripping reason once a global budget is exhausted;
    #: the walker stops expanding anything new after that.
    exhausted: Optional[str] = None

    def __post_init__(self) -> None:
        self._start = self.clock()

    def elapsed(self) -> float:
        return self.clock() - self._start

    def truncate(self, path: str, reason: str, detail: str = "") -> None:
        """Record one cut; global reasons also stop the walk."""
        self.truncations.append(Truncation(path, reason, detail))
        if reason in GLOBAL_REASONS and self.exhausted is None:
            self.exhausted = reason

    # -- per-check guards ------------------------------------------------

    def check_deadline(self, path: str) -> bool:
        """True while time remains; records the trip once."""
        if self.exhausted == TRUNCATE_DEADLINE:
            return False
        if self.elapsed() >= self.budget.deadline_seconds:
            self.truncate(path, TRUNCATE_DEADLINE,
                          f"deadline of {self.budget.deadline_seconds}s "
                          f"reached after {self.elapsed():.2f}s")
            return False
        return True

    def admit_artifact(self, path: str) -> bool:
        if self.exhausted is not None:
            return False
        if self.artifacts >= self.budget.max_artifacts:
            self.truncate(path, TRUNCATE_ARTIFACTS,
                          f"artifact limit of "
                          f"{self.budget.max_artifacts} reached")
            return False
        self.artifacts += 1
        return True

    def admit_entry(self, path: str) -> bool:
        if self.exhausted is not None:
            return False
        if self.entries >= self.budget.max_entries:
            self.truncate(path, TRUNCATE_ENTRIES,
                          f"entry limit of {self.budget.max_entries} "
                          "reached")
            return False
        self.entries += 1
        return True

    def admit_bytes(self, path: str, nbytes: int) -> bool:
        """Charge ``nbytes`` of decompressed payload, or refuse."""
        if self.exhausted is not None:
            return False
        if self.total_bytes + nbytes > self.budget.max_total_bytes:
            self.truncate(
                path, TRUNCATE_BYTES,
                f"{nbytes} more bytes would exceed the "
                f"{self.budget.max_total_bytes}-byte total budget "
                f"({self.total_bytes} already ingested)")
            return False
        self.total_bytes += nbytes
        return True

    def ratio_allows(self, path: str, inflated: int,
                     compressed: int) -> bool:
        """The zip-bomb guard: refuse suspicious expansion ratios."""
        if inflated <= self.budget.ratio_floor_bytes:
            return True
        ratio = inflated / max(compressed, 1)
        if ratio > self.budget.max_expansion_ratio:
            self.truncate(
                path, TRUNCATE_RATIO,
                f"{compressed} compressed bytes declare {inflated} "
                f"inflated ({ratio:.0f}x > "
                f"{self.budget.max_expansion_ratio:.0f}x limit)")
            return False
        return True


__all__ = [
    "BudgetTracker",
    "GLOBAL_REASONS",
    "TRUNCATE_ARTIFACTS",
    "TRUNCATE_BYTES",
    "TRUNCATE_DEADLINE",
    "TRUNCATE_DEPTH",
    "TRUNCATE_ENTRIES",
    "TRUNCATE_RATIO",
    "TriageBudget",
    "Truncation",
]
