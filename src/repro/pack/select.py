"""Adaptive reference-scheme selection (``--scheme=auto``).

The paper's cross-workload result (Tables 3 and 6) is that no single
reference scheme wins everywhere: which of Simple/Basic/Freq/Cache/MTF
produces the smallest archive depends on the archive's shape — how
skewed its reference distribution is, how many objects are referenced
exactly once, how much locality the reference order has.  ``auto``
turns that observation into a production feature: score every
candidate on *this* archive, pack with the predicted winner, and
record the choice in the header so unpack needs no side channel.

Scoring is a dry run built on two facts the codec core guarantees:

* the archive traversal — and with it the first-occurrence
  ``is_new`` sequence — is identical under every scheme (the
  three-mode lockstep law), so the non-reference streams are
  byte-identical across schemes and cancel out of the comparison; and
* the counting pass can record the full reference-visit sequence
  (:data:`~repro.pack.codec_core.driver.TraceEvent`) in one walk.

So one trace-carrying count pass replays through each candidate's
coders, producing exactly the reference-stream bytes a full encode
under that scheme would write — no IR re-walk, no non-reference
bytes.  The candidate whose (independently zlib'd) reference streams
are smallest wins; the margin between candidates is the same margin
the full archives would show, up to the shared-context wobble of the
final whole-archive zlib pass (empirically well under the 1% the
acceptance tests pin).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..coding.streams import StreamSet
from ..ir import model as ir
from ..observe import recorder as observe
from ..refs.schemes import make_coder
from . import codec_core, wire
from .options import AUTO_SCHEME, PackOptions

#: Candidate order, best-overall-first per the paper's Table 3; also
#: the deterministic tie-break (equal scores pick the earlier entry).
AUTO_CANDIDATES: Tuple[str, ...] = ("mtf", "cache", "freq", "basic",
                                    "simple")


@dataclass(frozen=True)
class SchemeSelection:
    """What ``--scheme=auto`` decided, and why.

    ``scores`` holds every candidate's predicted reference-stream
    bytes (compressed when the archive is); ``options`` is the
    resolved :class:`PackOptions` — concrete scheme, canonical variant
    flags, ``record_scheme=True`` — the archive is then packed with.
    """

    chosen: str
    options: PackOptions
    scores: Dict[str, int] = field(default_factory=dict)
    #: Total reference visits replayed (trace length).
    references: int = 0
    classes: int = 0
    #: The trace fraction scoring replayed (``options.auto_sample``).
    sample: float = 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "chosen": self.chosen,
            "scores": dict(self.scores),
            "references": self.references,
            "classes": self.classes,
            "sample": self.sample,
        }


def candidate_options(options: PackOptions,
                      scheme: str) -> PackOptions:
    """``options`` resolved to one concrete candidate scheme.

    Variant flags are canonicalized through
    :func:`repro.pack.wire.scheme_variant` so the resolved options
    always have a header tag (non-mtf schemes ignore the flags on the
    wire; recording them as ``False`` keeps one tag per distinct
    format).
    """
    scheme, use_context, transients = wire.scheme_variant(
        scheme, options.use_context, options.transients)
    return dataclasses.replace(
        options, scheme=scheme, use_context=use_context,
        transients=transients, record_scheme=True)


def _replay_coders(options: PackOptions, scheme: str,
                   counts: Dict[str, Dict]) -> Dict[str, object]:
    """Fresh coders for one candidate, frequency-fed and preloaded
    exactly as the real encode pass would build them."""
    resolved = candidate_options(options, scheme)
    coders = {}
    for index, space in enumerate(sorted(wire.SPACES)):
        coders[space] = make_coder(
            resolved.scheme, use_context=resolved.use_context,
            transients=resolved.transients,
            seed=resolved.seed + index)
    if options.preload:
        from .preload import preload_coders

        preload_coders(coders, ir.Interner())
    for space, coder in coders.items():
        if coder.needs_frequencies:
            coder.set_frequencies(counts[space])
    return coders


#: Fixed seed for the sampled-scoring keep mask; XORed with the trace
#: length so distinct archives draw distinct (but reproducible) masks.
_SAMPLE_SEED = 0x5EED


def _sample_trace(trace: List[codec_core.TraceEvent],
                  rate: float) -> List[codec_core.TraceEvent]:
    """A seeded, deterministic subsample of the reference trace.

    One mask is drawn and every candidate replays the same events, so
    sampling shifts all scores together instead of adding per-scheme
    noise.  At least one event is always kept (a zero-length replay
    would make every candidate score identically).
    """
    rng = random.Random(_SAMPLE_SEED ^ len(trace))
    sampled = [event for event in trace if rng.random() < rate]
    return sampled or trace[:1]


def score_schemes(archive: ir.Archive, options: PackOptions,
                  candidates: Tuple[str, ...] = AUTO_CANDIDATES
                  ) -> Tuple[Dict[str, int], int]:
    """Predicted reference-stream bytes per candidate scheme.

    Returns ``(scores, reference_count)``.  One interpreted counting
    pass records the trace; each candidate then replays it through its
    own coders.  Scores are the summed per-stream zlib sizes of the
    reference streams (raw sizes when ``options.compress`` is off) —
    the only streams the scheme changes.
    """
    trace: List[codec_core.TraceEvent] = []
    seen = {space: set() for space in wire.SPACES}
    if options.preload:
        from .preload import preload_objects

        for space, values in preload_objects(ir.Interner()).items():
            seen[space].update(values)
    counts = codec_core.count_references(
        archive, options, seen=seen, trace=trace)
    full_length = len(trace)
    if options.auto_sample < 1.0:
        trace = _sample_trace(trace, options.auto_sample)
    scores: Dict[str, int] = {}
    for scheme in candidates:
        coders = _replay_coders(options, scheme, counts)
        streams = StreamSet()
        ref_streams = {space: streams.stream(stream_name)
                       for space, stream_name in wire.SPACES.items()}
        for space, kind, stack_context, key in trace:
            coders[space].encode(ref_streams[space],
                                 (kind, stack_context), key)
        if options.compress:
            scores[scheme] = sum(
                streams.compressed_sizes(options.zlib_level).values())
        else:
            scores[scheme] = sum(streams.raw_sizes().values())
    return scores, full_length


def select_scheme(archive: ir.Archive,
                  options: PackOptions,
                  candidates: Tuple[str, ...] = AUTO_CANDIDATES
                  ) -> SchemeSelection:
    """Resolve ``scheme="auto"`` for one archive.

    Deterministic: the trace, the replay, and the tie-break (earlier
    entry in ``candidates`` wins equal scores) depend only on the
    archive and the options, so concurrent workers pick identical
    schemes and produce byte-identical packs.
    """
    with observe.current().span("select", classes=len(archive.classes)):
        scores, references = score_schemes(archive, options, candidates)
        chosen = min(candidates, key=lambda s: (scores[s],
                                                candidates.index(s)))
    metrics = observe.current().metrics
    if metrics is not None:
        metrics.count(f"pack.scheme_auto.chosen.{chosen}")
        for scheme, score in scores.items():
            metrics.tally("pack.scheme_auto.scores", scheme, score)
    return SchemeSelection(
        chosen=chosen,
        options=candidate_options(options, chosen),
        scores=scores,
        references=references,
        classes=len(archive.classes),
        sample=options.auto_sample)


def resolve_options(archive: ir.Archive,
                    options: Optional[PackOptions]
                    ) -> Tuple[PackOptions, Optional[SchemeSelection]]:
    """``(concrete options, selection)`` for one archive; selection is
    ``None`` unless ``options.scheme`` was ``auto``."""
    options = (options or PackOptions()).validate()
    if options.scheme != AUTO_SCHEME:
        return options, None
    selection = select_scheme(archive, options)
    return selection.options, selection
