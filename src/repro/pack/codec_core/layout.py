"""Canonical instruction sizes for IR instructions.

The codec driver tracks byte offsets while walking a method's
instructions in every mode (offsets feed the stack-state machine and
branch-delta coding).  Sizes depend only on decoded operand values, so
all modes compute identical layouts.
"""

from __future__ import annotations

from ...classfile.opcodes import OPCODES, OperandKind as K
from ...ir.model import IRInstruction


def ir_instruction_size(instruction: IRInstruction, offset: int) -> int:
    """Byte size of the canonical encoding of ``instruction`` when it
    starts at ``offset``."""
    spec = OPCODES[instruction.opcode]
    if spec.is_switch:
        padding = (4 - (offset + 1) % 4) % 4
        if instruction.switch_low is not None:
            return 1 + padding + 12 + 4 * len(instruction.switch_pairs)
        return 1 + padding + 8 + 8 * len(instruction.switch_pairs)
    size = 1
    wide = _needs_wide(instruction, spec)
    if wide:
        size += 1
    for kind in spec.operands:
        if kind == K.LOCAL or kind == K.IINC_DELTA:
            size += 2 if wide else 1
        elif kind in (K.SBYTE, K.ATYPE, K.DIMS, K.COUNT, K.ZERO, K.CP_LDC):
            size += 1
        elif kind in (K.SSHORT, K.BRANCH2, K.CP_LDC_W, K.CP_LDC2_W,
                      K.CP_FIELD, K.CP_METHOD, K.CP_IMETHOD, K.CP_CLASS):
            size += 2
        elif kind == K.BRANCH4:
            size += 4
        else:  # pragma: no cover - exhaustive over kinds
            raise ValueError(f"unhandled operand kind {kind}")
    return size


def _needs_wide(instruction: IRInstruction, spec) -> bool:
    if K.LOCAL not in spec.operands:
        return False
    if instruction.local is not None and instruction.local > 0xFF:
        return True
    if spec.mnemonic == "iinc" and instruction.immediate is not None and \
            not -128 <= instruction.immediate <= 127:
        return True
    return False
