"""Wire-format version registry.

The version byte in every archive header selects a :class:`WireSpec`:
the codec-spec table (top-level archive codec plus the object-space →
stream map) that defines that version of the format.  Bumping
:data:`repro.pack.wire.VERSION` means registering a new spec here, not
forking the compressor and decompressor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

from ...errors import UnpackError
from .. import wire
from . import archive as archive_mod


#: Container kinds a version byte can select.  ``archive`` is a full
#: packed archive; ``delta`` is the incremental container produced by
#: :mod:`repro.delta` (base-relative, applied with ``repro patch``).
CONTAINER_ARCHIVE = "archive"
CONTAINER_DELTA = "delta"


@dataclass(frozen=True)
class WireSpec:
    """Everything version-dependent about the wire format."""

    version: int
    #: Object spaces: coder name -> reference-index stream.
    spaces: Mapping[str, str]
    #: The top-level archive codec (runs under any driver mode).
    archive: Callable
    #: Which container this version byte labels (archive | delta).
    container: str = CONTAINER_ARCHIVE


SPECS: Dict[int, WireSpec] = {
    1: WireSpec(version=1, spaces=wire.SPACES,
                archive=archive_mod.archive),
    # The delta container shares the archive's class codec (its
    # changed-class payload is a codec-core suffix) but is not a
    # standalone archive: Decompressor refuses it, repro.delta owns it.
    wire.DELTA_VERSION: WireSpec(
        version=wire.DELTA_VERSION, spaces=wire.SPACES,
        archive=archive_mod.archive, container=CONTAINER_DELTA),
}


def current_spec() -> WireSpec:
    """The spec written by this build (``wire.VERSION``)."""
    return SPECS[wire.VERSION]


def spec_for_version(version: int) -> WireSpec:
    """Look up a header's version byte; :class:`UnpackError` when this
    build cannot read it."""
    spec = SPECS.get(version)
    if spec is None:
        raise UnpackError(f"unsupported version {version}")
    return spec


# Compile every registered spec once, at registry-import time, so the
# compiled backend (PackOptions.codec_backend="compiled") dispatches to
# prebuilt closures instead of compiling on first use.  Specs the
# compiler cannot prove it matches stay interpreted automatically.
from . import compile as _compile  # noqa: E402 — registry must exist first

_compile.warm(SPECS.values())
