"""Dual-mode codec core for the packed wire format.

Every archive construct — class, member, attribute, instruction
operand, string — is described exactly once, as a codec spec
(:mod:`~repro.pack.codec_core.spec` combinators over the constructs in
:mod:`~repro.pack.codec_core.constructs`,
:mod:`~repro.pack.codec_core.instructions`, and
:mod:`~repro.pack.codec_core.archive`).  One driver
(:mod:`~repro.pack.codec_core.driver`) runs the spec in three modes:

* **count** — :func:`count_references` tallies reference frequencies
  for the two-pass schemes;
* **encode** — :func:`encode_archive` writes the streams;
* **decode** — :func:`decode_archive` reconstructs the IR.

Because all three modes execute the same spec, the encoder and decoder
traversals — and with them the reference-coder state machines the
paper's format depends on — agree by construction.
:class:`~repro.pack.codec_core.registry.WireSpec` keys the spec table
off the header's version byte.

Two execution backends run the spec
(``PackOptions.codec_backend``):

* **interpreted** — the reference drivers below walk the spec
  combinators value by value;
* **compiled** (the default) — :mod:`~repro.pack.codec_core.compile`
  emits specialized closures per registered spec at registry-import
  time, byte-identical to the interpreted path but several times
  faster.  Probe-carrying calls (the traversal-identity tests)
  always run interpreted — probes hook the spec walk itself.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set, Tuple

from ...coding.streams import SizingStreamSet, StreamReader, StreamSet
from ...ir import model as ir
from ...observe import recorder as observe
from .. import wire
from ..options import PackOptions
from . import archive as archive_mod
from .archive import class_definition
from .attribution import SizeAttribution
from .compile import (
    CompiledCodec,
    compiled_codec,
    make_fast_mtf_coder,
    warm,
)
from .driver import (
    CountDriver,
    DecodeDriver,
    EncodeDriver,
    Probe,
    TraceEvent,
    make_space_coders,
)
from .layout import ir_instruction_size
from .registry import (
    CONTAINER_ARCHIVE,
    CONTAINER_DELTA,
    WireSpec,
    current_spec,
    spec_for_version,
)
from .spec import DECODE

__all__ = [
    "CONTAINER_ARCHIVE",
    "CONTAINER_DELTA",
    "CompiledCodec",
    "CountDriver",
    "DECODE",
    "DecodeDriver",
    "EncodeDriver",
    "Probe",
    "SizeAttribution",
    "TraceEvent",
    "WireSpec",
    "class_definition",
    "compiled_codec",
    "count_references",
    "current_spec",
    "decode_archive",
    "encode_archive",
    "ir_instruction_size",
    "iter_decode_archive",
    "make_fast_mtf_coder",
    "make_space_coders",
    "spec_for_version",
    "warm",
]


def _compiled_for(options: PackOptions, probe,
                  spec: WireSpec) -> Optional["CompiledCodec"]:
    """The compiled codec to dispatch to, or None for the interpreted
    reference path (probe requests always interpret: probes observe
    the spec walk, which the compiled closures skip entirely)."""
    if probe is not None:
        return None
    if getattr(options, "codec_backend", "interpreted") != "compiled":
        return None
    return compiled_codec(spec)


def count_references(
        archive: ir.Archive, options: PackOptions, coders=None,
        seen: Optional[Dict[str, Set]] = None,
        probe: Optional[Probe] = None,
        trace=None,
        spec: Optional[WireSpec] = None,
        layout=None,
) -> Dict[str, Dict[Tuple[str, Hashable], int]]:
    """Counting pass: per-space ``(kind, key)`` reference totals.

    When ``coders`` is given, schemes that need the totals
    (freq/cache) receive them before the pass returns.  ``seen``
    pre-seeds the first-occurrence sets (preloaded objects must not
    have their contents re-counted).  A ``trace`` list records every
    reference visit (see :data:`~repro.pack.codec_core.driver.
    TraceEvent`); like probes, it hooks the spec walk itself, so
    trace-carrying calls always run interpreted.

    With a ``layout`` (an :class:`~repro.pack.spool.ArchiveLayout`),
    the pass additionally prices the upcoming encode: a sizing
    sub-pass replays the encode walk against a byte-counting port and
    records exact per-class per-stream offsets — the spill planner's
    input (see :mod:`repro.pack.spool`).
    """
    spec = spec or current_spec()
    codec = _compiled_for(options, probe, spec) if trace is None else None
    if codec is not None:
        counts = codec.count_references(archive, options, coders=coders,
                                        seen=seen)
        if layout is not None:
            _measure_layout(layout, archive, options, counts, spec)
        return counts
    drv = CountDriver(options, seen=seen, probe=probe, trace=trace)
    with observe.current().span("count", classes=len(archive.classes)):
        spec.archive(drv, archive)
        if coders is not None:
            for space, coder in coders.items():
                if coder.needs_frequencies:
                    coder.set_frequencies(drv.counts[space])
    if layout is not None:
        _measure_layout(layout, archive, options, drv.counts, spec)
    return drv.counts


def _measure_layout(layout, archive: ir.Archive, options: PackOptions,
                    counts, spec: WireSpec) -> None:
    """Size the upcoming encode without emitting a byte.

    Exact per-class offsets cannot come from pure counting — reference
    bytes depend on coder state, and freq/cache coders need the
    frequencies that are the count's own output — so this replays the
    encode walk against a :class:`~repro.coding.streams.SizingStreamSet`
    with *fresh* coders (encoding mutates MTF queues; the real coders
    must reach the encode pass untouched).  Runs under
    :func:`~repro.observe.recorder.silenced` so the dry run neither
    pollutes the trace nor double-counts metrics.
    """
    with observe.silenced():
        coders = make_space_coders(options)
        if options.preload:
            from ..preload import preload_coders

            preload_coders(coders, ir.Interner())
        for space, coder in coders.items():
            if coder.needs_frequencies:
                coder.set_frequencies(counts[space])
        sizing = SizingStreamSet()
        codec = _compiled_for(options, None, spec)
        if codec is not None:
            codec.measure_archive(archive, options, coders, sizing,
                                  layout)
        else:
            drv = EncodeDriver(options, coders, sizing, layout=layout)
            spec.archive(drv, archive)
        layout.finish(sizing.raw_sizes())


def encode_archive(archive: ir.Archive, options: PackOptions, coders,
                   streams: StreamSet, metrics=None,
                   probe: Optional[Probe] = None,
                   spec: Optional[WireSpec] = None) -> None:
    """Encoding pass: run the spec forward onto ``streams``."""
    spec = spec or current_spec()
    codec = _compiled_for(options, probe, spec)
    if codec is not None:
        codec.encode_archive(archive, options, coders, streams,
                             metrics=metrics)
        return
    drv = EncodeDriver(options, coders, streams, metrics=metrics,
                       probe=probe)
    with observe.current().span("encode"):
        spec.archive(drv, archive)


def decode_archive(options: PackOptions, coders,
                   reader: StreamReader, interner,
                   probe: Optional[Probe] = None,
                   spec: Optional[WireSpec] = None) -> ir.Archive:
    """Decoding pass: run the spec in reverse off ``reader``."""
    spec = spec or current_spec()
    codec = _compiled_for(options, probe, spec)
    if codec is not None:
        return codec.decode_archive(options, coders, reader, interner)
    drv = DecodeDriver(options, coders, reader, interner, probe=probe)
    with observe.current().span("decode"):
        return spec.archive(drv, DECODE)


def _iter_decode_interpreted(options: PackOptions, coders,
                             reader: StreamReader, interner):
    drv = DecodeDriver(options, coders, reader, interner)
    count = drv.uint(wire.META, DECODE)
    for _ in range(count):
        yield class_definition(drv, DECODE)


def iter_decode_archive(options: PackOptions, coders,
                        reader: StreamReader, interner,
                        spec: Optional[WireSpec] = None):
    """Decode one class at a time, in the paper's §11 load order.

    Returns an iterator of :class:`~repro.ir.model.ClassDefinition`;
    the whole archive is never materialized.  Span-free by design (a
    span held open across yields would corrupt the trace tree) — the
    consumer owns phase accounting.  A future spec whose archive walk
    this module doesn't know falls back to a full decode behind an
    iterator, trading memory for correctness.
    """
    spec = spec or current_spec()
    codec = _compiled_for(options, None, spec)
    if codec is not None:
        return codec.iter_decode(options, coders, reader, interner)
    if spec.archive is archive_mod.archive:
        return _iter_decode_interpreted(options, coders, reader,
                                        interner)
    return iter(decode_archive(options, coders, reader, interner,
                               spec=spec).classes)
