"""The single size-attribution source for packed archives.

Every consumer of "how big is each stream" — ``repro stats``, the
Table 3/5/6 benchmarks, and the observe tallies — reads from one
:class:`SizeAttribution` over the encoder's stream set, so the numbers
can never disagree.  Per-stream compressed sizes use each stream's
*independent* zlib size (the archive itself shares one zlib context),
computed once and cached.
"""

from __future__ import annotations

from typing import Dict

from ...coding.streams import StreamSet
from ..options import PackOptions
from ..stats import PackStats, collect_stats


class SizeAttribution:
    """Per-stream and per-category byte accounting for one encode."""

    def __init__(self, streams: StreamSet, options: PackOptions):
        self._streams = streams
        self._options = options
        self._compressed: Dict[str, int] = None

    def raw_sizes(self) -> Dict[str, int]:
        """Uncompressed bytes per stream."""
        return self._streams.raw_sizes()

    def compressed_sizes(self) -> Dict[str, int]:
        """Independent zlib bytes per stream (cached — zlib runs
        once)."""
        if self._compressed is None:
            self._compressed = self._streams.compressed_sizes(
                self._options.zlib_level)
        return dict(self._compressed)

    def stream_sizes(self, compressed: bool = True) -> Dict[str, int]:
        """The attribution consumers report: compressed when the
        archive is compressed, raw otherwise."""
        if compressed and self._options.compress:
            return self.compressed_sizes()
        return self.raw_sizes()

    def stats(self) -> PackStats:
        """Table 6 categories over :meth:`stream_sizes`."""
        return collect_stats(self.stream_sizes())

    def emit_metrics(self, metrics, packed_size: int) -> None:
        """Publish the attribution as observe tallies."""
        for name, size in self.raw_sizes().items():
            metrics.tally("stream.raw_bytes", name, size)
        if self._options.compress:
            for name, size in self.compressed_sizes().items():
                metrics.tally("stream.zlib_bytes", name, size)
        metrics.tally("archive", "packed_bytes", packed_size)
