"""Codec combinators: each wire construct is described exactly once.

A *spec node* states the wire shape of one construct — which stream
its pieces travel on and in what order — without committing to a
direction.  A driver (:mod:`repro.pack.codec_core.driver`) runs the
spec in one of three modes:

* **count** — walk an existing object, record reference frequencies,
  write nothing;
* **encode** — walk an existing object, write every piece;
* **decode** — read every piece and construct the object.

Direction is expressed through one convention: ``node.run(drv, value)``
receives the object being encoded, or the :data:`DECODE` sentinel when
the node must construct it from the driver's streams, and always
returns the (existing or newly built) value.  Because count, encode,
and decode all execute the *same* node sequence, the encoder and
decoder cannot drift apart — the lockstep invariant the paper's format
depends on (Sections 5 and 7) holds by construction instead of by
hand-mirrored code.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Optional, Tuple


class _Decode:
    """Sentinel: "construct this value from the streams"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DECODE>"


DECODE = _Decode()

#: The context used by every reference site outside method operands.
NO_CONTEXT = ("-", "-")


class Node:
    """Base class for spec nodes."""

    __slots__ = ()

    def run(self, drv, value):
        """Encode ``value`` (or decode, when ``value is DECODE``)."""
        raise NotImplementedError


def field(name: str, node: "Node") -> Tuple[str, "Node"]:
    """A named member of a :class:`seq` — read via ``getattr`` when
    encoding, collected into the build dict when decoding."""
    return (name, node)


class uvarint(Node):
    """An unsigned varint on the named stream."""

    __slots__ = ("stream",)

    def __init__(self, stream: str):
        self.stream = stream

    def run(self, drv, value):
        return drv.uint(self.stream, value)


class svarint(Node):
    """A zigzag-signed varint on the named stream."""

    __slots__ = ("stream",)

    def __init__(self, stream: str):
        self.stream = stream

    def run(self, drv, value):
        return drv.sint(self.stream, value)


class u8(Node):
    """A single byte on the named stream."""

    __slots__ = ("stream",)

    def __init__(self, stream: str):
        self.stream = stream

    def run(self, drv, value):
        return drv.u8(self.stream, value)


class fixed(Node):
    """A big-endian fixed-width unsigned integer (``struct`` format
    ``">I"`` or ``">Q"``) stored raw on the named stream."""

    __slots__ = ("stream", "fmt", "size")

    def __init__(self, stream: str, fmt: str):
        self.stream = stream
        self.fmt = fmt
        self.size = struct.calcsize(fmt)

    def run(self, drv, value):
        if value is DECODE:
            return struct.unpack(self.fmt,
                                 drv.raw(self.stream, self.size, None))[0]
        drv.raw(self.stream, self.size, struct.pack(self.fmt, value))
        return value


class text(Node):
    """A modified-UTF-8 string: byte length on ``len_stream``,
    characters on ``chars_stream`` (the factored-string layout of
    Section 4)."""

    __slots__ = ("len_stream", "chars_stream")

    def __init__(self, len_stream: str, chars_stream: str):
        self.len_stream = len_stream
        self.chars_stream = chars_stream

    def run(self, drv, value):
        return drv.text(self.len_stream, self.chars_stream, value)


class seq(Node):
    """Named sub-codecs executed in order; decode feeds the collected
    parts to ``build(drv, parts)``.

    Encoding reads each part with ``getattr(value, name)``; decoding
    accumulates ``parts[name]``.  ``build`` receives the driver so it
    can intern the constructed object.
    """

    __slots__ = ("build", "fields")

    def __init__(self, build: Optional[Callable], *fields):
        self.build = build
        self.fields = fields

    def run(self, drv, value):
        if value is DECODE:
            parts = {}
            for name, node in self.fields:
                parts[name] = node.run(drv, DECODE)
            return self.build(drv, parts) if self.build else parts
        for name, node in self.fields:
            node.run(drv, getattr(value, name))
        return value


class cond(Node):
    """A sub-codec present only when ``predicate(parts)`` holds.

    The predicate sees the *parts already processed* of the enclosing
    construct (a dict), so both directions evaluate the identical
    expression — typically an access-flag test.  Used via
    :class:`seq`-like constructs that thread their parts dict through
    :meth:`run_in`; absent values surface as ``default``.
    """

    __slots__ = ("predicate", "node", "default")

    def __init__(self, predicate: Callable[[dict], Any], node: Node,
                 default=None):
        self.predicate = predicate
        self.node = node
        self.default = default

    def run_in(self, drv, parts: dict, value):
        if not self.predicate(parts):
            return self.default
        return self.node.run(drv, value)

    def run(self, drv, value):  # pragma: no cover - cond needs parts
        raise TypeError("cond must be run through run_in() with the "
                        "enclosing construct's parts")


class repeat(Node):
    """A uvarint element count on ``count_stream`` followed by that
    many items."""

    __slots__ = ("count_stream", "item")

    def __init__(self, count_stream: str, item: Node):
        self.count_stream = count_stream
        self.item = item

    def run(self, drv, value):
        if value is DECODE:
            count = drv.uint(self.count_stream, DECODE)
            return [self.item.run(drv, DECODE) for _ in range(count)]
        drv.uint(self.count_stream, len(value))
        for item in value:
            self.item.run(drv, item)
        return value


class delta(Node):
    """A signed varint stored relative to a base supplied at run time
    (branch targets relative to the instruction offset)."""

    __slots__ = ("stream",)

    def __init__(self, stream: str):
        self.stream = stream

    def run_from(self, drv, base: int, value):
        if value is DECODE:
            return base + drv.sint(self.stream, DECODE)
        drv.sint(self.stream, value - base)
        return value

    def run(self, drv, value):  # pragma: no cover - delta needs a base
        raise TypeError("delta must be run through run_from() with a "
                        "base offset")


class ref(Node):
    """A shared object: a reference index through the space's coder,
    with contents serialized only on first occurrence.

    ``contents`` is the spec of the object's serialized form;
    ``build(drv, contents)`` constructs (and interns) the canonical
    object when decoding.  ``kind`` selects the coder pool; reference
    sites with dynamic kinds or stack contexts (method/field operands)
    go through :meth:`run_as`.
    """

    __slots__ = ("space", "kind", "contents", "build")

    def __init__(self, space: str, kind: str, contents: Node,
                 build: Callable):
        self.space = space
        self.kind = kind
        self.contents = contents
        self.build = build

    def run(self, drv, value):
        return self.run_as(drv, value, self.kind, NO_CONTEXT)

    def run_as(self, drv, value, kind: str, stack_context):
        is_new, found = drv.ref(self.space, kind, stack_context, value)
        if not is_new:
            return found if value is DECODE else value
        if value is DECODE:
            contents = self.contents.run(drv, DECODE)
            obj = self.build(drv, contents)
            drv.register(self.space, kind, stack_context, obj)
            return obj
        self.contents.run(drv, value)
        return value
