"""Bytecode codec: exception handlers, instructions, method bodies.

One definition per construct, executed by all three drivers.  The
genuinely directional pieces — stack-state collapse vs. expand,
pseudo-LDC substitution, offset-relative branch deltas — live inside
these shared functions as explicit ``decoding`` branches, so each wire
field still appears exactly once.

Operand routing comes from the mode-independent layout table
(:data:`repro.bytecode_codec.operands.OPERAND_CHANNELS`); the channel
→ stream mapping here is the wire-format half of that contract.
"""

from __future__ import annotations

from ...bytecode_codec.apply import OPCODES_BY_NAME, \
    apply_instruction_state
from ...bytecode_codec.operands import OPERAND_CHANNELS
from ...bytecode_codec.stack_state import StackTracker
from ...classfile.opcodes import OPCODES
from ...ir import model as ir
from .. import wire
from .constructs import CLASS_REF, CONST, FIELD_REF, METHOD_REF, TYPE_REF
from .layout import ir_instruction_size
from .spec import DECODE, NO_CONTEXT, Node, delta

BRANCH = delta(wire.CODE_BRANCHES)


class _HandlerNode(Node):
    """An exception-table entry; the covered range is stored as
    (start, length)."""

    __slots__ = ()

    def run(self, drv, value):
        decoding = value is DECODE
        start = drv.uint(wire.CODE_EXC,
                         DECODE if decoding else value.start_pc)
        length = drv.uint(
            wire.CODE_EXC,
            DECODE if decoding else value.end_pc - value.start_pc)
        handler_pc = drv.uint(wire.CODE_EXC,
                              DECODE if decoding else value.handler_pc)
        catch = None
        has_catch = drv.u8(
            wire.CODE_EXC,
            DECODE if decoding else (0 if value.catch_type is None else 1))
        if has_catch:
            catch = CLASS_REF.run(
                drv, DECODE if decoding else value.catch_type)
        if decoding:
            return ir.IRExceptionHandler(start, start + length,
                                         handler_pc, catch)
        return value


HANDLER = _HandlerNode()


def _switch(drv, ins, spec, offset, decoding):
    """tableswitch / lookupswitch: default and targets as branch
    deltas, low/count/matches on the int stream."""
    ins.switch_default = BRANCH.run_from(
        drv, offset, DECODE if decoding else ins.switch_default)
    if spec.mnemonic == "tableswitch":
        low = drv.sint(wire.CODE_INTS,
                       DECODE if decoding else ins.switch_low)
        count = drv.uint(wire.CODE_INTS,
                         DECODE if decoding else len(ins.switch_pairs))
        ins.switch_low = low
        ins.switch_pairs = [
            (low + i if decoding else ins.switch_pairs[i][0],
             BRANCH.run_from(
                 drv, offset,
                 DECODE if decoding else ins.switch_pairs[i][1]))
            for i in range(count)]
    else:
        count = drv.uint(wire.CODE_INTS,
                         DECODE if decoding else len(ins.switch_pairs))
        pairs = []
        for i in range(count):
            match = drv.sint(
                wire.CODE_INTS,
                DECODE if decoding else ins.switch_pairs[i][0])
            target = BRANCH.run_from(
                drv, offset,
                DECODE if decoding else ins.switch_pairs[i][1])
            pairs.append((match, target))
        ins.switch_pairs = pairs
    return ins


def instruction(drv, tracker: StackTracker, offset: int,
                use_state: bool, value):
    """One instruction: the (pseudo/collapsed) opcode byte, then its
    operands routed to their streams."""
    decoding = value is DECODE
    if decoding:
        opcode_byte = drv.u8(wire.CODE_OPCODES, DECODE)
        pseudo = wire.PSEUDO_LDC_REVERSE.get(opcode_byte)
        if pseudo is not None:
            const_kind, wide_const = pseudo
            const = CONST.run_as(drv, DECODE, const_kind)
            if const_kind in ("long", "double"):
                opcode = wire.LDC2_W_OPCODE
            elif wide_const:
                opcode = wire.LDC_W_OPCODE
            else:
                opcode = wire.LDC_OPCODE
            return ir.IRInstruction(opcode, const=const,
                                    wide_const=wide_const)
        spec = OPCODES.get(opcode_byte)
        if spec is None:
            drv.fail(f"bad opcode byte {opcode_byte:#x}")
        mnemonic = tracker.expand(spec.mnemonic) if use_state \
            else spec.mnemonic
        ins = ir.IRInstruction(OPCODES_BY_NAME[mnemonic])
        spec = OPCODES[ins.opcode]
    else:
        ins = value
        spec = OPCODES[ins.opcode]
        mnemonic = spec.mnemonic
        drv.bump("bytecode.instructions")
        if ins.const is not None:
            drv.u8(wire.CODE_OPCODES,
                   wire.PSEUDO_LDC[(ins.const.kind, ins.wide_const)])
            drv.bump("bytecode.pseudo_ldc")
        else:
            emitted = tracker.collapse(mnemonic) if use_state \
                else mnemonic
            drv.u8(wire.CODE_OPCODES, OPCODES_BY_NAME[emitted])
            if emitted != mnemonic:
                drv.bump("bytecode.collapsed")
    if spec.is_switch:
        return _switch(drv, ins, spec, offset, decoding)
    for kind in spec.operands:
        attr, channel = OPERAND_CHANNELS[kind]
        if channel == "derived":
            continue  # regenerated from the descriptor
        if channel == "reg":
            setattr(ins, attr, drv.uint(
                wire.CODE_REGS,
                DECODE if decoding else getattr(ins, attr)))
        elif channel == "int":
            setattr(ins, attr, drv.sint(
                wire.CODE_INTS,
                DECODE if decoding else getattr(ins, attr)))
        elif channel == "uint":
            setattr(ins, attr, drv.uint(
                wire.CODE_INTS,
                DECODE if decoding else getattr(ins, attr)))
        elif channel == "branch":
            ins.target = BRANCH.run_from(
                drv, offset, DECODE if decoding else ins.target)
        elif channel == "const":
            if decoding:
                # Valid archives never carry a raw LDC opcode — the
                # encoder always substitutes a pseudo-opcode.
                drv.fail(f"unhandled operand kind {kind}")
            CONST.run_as(drv, ins.const, None)
        elif channel == "field":
            ins.field_ref = FIELD_REF.run_as(
                drv, DECODE if decoding else ins.field_ref,
                wire.FIELD_KINDS[ins.opcode], NO_CONTEXT)
        elif channel == "method":
            context = tracker.top_categories() if use_state \
                else NO_CONTEXT
            ins.method_ref = METHOD_REF.run_as(
                drv, DECODE if decoding else ins.method_ref,
                wire.INVOKE_KINDS[ins.opcode], context)
        elif channel == "class":
            is_type = drv.u8(
                wire.SHAPE,
                DECODE if decoding
                else (1 if ins.type_ref is not None else 0))
            if is_type:
                ins.type_ref = TYPE_REF.run(
                    drv, DECODE if decoding else ins.type_ref)
            else:
                ins.class_ref = CLASS_REF.run(
                    drv, DECODE if decoding else ins.class_ref)
        else:  # pragma: no cover - exhaustive over channels
            drv.fail(f"unhandled operand kind {kind}")
    return ins


def code_body(drv, value):
    """A Code attribute: frame sizes and counts on META, handlers,
    then the instruction walk with shared offset/stack-state
    bookkeeping."""
    decoding = value is DECODE
    max_stack = drv.uint(wire.META,
                         DECODE if decoding else value.max_stack)
    max_locals = drv.uint(wire.META,
                          DECODE if decoding else value.max_locals)
    n_instructions = drv.uint(
        wire.META, DECODE if decoding else len(value.instructions))
    n_handlers = drv.uint(wire.META,
                          DECODE if decoding else len(value.handlers))
    handlers = [HANDLER.run(drv,
                            DECODE if decoding else value.handlers[i])
                for i in range(n_handlers)]
    tracker = StackTracker()
    use_state = drv.options.stack_state
    instructions = []
    offset = 0
    for i in range(n_instructions):
        if use_state:
            tracker.at_instruction(offset)
        ins = instruction(drv, tracker, offset, use_state,
                          DECODE if decoding else value.instructions[i])
        if use_state:
            apply_instruction_state(tracker, ins, offset)
        offset += ir_instruction_size(ins, offset)
        instructions.append(ins)
    if decoding:
        return ir.IRCode(max_stack, max_locals, instructions, handlers)
    return value
