"""Shared-object codec specs: names, classes, types, members, strings.

Each construct in the archive's shared-object graph is described here
exactly once, as a combinator tree from
:mod:`repro.pack.codec_core.spec`.  The count, encode, and decode
drivers all execute these same trees, so the traversal — and with it
the reference-coder state — cannot diverge between directions.

Stream and pool assignments mirror the paper's factored layout
(Sections 4 and 5): every kind of text on its own length/character
stream pair, every object space behind its own reference coder.
"""

from __future__ import annotations

from ...ir import model as ir
from .. import wire
from .spec import DECODE, Node, field, fixed, ref, repeat, seq, text

# -- names ---------------------------------------------------------------

PACKAGE = ref(
    "package", "package",
    seq(None, field("name", text(wire.STR_PKG_LEN, wire.STR_PKG_CHARS))),
    lambda drv, parts: drv.interner.package(parts["name"]))

SIMPLE = ref(
    "simple", "simple",
    seq(None, field("name", text(wire.STR_CLS_LEN, wire.STR_CLS_CHARS))),
    lambda drv, parts: drv.interner.simple(parts["name"]))

METHOD_NAME = ref(
    "methodname", "methodname",
    seq(None, field("name", text(wire.STR_MNAME_LEN,
                                 wire.STR_MNAME_CHARS))),
    lambda drv, parts: drv.interner.method_name(parts["name"]))

FIELD_NAME = ref(
    "fieldname", "fieldname",
    seq(None, field("name", text(wire.STR_FNAME_LEN,
                                 wire.STR_FNAME_CHARS))),
    lambda drv, parts: drv.interner.field_name(parts["name"]))

# -- classes and types ---------------------------------------------------

CLASS_REF = ref(
    "class", "class",
    seq(None, field("package", PACKAGE), field("simple", SIMPLE)),
    lambda drv, parts: drv.interner.class_ref(
        ir.ClassRef(parts["package"], parts["simple"]).internal_name))


class _TypeRefNode(Node):
    """A type: dimension count, then a class reference or a primitive
    tag byte.  Not reference-pooled — the class inside is."""

    __slots__ = ()

    def run(self, drv, value):
        if value is DECODE:
            dims = drv.uint(wire.SHAPE, DECODE)
            tag = drv.u8(wire.SHAPE, DECODE)
            if tag == 0:
                base = CLASS_REF.run(drv, DECODE)
                descriptor = "[" * dims + f"L{base.internal_name};"
            else:
                descriptor = "[" * dims + ir.PRIMITIVE_CHARS[tag]
            return drv.interner.type_ref(descriptor)
        drv.uint(wire.SHAPE, value.dims)
        if isinstance(value.base, ir.ClassRef):
            drv.u8(wire.SHAPE, 0)
            CLASS_REF.run(drv, value.base)
        else:
            drv.u8(wire.SHAPE, ir.PRIMITIVE_CODES[value.base])
        return value


TYPE_REF = _TypeRefNode()

# -- members -------------------------------------------------------------


def _build_method_ref(drv, parts):
    args = parts["arg_types"]
    descriptor = "(" + "".join(a.descriptor for a in args) + ")" + \
        parts["return_type"].descriptor
    return drv.interner.method_ref(parts["owner"].internal_name,
                                   parts["name"].name, descriptor)


#: Kind and stack context vary per reference site (``method.def``,
#: the invoke kinds, and the collapsed stack context) — call sites go
#: through :meth:`~repro.pack.codec_core.spec.ref.run_as`.
METHOD_REF = ref(
    "method", "method.def",
    seq(None,
        field("owner", CLASS_REF),
        field("name", METHOD_NAME),
        field("return_type", TYPE_REF),
        field("arg_types", repeat(wire.SHAPE, TYPE_REF))),
    _build_method_ref)

FIELD_REF = ref(
    "field", "field.def",
    seq(None,
        field("owner", CLASS_REF),
        field("name", FIELD_NAME),
        field("type", TYPE_REF)),
    lambda drv, parts: drv.interner.field_ref(
        parts["owner"].internal_name, parts["name"].name,
        parts["type"].descriptor))

# -- constants -----------------------------------------------------------

STRING = ref(
    "string", "string",
    text(wire.STR_CONST_LEN, wire.STR_CONST_CHARS),
    lambda drv, value: value)

_F32 = fixed(wire.CONST_FLOAT, ">I")
_F64 = fixed(wire.CONST_DOUBLE, ">Q")


class _ConstNode(Node):
    """A typed constant: primitives by value on their typed stream,
    strings through the string pool.

    The constant's kind never travels here — the encoder takes it from
    the value, the decoder learns it out of band (a pseudo-LDC opcode
    or the enclosing field's descriptor) and supplies it via
    :meth:`run_as`.
    """

    __slots__ = ()

    def run(self, drv, value):
        return self.run_as(drv, value, None)

    def run_as(self, drv, value, kind):
        if value is not DECODE:
            kind = value.kind
        if kind == "int":
            bits = drv.sint(wire.CONST_INT,
                            DECODE if value is DECODE else value.value)
        elif kind == "long":
            bits = drv.sint(wire.CONST_LONG,
                            DECODE if value is DECODE else value.value)
        elif kind == "float":
            bits = _F32.run(drv,
                            DECODE if value is DECODE else value.value)
        elif kind == "double":
            bits = _F64.run(drv,
                            DECODE if value is DECODE else value.value)
        elif kind == "string":
            bits = STRING.run(drv,
                              DECODE if value is DECODE else value.value)
        else:
            drv.fail(f"unknown constant kind {kind}")
        if value is DECODE:
            return ir.ConstValue(kind, bits)
        return value


CONST = _ConstNode()
