"""Compiled codec backend: the spec, specialized into closures.

The interpreted drivers (:mod:`repro.pack.codec_core.driver`) execute
the combinator tree in :mod:`~repro.pack.codec_core.spec` node by
node: every wire field costs a ``Node.run`` dispatch, a
``port.stream(name)`` lookup, and a driver method call.  That is the
reference implementation — obviously correct, trivially lockstep —
but it is also the hot path for every byte of every archive.

This module walks each registered :class:`WireSpec` once (at registry
time, via :func:`warm`) and emits *specialized* encode/decode/count
closures:

* per-opcode **plan table** — operand routing, canonical sizes, and
  stack-effect closures resolved ahead of time instead of per
  instruction;
* **direct buffer writes** — varints appended to stream bytearrays
  through inlined fast paths, no driver or stream-lookup layers;
* **whole-stream varint prescan** on decode — every varint-only
  stream is decoded in one pass up front
  (:func:`~repro.coding.varint.decode_uvarints`), so per-value reads
  become list indexing;
* **zero-copy fixed-width decode** — ``struct.Struct.unpack_from``
  straight off the stream buffer;
* a **list-based MTF core** that replaces the indexable skiplist for
  the compiled backend (front-biased reference locality makes a plain
  list faster than the skiplist's node machinery at archive scale).

Byte-identity with the interpreted drivers is the contract: both
backends must produce and consume exactly the same streams (the
lockstep suite in ``tests/test_codec_backend.py`` enforces this across
the scheme matrix and the golden fixtures).  The one permitted
divergence is instrumentation detail: the compiled MTF core has no
skiplist, so ``skiplist.*`` metrics are only emitted by the
interpreted backend.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ...bytecode_codec.apply import OPCODES_BY_NAME
from ...bytecode_codec.operands import OPERAND_CHANNELS
from ...bytecode_codec.stack_state import (
    ARITH_FAMILIES,
    ALOAD_FAMILY,
    ASTORE_FAMILY,
    SECOND,
    SHIFT_FAMILIES,
    StackTracker,
    _MEMBER_TO_FAMILY,
    _Unknown,
    _push_type,
    value_category,
)
from ...classfile import mutf8
from ...classfile.opcodes import (
    ATYPE_DESCRIPTORS,
    OPCODES,
    OperandKind as K,
)
from ...coding.varint import decode_uvarints, write_uvarint
from ...errors import PackError, UnpackError
from ...ir import model as ir
from ...mtf.queue import NEW, NEW_TRANSIENT, MtfError
from ...observe import recorder as observe
from ...refs.base import PairCoder
from ...refs.schemes import MtfDecoder, MtfEncoder
from .. import wire
from . import archive as archive_mod
from .spec import NO_CONTEXT

__all__ = [
    "CompiledCodec",
    "FastMtfDecoder",
    "FastMtfEncoder",
    "compiled_codec",
    "make_fast_mtf_coder",
    "warm",
]


# ---------------------------------------------------------------------
# Fast MTF core: plain-list move-to-front queues
# ---------------------------------------------------------------------


class _FastMtfCore:
    """Drop-in replacement for :class:`repro.mtf.queue.MtfCoder` backed
    by plain Python lists.

    The skiplist gives O(log n) moves, but reference locality keeps
    MTF positions near the front, where a list's ``index``/``insert``
    (single C-level scans) beat the skiplist's per-node Python work.
    State transitions replicate ``MtfCoder`` exactly — same index
    space, same lazy context seeding, same metrics — so the wire bytes
    are identical.  (Seeds only affect skiplist node heights, so a
    list core has no use for them.)
    """

    __slots__ = ("transients", "_shift", "_queues", "_registry",
                 "_known", "_metrics")

    def __init__(self, transients: bool = False):
        self.transients = transients
        self._shift = 1 if transients else 0
        self._queues: Dict[Hashable, List[Hashable]] = {}
        #: registration order of every non-transient key.
        self._registry: List[Hashable] = []
        self._known: Dict[Hashable, Any] = {}
        self._metrics = observe.current().metrics

    def _queue(self, context: Hashable) -> List[Hashable]:
        queue = self._queues.get(context)
        if queue is None:
            if self._metrics is not None:
                self._metrics.count("mtf.contexts")
                self._metrics.observe("mtf.context_seed_size",
                                      len(self._registry))
            # Seed so the front is the most recently registered object
            # (same state the queue would have had all along).
            queue = self._registry[::-1]
            self._queues[context] = queue
        return queue

    def _register(self, key: Hashable, value: Any) -> None:
        self._registry.append(key)
        self._known[key] = value
        for queue in self._queues.values():
            queue.insert(0, key)

    def knows(self, key: Hashable) -> bool:
        return key in self._known

    def encode(self, context: Hashable, key: Hashable,
               transient: bool = False,
               value: Any = None) -> Tuple[int, bool]:
        queue = self._queue(context)
        if key in self._known:
            position = queue.index(key)
            if position:
                del queue[position]
                queue.insert(0, key)
            return position + 1 + self._shift, False
        if self.transients and transient:
            return NEW_TRANSIENT, True
        self._register(key, value if value is not None else key)
        return NEW, True

    def decode_is_new(self, index: int) -> bool:
        if self.transients:
            return index in (NEW, NEW_TRANSIENT)
        return index == NEW

    def decode_known(self, context: Hashable, index: int) -> Any:
        position = index - 1 - self._shift
        queue = self._queue(context)
        if not 0 <= position < len(queue):
            raise MtfError(
                f"MTF index {index} out of range for queue of size "
                f"{len(queue)}")
        key = queue[position]
        if position:
            del queue[position]
            queue.insert(0, key)
        return self._known[key]

    def decode_new(self, index: int, key: Hashable, value: Any) -> None:
        if self.transients and index == NEW_TRANSIENT:
            return
        self._register(key, value)


class FastMtfEncoder(MtfEncoder):
    """The Section 5 MTF encoder over the list-backed core."""

    def __init__(self, use_context: bool, transients: bool, seed: int = 0):
        super().__init__(use_context=use_context, transients=transients,
                         seed=seed)
        self._coder = _FastMtfCore(transients=transients)


class FastMtfDecoder(MtfDecoder):
    """The matching decoder half over the list-backed core."""

    def __init__(self, use_context: bool, transients: bool, seed: int = 0):
        super().__init__(use_context=use_context, transients=transients,
                         seed=seed)
        self._coder = _FastMtfCore(transients=transients)


def make_fast_mtf_coder(use_context: bool, transients: bool,
                        seed: int = 0) -> PairCoder:
    """A dual-mode MTF coder on the list core (wire-identical to the
    skiplist coder; ``preload`` keeps working through ``_coder``)."""
    return PairCoder(
        FastMtfEncoder(use_context=use_context, transients=transients,
                       seed=seed),
        FastMtfDecoder(use_context=use_context, transients=transients,
                       seed=seed))


# ---------------------------------------------------------------------
# Per-opcode plan table
# ---------------------------------------------------------------------

# Operand routing codes (resolved from OPERAND_CHANNELS at build time).
_OP_REG = 0
_OP_INT = 1
_OP_ATYPE = 2
_OP_DIMS = 3
_OP_BRANCH = 4
_OP_CONST = 5
_OP_FIELD = 6
_OP_METHOD = 7
_OP_CLASS = 8

# Control-flow classes for the stack tracker.
_FLOW_NORMAL = 0   # run the effect; maybe save a forward branch
_FLOW_GOTO = 2     # save the forward branch, then state unknown
_FLOW_KILL = 3     # state unknown (switch/return/athrow/ret/jsr)

_LDC_PUSH = {"int": "I", "float": "F", "long": "J", "double": "D",
             "string": "Ljava/lang/String;"}
_LOAD_PUSH = {"i": "I", "l": "J", "f": "F", "d": "D", "a": "A"}
_ALOAD_ELEM = {"iaload": "I", "laload": "J", "faload": "F",
               "daload": "D", "baload": "I", "caload": "I",
               "saload": "I"}
_CONV_PUSH = {"i": "I", "l": "J", "f": "F", "d": "D", "b": "B",
              "c": "C", "s": "S"}


def _pop(stack: List[str]) -> str:
    """`StackTracker._pop_value` for effect closures: pop one value,
    skipping a wide value's second-half slot."""
    if not stack:
        raise _Unknown("underflow")
    top = stack.pop()
    if top == SECOND:
        if not stack:
            raise _Unknown("underflow")
        return stack.pop()
    return top


def _pop_slot(stack: List[str]) -> str:
    if not stack:
        raise _Unknown("underflow")
    return stack.pop()


def _class_descriptor(ins) -> str:
    if ins.type_ref is not None:
        return ins.type_ref.descriptor
    return f"L{ins.class_ref.internal_name};"


def _effect_for(mnemonic: str):
    """A closure ``effect(stack, ins)`` replicating one case of
    ``StackTracker._apply_effect`` (same cascade, same errors), or
    ``None`` when the effect is unmodelable (state becomes unknown)."""
    m = mnemonic
    if m in ("nop", "iinc"):
        return lambda stack, ins: None
    if m == "aconst_null":
        return lambda stack, ins: stack.append("N")
    if m.startswith("iconst") or m in ("bipush", "sipush"):
        return lambda stack, ins: stack.append("I")
    if m.startswith("lconst"):
        return lambda stack, ins: _push_type(stack, "J")
    if m.startswith("fconst"):
        return lambda stack, ins: stack.append("F")
    if m.startswith("dconst"):
        return lambda stack, ins: _push_type(stack, "D")
    if m in ("ldc", "ldc_w", "ldc2_w"):
        return lambda stack, ins: _push_type(stack,
                                             _LDC_PUSH[ins.const.kind])
    if m[1:] in ("load", "load_0", "load_1", "load_2", "load_3") and \
            m[0] in "ilfda":
        pushed = _LOAD_PUSH[m[0]]
        return lambda stack, ins: _push_type(stack, pushed)
    if m == "aaload":
        def _aaload(stack, ins):
            _pop(stack)
            array_type = _pop(stack)
            if array_type.startswith("["):
                _push_type(stack, array_type[1:])
            else:
                stack.append("A")
        return _aaload
    if m in ALOAD_FAMILY.values():
        element = _ALOAD_ELEM[m]

        def _xaload(stack, ins):
            _pop(stack)
            _pop(stack)
            _push_type(stack, element)
        return _xaload
    if m[1:] in ("store", "store_0", "store_1", "store_2",
                 "store_3") and m[0] in "ilfda":
        return lambda stack, ins: _pop(stack)
    if m in ASTORE_FAMILY.values():
        def _xastore(stack, ins):
            _pop(stack)
            _pop(stack)
            _pop(stack)
        return _xastore
    if m == "pop":
        return lambda stack, ins: _pop_slot(stack)
    if m == "pop2":
        def _pop2(stack, ins):
            _pop_slot(stack)
            _pop_slot(stack)
        return _pop2
    if m == "dup":
        return lambda stack, ins: stack.append(stack[-1])
    if m == "dup_x1":
        return lambda stack, ins: stack.insert(len(stack) - 2, stack[-1])
    if m == "dup_x2":
        return lambda stack, ins: stack.insert(len(stack) - 3, stack[-1])
    if m == "dup2":
        return lambda stack, ins: stack.extend(stack[-2:])
    if m == "dup2_x1":
        def _dup2_x1(stack, ins):
            tail = stack[-2:]
            stack[len(stack) - 3:len(stack) - 3] = tail
        return _dup2_x1
    if m == "dup2_x2":
        def _dup2_x2(stack, ins):
            tail = stack[-2:]
            stack[len(stack) - 4:len(stack) - 4] = tail
        return _dup2_x2
    if m == "swap":
        def _swap(stack, ins):
            stack[-1], stack[-2] = stack[-2], stack[-1]
        return _swap
    entry = _MEMBER_TO_FAMILY.get(m)
    if entry is not None and entry[0] in ARITH_FAMILIES:
        if m.endswith("neg"):
            def _neg(stack, ins):
                value = _pop(stack)
                _push_type(stack, value_category(value))
            return _neg

        def _binary(stack, ins):
            _pop(stack)
            left = _pop(stack)
            _push_type(stack, value_category(left))
        return _binary
    if entry is not None and entry[0] in SHIFT_FAMILIES:
        def _shift(stack, ins):
            _pop(stack)  # shift amount
            value = _pop(stack)
            _push_type(stack, value_category(value))
        return _shift
    if m[0] in "ilfd" and "2" in m and len(m) == 3:
        pushed = _CONV_PUSH[m[2]]

        def _convert(stack, ins):
            _pop(stack)
            _push_type(stack, pushed)
        return _convert
    if m in ("lcmp", "fcmpl", "fcmpg", "dcmpl", "dcmpg"):
        def _compare(stack, ins):
            _pop(stack)
            _pop(stack)
            stack.append("I")
        return _compare
    if m in ("ifeq", "ifne", "iflt", "ifge", "ifgt", "ifle",
             "ifnull", "ifnonnull"):
        return lambda stack, ins: _pop(stack)
    if m.startswith(("if_icmp", "if_acmp")):
        def _if2(stack, ins):
            _pop(stack)
            _pop(stack)
        return _if2
    if m == "getstatic":
        return lambda stack, ins: _push_type(
            stack, ins.field_ref.type.descriptor)
    if m == "getfield":
        def _getfield(stack, ins):
            _pop(stack)
            _push_type(stack, ins.field_ref.type.descriptor)
        return _getfield
    if m == "putstatic":
        return lambda stack, ins: _pop(stack)
    if m == "putfield":
        def _putfield(stack, ins):
            _pop(stack)
            _pop(stack)
        return _putfield
    if m in ("invokevirtual", "invokespecial", "invokestatic",
             "invokeinterface"):
        is_static_call = m == "invokestatic"

        def _invoke(stack, ins):
            method_ref = ins.method_ref
            for _ in method_ref.arg_types:
                _pop(stack)
            if not is_static_call:
                _pop(stack)
            _push_type(stack, method_ref.return_type.descriptor)
        return _invoke
    if m == "new":
        return lambda stack, ins: _push_type(stack, _class_descriptor(ins))
    if m == "newarray":
        def _newarray(stack, ins):
            _pop(stack)
            stack.append("[" + ATYPE_DESCRIPTORS[ins.atype])
        return _newarray
    if m == "anewarray":
        def _anewarray(stack, ins):
            _pop(stack)
            stack.append("[" + _class_descriptor(ins))
        return _anewarray
    if m == "multianewarray":
        def _multi(stack, ins):
            for _ in range(ins.dims):
                _pop(stack)
            _push_type(stack, _class_descriptor(ins))
        return _multi
    if m == "arraylength":
        def _arraylength(stack, ins):
            _pop(stack)
            stack.append("I")
        return _arraylength
    if m == "checkcast":
        def _checkcast(stack, ins):
            _pop(stack)
            _push_type(stack, _class_descriptor(ins))
        return _checkcast
    if m == "instanceof":
        def _instanceof(stack, ins):
            _pop(stack)
            stack.append("I")
        return _instanceof
    if m in ("monitorenter", "monitorexit"):
        return lambda stack, ins: _pop(stack)
    return None  # unmodelable (e.g. the bare `wide` prefix)


class _Plan:
    """Everything the compiled passes need about one opcode."""

    __slots__ = ("opcode", "mnemonic", "ops", "is_switch", "is_table",
                 "in_family", "is_canonical", "size", "wide_size",
                 "has_local", "is_iinc", "flow", "effect", "field_kind",
                 "invoke_kind", "const_op_kind", "template")

    def __init__(self, spec):
        m = spec.mnemonic
        self.opcode = spec.opcode
        # Prebuilt instance ``__dict__`` for decode: one C-level dict
        # copy replaces the 15-field dataclass ``__init__`` call.
        self.template = {field.name: field.default
                         for field in dataclasses.fields(
                             ir.IRInstruction)}
        self.template["opcode"] = spec.opcode
        self.mnemonic = m
        self.is_switch = bool(spec.is_switch)
        self.is_table = m == "tableswitch"
        entry = _MEMBER_TO_FAMILY.get(m)
        self.in_family = entry is not None
        self.is_canonical = entry is not None and entry[0] == m
        self.field_kind = wire.FIELD_KINDS.get(spec.opcode)
        self.invoke_kind = wire.INVOKE_KINDS.get(spec.opcode)
        self.const_op_kind = None
        self.has_local = (not self.is_switch and
                          K.LOCAL in spec.operands)
        self.is_iinc = m == "iinc"
        if self.is_switch:
            self.flow = _FLOW_KILL
        elif m in ("goto", "goto_w"):
            self.flow = _FLOW_GOTO
        elif m in ("ireturn", "lreturn", "freturn", "dreturn",
                   "areturn", "return", "athrow", "ret", "jsr",
                   "jsr_w"):
            self.flow = _FLOW_KILL
        else:
            self.flow = _FLOW_NORMAL
        self.effect = _effect_for(m) if self.flow == _FLOW_NORMAL \
            else None
        ops = []
        size = 1
        wide_size = 2
        if not self.is_switch:
            for kind in spec.operands:
                attr, channel = OPERAND_CHANNELS[kind]
                if channel == "reg":
                    ops.append(_OP_REG)
                elif channel == "int":
                    ops.append(_OP_INT)
                elif channel == "uint":
                    ops.append(_OP_ATYPE if attr == "atype"
                               else _OP_DIMS)
                elif channel == "branch":
                    ops.append(_OP_BRANCH)
                elif channel == "const":
                    ops.append(_OP_CONST)
                    self.const_op_kind = kind
                elif channel == "field":
                    ops.append(_OP_FIELD)
                elif channel == "method":
                    ops.append(_OP_METHOD)
                elif channel == "class":
                    ops.append(_OP_CLASS)
                # channel == "derived": nothing on the wire
                if kind == K.LOCAL or kind == K.IINC_DELTA:
                    size += 1
                    wide_size += 2
                elif kind in (K.SBYTE, K.ATYPE, K.DIMS, K.COUNT,
                              K.ZERO, K.CP_LDC):
                    size += 1
                    wide_size += 1
                elif kind in (K.SSHORT, K.BRANCH2, K.CP_LDC_W,
                              K.CP_LDC2_W, K.CP_FIELD, K.CP_METHOD,
                              K.CP_IMETHOD, K.CP_CLASS):
                    size += 2
                    wide_size += 2
                elif kind == K.BRANCH4:
                    size += 4
                    wide_size += 4
        self.ops = tuple(ops)
        self.size = size
        self.wide_size = wide_size


_PLANS: Dict[int, _Plan] = {opcode: _Plan(spec)
                            for opcode, spec in OPCODES.items()}
_PLANS_BY_NAME: Dict[str, _Plan] = {plan.mnemonic: plan
                                    for plan in _PLANS.values()}

#: One decode dispatch table: opcode byte -> _Plan, or the
#: ``(const_kind, wide_const)`` pseudo-LDC tuple.  Pseudo bytes win on
#: any overlap, exactly like the interpreted decoder's
#: check-pseudo-first ordering.
_DECODE_DISPATCH: Dict[int, object] = dict(_PLANS)
_DECODE_DISPATCH.update(wire.PSEUDO_LDC_REVERSE)


def _apply_state(tracker: StackTracker, plan: _Plan, ins,
                 offset: int) -> None:
    """`StackTracker.apply` specialized through the plan table."""
    flow = plan.flow
    if flow == _FLOW_NORMAL:
        stack = tracker.stack
        if stack is None:
            return
        effect = plan.effect
        if effect is None:
            tracker.stack = None
            return
        try:
            effect(stack, ins)
        except _Unknown:
            tracker.stack = None
            return
        target = ins.target
        if target is not None and target > offset and \
                tracker.pending is None:
            tracker.pending = (target, list(stack))
    elif flow == _FLOW_GOTO:
        target = ins.target
        if target is not None and target > offset and \
                tracker.pending is None and tracker.stack is not None:
            tracker.pending = (target, list(tracker.stack))
        tracker.stack = None
    else:
        tracker.stack = None


def _instruction_advance(plan: _Plan, ins, offset: int) -> int:
    """``offset`` after ``ins`` (inlined ``ir_instruction_size``)."""
    if plan.is_switch:
        padding = (4 - (offset + 1) % 4) % 4
        if ins.switch_low is not None:
            return offset + 1 + padding + 12 + 4 * len(ins.switch_pairs)
        return offset + 1 + padding + 8 + 8 * len(ins.switch_pairs)
    if plan.has_local and (
            (ins.local is not None and ins.local > 0xFF) or
            (plan.is_iinc and ins.immediate is not None and
             not -128 <= ins.immediate <= 127)):
        return offset + plan.wide_size
    return offset + plan.size


# ---------------------------------------------------------------------
# Compiled count pass
# ---------------------------------------------------------------------


def _count_archive(archive, options, seen=None):
    """Reference-frequency census, specialized.

    Mirrors the interpreted walk's visit order and first-visit gating
    exactly (so ``seen`` carry-over from preloads behaves the same),
    but skips every wire concern: no streams, no varints, no text.
    The stack tracker only runs when a recorder is installed — its
    sole observable effect during counting is the ``stack_state.*``
    metrics.
    """
    counts: Dict[str, Dict[Tuple[str, Hashable], int]] = {
        space: {} for space in wire.SPACES}
    if seen is None:
        seen = {space: set() for space in wire.SPACES}

    c_package = counts["package"]
    c_simple = counts["simple"]
    c_class = counts["class"]
    c_mname = counts["methodname"]
    c_fname = counts["fieldname"]
    c_method = counts["method"]
    c_field = counts["field"]
    c_string = counts["string"]
    s_package = seen["package"]
    s_simple = seen["simple"]
    s_class = seen["class"]
    s_mname = seen["methodname"]
    s_fname = seen["fieldname"]
    s_method = seen["method"]
    s_field = seen["field"]
    s_string = seen["string"]

    def cnt_class(value):
        slot = ("class", value)
        c_class[slot] = c_class.get(slot, 0) + 1
        if value in s_class:
            return
        s_class.add(value)
        pkg = value.package
        slot = ("package", pkg)
        c_package[slot] = c_package.get(slot, 0) + 1
        if pkg not in s_package:
            s_package.add(pkg)
        simple = value.simple
        slot = ("simple", simple)
        c_simple[slot] = c_simple.get(slot, 0) + 1
        if simple not in s_simple:
            s_simple.add(simple)

    def cnt_type(value):
        base = value.base
        if isinstance(base, ir.ClassRef):
            cnt_class(base)

    def cnt_method(kind, value):
        slot = (kind, value)
        c_method[slot] = c_method.get(slot, 0) + 1
        if value in s_method:
            return
        s_method.add(value)
        cnt_class(value.owner)
        name = value.name
        slot = ("methodname", name)
        c_mname[slot] = c_mname.get(slot, 0) + 1
        if name not in s_mname:
            s_mname.add(name)
        cnt_type(value.return_type)
        for arg in value.arg_types:
            cnt_type(arg)

    def cnt_field(kind, value):
        slot = (kind, value)
        c_field[slot] = c_field.get(slot, 0) + 1
        if value in s_field:
            return
        s_field.add(value)
        cnt_class(value.owner)
        name = value.name
        slot = ("fieldname", name)
        c_fname[slot] = c_fname.get(slot, 0) + 1
        if name not in s_fname:
            s_fname.add(name)
        cnt_type(value.type)

    def cnt_const(const):
        if const.kind == "string":
            value = const.value
            slot = ("string", value)
            c_string[slot] = c_string.get(slot, 0) + 1
            if value not in s_string:
                s_string.add(value)

    mx = observe.current().metrics
    track = mx is not None and options.stack_state
    applied = 0
    unknown = 0
    plans = _PLANS

    for class_def in archive.classes:
        cnt_class(class_def.this_class)
        if class_def.access_flags & ir.FLAG_HAS_SUPER:
            cnt_class(class_def.super_class)
        for interface in class_def.interfaces:
            cnt_class(interface)
        for field_def in class_def.fields:
            cnt_field("field.def", field_def.ref)
            if field_def.access_flags & ir.FLAG_HAS_CONSTANT:
                cnt_const(field_def.constant)
        for method_def in class_def.methods:
            cnt_method("method.def", method_def.ref)
            if method_def.access_flags & ir.FLAG_HAS_EXCEPTIONS:
                for exception in method_def.exceptions:
                    cnt_class(exception)
            if not method_def.access_flags & ir.FLAG_HAS_CODE:
                continue
            code = method_def.code
            for handler in code.handlers:
                if handler.catch_type is not None:
                    cnt_class(handler.catch_type)
            if track:
                tracker = StackTracker()
                offset = 0
                for ins in code.instructions:
                    if tracker.pending is not None:
                        tracker.at_instruction(offset)
                    const = ins.const
                    if const is not None:
                        cnt_const(const)
                        plan = plans[ins.opcode]
                    else:
                        plan = plans[ins.opcode]
                        field_kind = plan.field_kind
                        if field_kind is not None:
                            cnt_field(field_kind, ins.field_ref)
                        else:
                            invoke_kind = plan.invoke_kind
                            if invoke_kind is not None:
                                cnt_method(invoke_kind, ins.method_ref)
                            elif _OP_CLASS in plan.ops:
                                if ins.type_ref is not None:
                                    cnt_type(ins.type_ref)
                                else:
                                    cnt_class(ins.class_ref)
                    applied += 1
                    if tracker.stack is None:
                        unknown += 1
                    _apply_state(tracker, plan, ins, offset)
                    offset = _instruction_advance(plan, ins, offset)
            else:
                for ins in code.instructions:
                    const = ins.const
                    if const is not None:
                        cnt_const(const)
                        continue
                    plan = plans[ins.opcode]
                    field_kind = plan.field_kind
                    if field_kind is not None:
                        cnt_field(field_kind, ins.field_ref)
                        continue
                    invoke_kind = plan.invoke_kind
                    if invoke_kind is not None:
                        cnt_method(invoke_kind, ins.method_ref)
                    elif _OP_CLASS in plan.ops:
                        if ins.type_ref is not None:
                            cnt_type(ins.type_ref)
                        else:
                            cnt_class(ins.class_ref)
    if track:
        if applied > 0:
            mx.count("stack_state.applied", applied)
        if unknown > 0:
            mx.count("stack_state.unknown", unknown)
    return counts


# ---------------------------------------------------------------------
# Compiled encode pass
# ---------------------------------------------------------------------

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


def _encode_archive(archive, options, coders, streams, metrics=None,
                    layout=None):
    """Write the archive to ``streams``, specialized.

    Byte-identity depends on two invariants beyond value equality:
    streams must be *created* in the interpreted walk's order (stream
    creation order is the container's frame order), and every coder
    call must happen at the same walk position (reference-coder state
    is order-sensitive).  Both follow from mirroring the interpreted
    traversal statement by statement; only the per-value plumbing is
    inlined away.

    With a ``layout``, per-stream offsets are snapshotted after every
    class — the sizing sub-pass runs this same walk against a
    :class:`~repro.coding.streams.SizingStreamSet`.
    """
    use_state = options.stack_state
    mx = observe.current().metrics

    stream = streams.stream
    bufs: Dict[str, bytearray] = {}

    def buf(name):
        b = bufs.get(name)
        if b is None:
            b = stream(name).buf
            bufs[name] = b
        return b

    ref_writers: Dict[str, Any] = {}

    def ref_writer(space):
        writer = ref_writers.get(space)
        if writer is None:
            writer = stream(wire.SPACES[space])
            ref_writers[space] = writer
        return writer

    def w_uv(b, value):
        if 0 <= value < 0x80:
            b.append(value)
        else:
            write_uvarint(b, value)

    def w_sv(b, value):
        zigzagged = value + value if value >= 0 else -value - value - 1
        if zigzagged < 0x80:
            b.append(zigzagged)
        else:
            write_uvarint(b, zigzagged)

    def enc_text(len_name, chars_name, value):
        if value.isascii() and "\0" not in value:
            encoded = value.encode("ascii")
        else:
            encoded = mutf8.encode(value)
        w_uv(buf(len_name), len(encoded))
        buf(chars_name).extend(encoded)

    co_package = coders["package"]
    co_simple = coders["simple"]
    co_class = coders["class"]
    co_mname = coders["methodname"]
    co_fname = coders["fieldname"]
    co_method = coders["method"]
    co_field = coders["field"]
    co_string = coders["string"]

    def enc_package(value):
        if co_package.encode(ref_writer("package"),
                             ("package", NO_CONTEXT), value):
            enc_text(wire.STR_PKG_LEN, wire.STR_PKG_CHARS, value.name)

    def enc_simple(value):
        if co_simple.encode(ref_writer("simple"),
                            ("simple", NO_CONTEXT), value):
            enc_text(wire.STR_CLS_LEN, wire.STR_CLS_CHARS, value.name)

    def enc_class(value):
        if co_class.encode(ref_writer("class"),
                           ("class", NO_CONTEXT), value):
            enc_package(value.package)
            enc_simple(value.simple)

    def enc_mname(value):
        if co_mname.encode(ref_writer("methodname"),
                           ("methodname", NO_CONTEXT), value):
            enc_text(wire.STR_MNAME_LEN, wire.STR_MNAME_CHARS,
                     value.name)

    def enc_fname(value):
        if co_fname.encode(ref_writer("fieldname"),
                           ("fieldname", NO_CONTEXT), value):
            enc_text(wire.STR_FNAME_LEN, wire.STR_FNAME_CHARS,
                     value.name)

    def enc_type(value):
        shape = buf(wire.SHAPE)
        w_uv(shape, value.dims)
        base = value.base
        if isinstance(base, ir.ClassRef):
            shape.append(0)
            enc_class(base)
        else:
            shape.append(ir.PRIMITIVE_CODES[base])

    def enc_method(kind, context, value):
        if co_method.encode(ref_writer("method"), (kind, context),
                            value):
            enc_class(value.owner)
            enc_mname(value.name)
            enc_type(value.return_type)
            arg_types = value.arg_types
            w_uv(buf(wire.SHAPE), len(arg_types))
            for arg in arg_types:
                enc_type(arg)

    def enc_field(kind, value):
        if co_field.encode(ref_writer("field"), (kind, NO_CONTEXT),
                           value):
            enc_class(value.owner)
            enc_fname(value.name)
            enc_type(value.type)

    def enc_string(value):
        if co_string.encode(ref_writer("string"),
                            ("string", NO_CONTEXT), value):
            enc_text(wire.STR_CONST_LEN, wire.STR_CONST_CHARS, value)

    def enc_const(const):
        kind = const.kind
        if kind == "int":
            w_sv(buf(wire.CONST_INT), const.value)
        elif kind == "long":
            w_sv(buf(wire.CONST_LONG), const.value)
        elif kind == "float":
            buf(wire.CONST_FLOAT).extend(_U32.pack(const.value))
        elif kind == "double":
            buf(wire.CONST_DOUBLE).extend(_U64.pack(const.value))
        elif kind == "string":
            enc_string(const.value)
        else:
            raise PackError(f"unknown constant kind {kind}")

    def enc_handler(handler):
        exc = buf(wire.CODE_EXC)
        w_uv(exc, handler.start_pc)
        w_uv(exc, handler.end_pc - handler.start_pc)
        w_uv(exc, handler.handler_pc)
        catch = handler.catch_type
        if catch is None:
            exc.append(0)
        else:
            exc.append(1)
            enc_class(catch)

    plans = _PLANS
    by_name = OPCODES_BY_NAME
    pseudo_table = wire.PSEUDO_LDC
    total_instructions = 0
    pseudo_ldc = 0
    collapsed = 0
    applied = 0
    unknown = 0

    def enc_code(code):
        nonlocal total_instructions, pseudo_ldc, collapsed, applied, \
            unknown
        meta = buf(wire.META)
        w_uv(meta, code.max_stack)
        w_uv(meta, code.max_locals)
        instructions = code.instructions
        w_uv(meta, len(instructions))
        handlers = code.handlers
        w_uv(meta, len(handlers))
        for handler in handlers:
            enc_handler(handler)
        tracker = StackTracker()
        offset = 0
        for ins in instructions:
            if use_state and tracker.pending is not None:
                tracker.at_instruction(offset)
            plan = plans[ins.opcode]
            total_instructions += 1
            opcodes_buf = buf(wire.CODE_OPCODES)
            const = ins.const
            if const is not None:
                opcodes_buf.append(
                    pseudo_table[(const.kind, ins.wide_const)])
                pseudo_ldc += 1
            elif use_state and plan.in_family and \
                    tracker.stack is not None:
                emitted = tracker.collapse(plan.mnemonic)
                if emitted != plan.mnemonic:
                    opcodes_buf.append(by_name[emitted])
                    collapsed += 1
                else:
                    opcodes_buf.append(plan.opcode)
            else:
                opcodes_buf.append(plan.opcode)
            if plan.is_switch:
                branches = buf(wire.CODE_BRANCHES)
                w_sv(branches, ins.switch_default - offset)
                ints = buf(wire.CODE_INTS)
                pairs = ins.switch_pairs
                if plan.is_table:
                    w_sv(ints, ins.switch_low)
                    w_uv(ints, len(pairs))
                    for pair in pairs:
                        w_sv(branches, pair[1] - offset)
                else:
                    w_uv(ints, len(pairs))
                    for pair in pairs:
                        w_sv(ints, pair[0])
                        w_sv(branches, pair[1] - offset)
            else:
                for op in plan.ops:
                    if op == _OP_REG:
                        w_uv(buf(wire.CODE_REGS), ins.local)
                    elif op == _OP_INT:
                        w_sv(buf(wire.CODE_INTS), ins.immediate)
                    elif op == _OP_BRANCH:
                        w_sv(buf(wire.CODE_BRANCHES),
                             ins.target - offset)
                    elif op == _OP_ATYPE:
                        w_uv(buf(wire.CODE_INTS), ins.atype)
                    elif op == _OP_DIMS:
                        w_uv(buf(wire.CODE_INTS), ins.dims)
                    elif op == _OP_CONST:
                        enc_const(ins.const)
                    elif op == _OP_FIELD:
                        enc_field(plan.field_kind, ins.field_ref)
                    elif op == _OP_METHOD:
                        context = tracker.top_categories() \
                            if use_state else NO_CONTEXT
                        enc_method(plan.invoke_kind, context,
                                   ins.method_ref)
                    else:  # _OP_CLASS
                        shape = buf(wire.SHAPE)
                        if ins.type_ref is not None:
                            shape.append(1)
                            enc_type(ins.type_ref)
                        else:
                            shape.append(0)
                            enc_class(ins.class_ref)
            if use_state:
                applied += 1
                if tracker.stack is None:
                    unknown += 1
                _apply_state(tracker, plan, ins, offset)
            offset = _instruction_advance(plan, ins, offset)

    meta = buf(wire.META)
    classes = archive.classes
    w_uv(meta, len(classes))
    for class_def in classes:
        enc_class(class_def.this_class)
        flags = class_def.access_flags
        w_uv(meta, flags)
        if flags & ir.FLAG_HAS_SUPER:
            enc_class(class_def.super_class)
        interfaces = class_def.interfaces
        w_uv(meta, len(interfaces))
        for interface in interfaces:
            enc_class(interface)
        fields = class_def.fields
        methods = class_def.methods
        w_uv(meta, len(fields))
        w_uv(meta, len(methods))
        for field_def in fields:
            field_flags = field_def.access_flags
            w_uv(meta, field_flags)
            enc_field("field.def", field_def.ref)
            if field_flags & ir.FLAG_HAS_CONSTANT:
                enc_const(field_def.constant)
        for method_def in methods:
            method_flags = method_def.access_flags
            w_uv(meta, method_flags)
            enc_method("method.def", NO_CONTEXT, method_def.ref)
            if method_flags & ir.FLAG_HAS_EXCEPTIONS:
                exceptions = method_def.exceptions
                w_uv(meta, len(exceptions))
                for exception in exceptions:
                    enc_class(exception)
            if method_flags & ir.FLAG_HAS_CODE:
                enc_code(method_def.code)
        if layout is not None:
            layout.snapshot(streams)

    if metrics is not None:
        if total_instructions > 0:
            metrics.count("bytecode.instructions", total_instructions)
        if pseudo_ldc > 0:
            metrics.count("bytecode.pseudo_ldc", pseudo_ldc)
        if collapsed > 0:
            metrics.count("bytecode.collapsed", collapsed)
    if mx is not None:
        if applied > 0:
            mx.count("stack_state.applied", applied)
        if unknown > 0:
            mx.count("stack_state.unknown", unknown)


# ---------------------------------------------------------------------
# Compiled decode pass
# ---------------------------------------------------------------------


def _iter_decode_archive(options, coders, reader, interner):
    """Yield decoded classes one at a time, specialized.

    Varint-only streams are prescanned in one pass each
    (:func:`decode_uvarints`), so the per-value hot path is a list
    index; fixed-width constants unpack straight off the stream buffer.
    Exhaustion surfaces as ``IndexError``/``ValueError`` — the same
    corruption-error family the interpreted cursors raise, wrapped
    identically by the :class:`~repro.pack.decompressor.Decompressor`.

    This is a generator: classes materialize lazily in the paper's
    §11 eager class-loading order (dependencies precede dependents),
    so a consumer that drops each class after use never holds the
    whole archive.  Stack-state metrics are emitted when the final
    class has been yielded.
    """
    use_state = options.stack_state
    mx = observe.current().metrics

    def uv_reader(name):
        values = decode_uvarints(reader.stream(name).data)
        index = 0

        def read():
            nonlocal index
            value = values[index]
            index += 1
            return value
        return read

    meta = uv_reader(wire.META)
    shape = uv_reader(wire.SHAPE)
    regs = uv_reader(wire.CODE_REGS)
    ints = uv_reader(wire.CODE_INTS)
    branches = uv_reader(wire.CODE_BRANCHES)
    exc = uv_reader(wire.CODE_EXC)
    const_int = uv_reader(wire.CONST_INT)
    const_long = uv_reader(wire.CONST_LONG)

    def unzig(value):
        return value >> 1 if not value & 1 else -((value + 1) >> 1)

    def text_reader(len_name, chars_name):
        lens = decode_uvarints(reader.stream(len_name).data)
        index = 0
        data = reader.stream(chars_name).data
        pos = 0

        def read():
            nonlocal index, pos
            length = lens[index]
            index += 1
            end = pos + length
            if end > len(data):
                raise ValueError(f"stream {chars_name!r} exhausted")
            raw = data[pos:end]
            pos = end
            if raw.isascii():
                return raw.decode("ascii")
            return mutf8.decode(raw)
        return read

    pkg_text = text_reader(wire.STR_PKG_LEN, wire.STR_PKG_CHARS)
    cls_text = text_reader(wire.STR_CLS_LEN, wire.STR_CLS_CHARS)
    mname_text = text_reader(wire.STR_MNAME_LEN, wire.STR_MNAME_CHARS)
    fname_text = text_reader(wire.STR_FNAME_LEN, wire.STR_FNAME_CHARS)
    const_text = text_reader(wire.STR_CONST_LEN, wire.STR_CONST_CHARS)

    def fixed_reader(name, unpacker):
        data = reader.stream(name).data
        size = unpacker.size
        unpack_from = unpacker.unpack_from
        pos = 0

        def read():
            nonlocal pos
            if pos + size > len(data):
                raise ValueError(f"stream {name!r} exhausted")
            value = unpack_from(data, pos)[0]
            pos += size
            return value
        return read

    read_f32 = fixed_reader(wire.CONST_FLOAT, _U32)
    read_f64 = fixed_reader(wire.CONST_DOUBLE, _U64)

    def make_ref(space, coder, cursor):
        """``(ref, reg)`` closures for one object space.

        ``ref(kind, context)`` returns ``(token, value)`` — ``value``
        is the resolved object for a back-reference, or None for a new
        object whose contents follow; ``token`` is whatever ``reg``
        needs to register the built object.  Fast MTF decoders get a
        fully inlined path (prescanned index stream, direct queue
        surgery); every other scheme goes through its own
        ``decode``/``register`` protocol untouched.
        """
        decoder = getattr(coder, "decoder", None)
        if isinstance(decoder, FastMtfDecoder):
            core = decoder._coder
            # Contextual pooling only ever fires for ``method.*``
            # kinds, and the method space sees nothing else — so the
            # pool shape is a per-space constant, not a per-call
            # ``startswith`` test.
            contextual = decoder.use_context and space == "method"
            transients = core.transients
            shift = core._shift
            queues = core._queues
            seed_queue = core._queue
            register = core._register
            indexes = decode_uvarints(cursor.data)
            pos = 0

            def ref(kind, context):
                nonlocal pos
                index = indexes[pos]
                pos += 1
                if index == 0 or (transients and index == 1):
                    return index, None
                pool = (kind, context) if contextual else kind
                queue = queues.get(pool)
                if queue is None:
                    queue = seed_queue(pool)
                position = index - 1 - shift
                if not 0 <= position < len(queue):
                    raise MtfError(
                        f"MTF index {index} out of range for queue "
                        f"of size {len(queue)}")
                key = queue[position]
                if position:
                    del queue[position]
                    queue.insert(0, key)
                # Every registration path stores the object as its own
                # key (encode, decode, and preload all register
                # ``(obj, obj)``), so the queue entry *is* the value —
                # no ``known[key]`` hash of a dataclass needed.
                return index, key

            def reg(token, obj):
                if transients and token == 1:
                    return
                register(obj, obj)

            return ref, reg

        def ref(kind, context):
            is_new, value = coder.decode(cursor, (kind, context))
            if is_new:
                return (kind, context), None
            return None, value

        def reg(token, obj):
            coder.register(token, obj)

        return ref, reg

    def space_ref(space):
        return make_ref(space, coders[space],
                        reader.stream(wire.SPACES[space]))

    ref_package, reg_package = space_ref("package")
    ref_simple, reg_simple = space_ref("simple")
    ref_class, reg_class = space_ref("class")
    ref_mname, reg_mname = space_ref("methodname")
    ref_fname, reg_fname = space_ref("fieldname")
    ref_method, reg_method = space_ref("method")
    ref_field, reg_field = space_ref("field")
    ref_string, reg_string = space_ref("string")

    def dec_package():
        token, value = ref_package("package", NO_CONTEXT)
        if value is not None:
            return value
        obj = interner.package(pkg_text())
        reg_package(token, obj)
        return obj

    def dec_simple():
        token, value = ref_simple("simple", NO_CONTEXT)
        if value is not None:
            return value
        obj = interner.simple(cls_text())
        reg_simple(token, obj)
        return obj

    def dec_class():
        token, value = ref_class("class", NO_CONTEXT)
        if value is not None:
            return value
        package = dec_package()
        simple = dec_simple()
        if package.name:
            internal_name = package.name + "/" + simple.name
        else:
            internal_name = simple.name
        obj = interner.class_ref(internal_name)
        reg_class(token, obj)
        return obj

    def dec_mname():
        token, value = ref_mname("methodname", NO_CONTEXT)
        if value is not None:
            return value
        obj = interner.method_name(mname_text())
        reg_mname(token, obj)
        return obj

    def dec_fname():
        token, value = ref_fname("fieldname", NO_CONTEXT)
        if value is not None:
            return value
        obj = interner.field_name(fname_text())
        reg_fname(token, obj)
        return obj

    def dec_type():
        dims = shape()
        tag = shape()
        if tag == 0:
            base = dec_class()
            descriptor = "[" * dims + "L" + base.internal_name + ";"
        else:
            descriptor = "[" * dims + ir.PRIMITIVE_CHARS[tag]
        return interner.type_ref(descriptor)

    def dec_method(kind, context):
        token, value = ref_method(kind, context)
        if value is not None:
            return value
        owner = dec_class()
        name = dec_mname()
        return_type = dec_type()
        arg_types = [dec_type() for _ in range(shape())]
        descriptor = "(" + \
            "".join(a.descriptor for a in arg_types) + ")" + \
            return_type.descriptor
        obj = interner.method_ref(owner.internal_name, name.name,
                                  descriptor)
        reg_method(token, obj)
        return obj

    def dec_field(kind):
        token, value = ref_field(kind, NO_CONTEXT)
        if value is not None:
            return value
        owner = dec_class()
        name = dec_fname()
        field_type = dec_type()
        obj = interner.field_ref(owner.internal_name, name.name,
                                 field_type.descriptor)
        reg_field(token, obj)
        return obj

    def dec_string():
        token, value = ref_string("string", NO_CONTEXT)
        if value is not None:
            return value
        obj = const_text()
        reg_string(token, obj)
        return obj

    def dec_const(kind):
        if kind == "int":
            bits = unzig(const_int())
        elif kind == "long":
            bits = unzig(const_long())
        elif kind == "float":
            bits = read_f32()
        elif kind == "double":
            bits = read_f64()
        elif kind == "string":
            bits = dec_string()
        else:
            raise UnpackError(f"unknown constant kind {kind}")
        return ir.ConstValue(kind, bits)

    def dec_handler():
        start = exc()
        length = exc()
        handler_pc = exc()
        catch = dec_class() if exc() else None
        return ir.IRExceptionHandler(start, start + length,
                                     handler_pc, catch)

    plans = _PLANS
    plans_by_name = _PLANS_BY_NAME
    dispatch = _DECODE_DISPATCH
    instruction_cls = ir.IRInstruction
    new_instruction = object.__new__
    op_data = reader.stream(wire.CODE_OPCODES).data
    op_len = len(op_data)
    op_pos = 0
    #: Plan of the instruction dec_instruction just returned — hands
    #: the already-resolved plan to dec_code without a re-lookup.
    current_plan = None
    applied = 0
    unknown = 0

    def dec_instruction(tracker, offset):
        nonlocal op_pos, current_plan
        if op_pos >= op_len:
            raise ValueError(
                f"stream {wire.CODE_OPCODES!r} exhausted")
        opcode_byte = op_data[op_pos]
        op_pos += 1
        plan = dispatch.get(opcode_byte)
        if type(plan) is tuple:
            const_kind, wide_const = plan
            const = dec_const(const_kind)
            if const_kind in ("long", "double"):
                opcode = wire.LDC2_W_OPCODE
            elif wide_const:
                opcode = wire.LDC_W_OPCODE
            else:
                opcode = wire.LDC_OPCODE
            current_plan = plans[opcode]
            return ir.IRInstruction(opcode, const=const,
                                    wide_const=wide_const)
        if plan is None:
            raise UnpackError(f"bad opcode byte {opcode_byte:#x}")
        if use_state and plan.is_canonical and \
                tracker.stack is not None:
            expanded = tracker.expand(plan.mnemonic)
            if expanded != plan.mnemonic:
                plan = plans_by_name[expanded]
        current_plan = plan
        ins = new_instruction(instruction_cls)
        ins.__dict__ = dict(plan.template)
        if plan.is_switch:
            ins.switch_default = offset + unzig(branches())
            if plan.is_table:
                low = unzig(ints())
                count = ints()
                ins.switch_low = low
                ins.switch_pairs = [
                    (low + i, offset + unzig(branches()))
                    for i in range(count)]
            else:
                count = ints()
                pairs = []
                for _ in range(count):
                    match = unzig(ints())
                    pairs.append((match, offset + unzig(branches())))
                ins.switch_pairs = pairs
            return ins
        for op in plan.ops:
            if op == _OP_REG:
                ins.local = regs()
            elif op == _OP_INT:
                ins.immediate = unzig(ints())
            elif op == _OP_BRANCH:
                ins.target = offset + unzig(branches())
            elif op == _OP_ATYPE:
                ins.atype = ints()
            elif op == _OP_DIMS:
                ins.dims = ints()
            elif op == _OP_CONST:
                raise UnpackError(
                    f"unhandled operand kind {plan.const_op_kind}")
            elif op == _OP_FIELD:
                ins.field_ref = dec_field(plan.field_kind)
            elif op == _OP_METHOD:
                context = tracker.top_categories() if use_state \
                    else NO_CONTEXT
                ins.method_ref = dec_method(plan.invoke_kind, context)
            else:  # _OP_CLASS
                if shape():
                    ins.type_ref = dec_type()
                else:
                    ins.class_ref = dec_class()
        return ins

    def dec_code():
        nonlocal applied, unknown
        max_stack = meta()
        max_locals = meta()
        n_instructions = meta()
        n_handlers = meta()
        handlers = [dec_handler() for _ in range(n_handlers)]
        tracker = StackTracker()
        instructions = []
        offset = 0
        for _ in range(n_instructions):
            if use_state and tracker.pending is not None:
                tracker.at_instruction(offset)
            ins = dec_instruction(tracker, offset)
            plan = current_plan
            if use_state:
                applied += 1
                stack = tracker.stack
                if stack is None:
                    # _apply_state is a no-op on a dead stack (every
                    # flow arm either returns or re-kills it) — skip
                    # the call entirely.
                    unknown += 1
                elif plan.flow == 0:
                    # _FLOW_NORMAL inlined: the ~85% case.
                    effect = plan.effect
                    if effect is None:
                        tracker.stack = None
                    else:
                        try:
                            effect(stack, ins)
                        except _Unknown:
                            tracker.stack = None
                        else:
                            target = ins.target
                            if target is not None and \
                                    target > offset and \
                                    tracker.pending is None:
                                tracker.pending = (target, list(stack))
                else:
                    _apply_state(tracker, plan, ins, offset)
            if plan.is_switch or plan.has_local:
                offset = _instruction_advance(plan, ins, offset)
            else:
                offset += plan.size
            instructions.append(ins)
        return ir.IRCode(max_stack, max_locals, instructions, handlers)

    for _ in range(meta()):
        this_class = dec_class()
        flags = meta()
        super_class = dec_class() if flags & ir.FLAG_HAS_SUPER else None
        interfaces = [dec_class() for _ in range(meta())]
        n_fields = meta()
        n_methods = meta()
        fields = []
        for _ in range(n_fields):
            field_flags = meta()
            field_ref = dec_field("field.def")
            constant = None
            if field_flags & ir.FLAG_HAS_CONSTANT:
                constant = dec_const(wire.constant_kind_for_field(
                    field_ref.type.descriptor))
            fields.append(ir.FieldDefinition(field_flags, field_ref,
                                             constant))
        methods = []
        for _ in range(n_methods):
            method_flags = meta()
            method_ref = dec_method("method.def", NO_CONTEXT)
            exceptions = []
            if method_flags & ir.FLAG_HAS_EXCEPTIONS:
                exceptions = [dec_class() for _ in range(meta())]
            code = dec_code() if method_flags & ir.FLAG_HAS_CODE \
                else None
            methods.append(ir.MethodDefinition(method_flags,
                                               method_ref, code,
                                               exceptions))
        yield ir.ClassDefinition(flags, this_class, super_class,
                                 interfaces, fields, methods)

    if mx is not None and use_state:
        if applied > 0:
            mx.count("stack_state.applied", applied)
        if unknown > 0:
            mx.count("stack_state.unknown", unknown)


def _decode_archive(options, coders, reader, interner):
    """Rebuild the whole archive from ``reader``, specialized."""
    return ir.Archive(list(_iter_decode_archive(options, coders,
                                                reader, interner)))


# ---------------------------------------------------------------------
# The codec façade and the spec-compilation registry hook
# ---------------------------------------------------------------------


class CompiledCodec:
    """Specialized count/encode/decode entry points for one
    :class:`~repro.pack.codec_core.registry.WireSpec`.

    Spans and top-level metrics match the interpreted entry points in
    :mod:`repro.pack.codec_core` exactly, so traces keep their shape
    regardless of backend.
    """

    __slots__ = ("spec",)

    def __init__(self, spec):
        self.spec = spec

    def count_references(self, archive, options, coders=None,
                         seen=None):
        with observe.current().span("count",
                                    classes=len(archive.classes)):
            counts = _count_archive(archive, options, seen)
            if coders is not None:
                for space, coder in coders.items():
                    if coder.needs_frequencies:
                        coder.set_frequencies(counts[space])
        return counts

    def encode_archive(self, archive, options, coders, streams,
                       metrics=None):
        with observe.current().span("encode"):
            _encode_archive(archive, options, coders, streams,
                            metrics=metrics)

    def decode_archive(self, options, coders, reader, interner):
        with observe.current().span("decode"):
            return _decode_archive(options, coders, reader, interner)

    def measure_archive(self, archive, options, coders, streams,
                        layout):
        """The encode walk against a sizing port, snapshotting
        per-class offsets into ``layout``.  Span-free: callers run it
        under ``observe.silenced()`` inside the count phase."""
        _encode_archive(archive, options, coders, streams,
                        layout=layout)

    def iter_decode(self, options, coders, reader, interner):
        """One decoded class at a time (see
        :func:`_iter_decode_archive`).  Span-free: a span held open
        across yields would corrupt the trace tree."""
        return _iter_decode_archive(options, coders, reader, interner)


_COMPILED: Dict[int, CompiledCodec] = {}


def compiled_codec(spec) -> Optional[CompiledCodec]:
    """The compiled codec for ``spec``, or ``None`` when the spec's
    archive walk is not the one this module specializes (a future spec
    version falls back to the interpreted drivers instead of silently
    producing wrong bytes)."""
    codec = _COMPILED.get(spec.version)
    if codec is not None and codec.spec is spec:
        return codec
    if spec.archive is archive_mod.archive and \
            spec.spaces is wire.SPACES:
        codec = CompiledCodec(spec)
        _COMPILED[spec.version] = codec
        return codec
    return None


def warm(specs) -> None:
    """Compile every eligible spec up front (registry-time hook)."""
    for spec in specs:
        compiled_codec(spec)
