"""The three codec drivers: count, encode, decode.

One codec spec (:mod:`repro.pack.codec_core.archive` and friends)
describes every wire construct; the driver supplies the direction.
All three drivers expose the same primitive vocabulary — ``uint``,
``sint``, ``u8``, ``raw``, ``text``, ``ref``, ``register``, ``bump``,
``fail`` — targeted at a :class:`~repro.coding.streams.StreamPort`:

* :class:`EncodeDriver` writes to a :class:`StreamSet`;
* :class:`CountDriver` writes to the null port and records reference
  frequencies plus a per-space seen set (the two-pass schemes' input);
* :class:`DecodeDriver` reads from a :class:`StreamReader` and interns
  the objects it constructs.

The optional ``probe`` hook records every reference visit as
``(space, kind, is_new)``; the mode-agreement property test uses it to
assert that all three modes traverse the identical reference sequence.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from ...classfile import mutf8
from ...coding.streams import NullStreamSet, StreamReader, StreamSet
from ...errors import PackError, UnpackError
from ...refs.base import Coder
from ...refs.schemes import make_coder
from .. import wire
from ..options import PackOptions

Probe = List[Tuple[str, str, bool]]

#: One recorded reference visit: ``(space, kind, stack_context, key)``.
#: A trace is the full per-archive sequence — what
#: :mod:`repro.pack.select` replays through candidate coders to score
#: the scheme matrix without re-walking the IR.
TraceEvent = Tuple[str, str, object, Hashable]


def make_space_coders(options: PackOptions) -> Dict[str, Coder]:
    """One dual-mode :class:`~repro.refs.base.Coder` per object space.

    Spaces are seeded in sorted order (``options.seed + index``); this
    order is part of the wire format — both sides must build identical
    coder state machines.
    """
    fast_mtf = (options.scheme == "mtf" and
                getattr(options, "codec_backend",
                        "interpreted") == "compiled")
    if fast_mtf:
        from . import compile as compile_mod

    coders: Dict[str, Coder] = {}
    for index, space in enumerate(sorted(wire.SPACES)):
        if fast_mtf:
            coders[space] = compile_mod.make_fast_mtf_coder(
                use_context=options.use_context,
                transients=options.transients,
                seed=options.seed + index)
        else:
            coders[space] = make_coder(
                options.scheme, use_context=options.use_context,
                transients=options.transients,
                seed=options.seed + index)
    return coders


class Driver:
    """Shared driver state and the mode-independent no-ops."""

    __slots__ = ("options", "port", "coders", "interner", "metrics",
                 "probe")

    decoding = False

    def fail(self, message: str) -> None:
        """Abort with the mode's error type (PackError / UnpackError)."""
        raise PackError(message)

    def bump(self, name: str) -> None:
        """Count one codec event (live only while encoding)."""

    def register(self, space: str, kind: str, stack_context,
                 value) -> None:
        """Record a just-built shared object (live only while
        decoding)."""

    def class_boundary(self, index: int) -> None:
        """Hook fired after each class (live only on the layout sizing
        sub-pass, where it snapshots per-stream offsets)."""


class EncodeDriver(Driver):
    """Runs the spec forward: every primitive writes to its stream.

    With a ``layout`` (an :class:`~repro.pack.spool.ArchiveLayout`,
    duck-typed), every class boundary snapshots the port's per-stream
    offsets — the sizing sub-pass drives this against a
    :class:`~repro.coding.streams.SizingStreamSet` port.
    """

    def __init__(self, options: PackOptions, coders: Dict[str, Coder],
                 streams: StreamSet, metrics=None,
                 probe: Optional[Probe] = None, layout=None):
        self.options = options
        self.coders = coders
        self.port = streams
        self.metrics = metrics
        self.probe = probe
        self.interner = None
        self.layout = layout

    def uint(self, name: str, value: int) -> int:
        self.port.stream(name).uvarint(value)
        return value

    def sint(self, name: str, value: int) -> int:
        self.port.stream(name).svarint(value)
        return value

    def u8(self, name: str, value: int) -> int:
        self.port.stream(name).u8(value)
        return value

    def raw(self, name: str, size: int, data: bytes) -> bytes:
        self.port.stream(name).raw(data)
        return data

    def text(self, len_stream: str, chars_stream: str,
             value: str) -> str:
        encoded = mutf8.encode(value)
        self.port.stream(len_stream).uvarint(len(encoded))
        self.port.stream(chars_stream).raw(encoded)
        return value

    def ref(self, space: str, kind: str, stack_context,
            key: Hashable) -> Tuple[bool, Hashable]:
        is_new = self.coders[space].encode(
            self.port.stream(wire.SPACES[space]), (kind, stack_context),
            key)
        if self.probe is not None:
            self.probe.append((space, kind, is_new))
        return is_new, key

    def bump(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.count(name)

    def class_boundary(self, index: int) -> None:
        if self.layout is not None:
            self.layout.snapshot(self.port)


class CountDriver(Driver):
    """Runs the spec forward against the null port, tallying how often
    every ``(kind, key)`` is referenced in every space.

    The per-space ``seen`` set gates recursion exactly like the
    encoder's first-occurrence rule, so the counting pass visits the
    same contents the encoding pass will; preloaded objects arrive
    already seen.

    An optional ``trace`` list additionally records every reference
    visit as ``(space, kind, stack_context, key)``.  Because the
    traversal — and the first-occurrence ``is_new`` sequence — is the
    same under every reference scheme, replaying a trace through a
    scheme's coders reproduces exactly the reference-stream bytes a
    full encode under that scheme would write (the dry-run scoring
    pass of ``--scheme=auto``).
    """

    __slots__ = ("counts", "seen", "trace")

    def __init__(self, options: PackOptions,
                 seen: Optional[Dict[str, Set]] = None,
                 probe: Optional[Probe] = None,
                 trace: Optional[List[TraceEvent]] = None):
        self.options = options
        self.coders = None
        self.port = NullStreamSet()
        self.metrics = None
        self.probe = probe
        self.trace = trace
        self.interner = None
        self.counts: Dict[str, Dict[Tuple[str, Hashable], int]] = {
            space: {} for space in wire.SPACES}
        self.seen: Dict[str, Set] = seen if seen is not None else {
            space: set() for space in wire.SPACES}

    def uint(self, name: str, value: int) -> int:
        return value

    def sint(self, name: str, value: int) -> int:
        return value

    def u8(self, name: str, value: int) -> int:
        return value

    def raw(self, name: str, size: int, data: bytes) -> bytes:
        return data

    def text(self, len_stream: str, chars_stream: str,
             value: str) -> str:
        return value

    def ref(self, space: str, kind: str, stack_context,
            key: Hashable) -> Tuple[bool, Hashable]:
        counts = self.counts[space]
        slot = (kind, key)
        counts[slot] = counts.get(slot, 0) + 1
        if self.trace is not None:
            self.trace.append((space, kind, stack_context, key))
        seen = self.seen[space]
        if key in seen:
            is_new = False
        else:
            seen.add(key)
            is_new = True
        if self.probe is not None:
            self.probe.append((space, kind, is_new))
        return is_new, key


class DecodeDriver(Driver):
    """Runs the spec in reverse: every primitive reads from its
    stream, and built shared objects are interned and registered."""

    decoding = True

    def __init__(self, options: PackOptions, coders: Dict[str, Coder],
                 reader: StreamReader, interner,
                 probe: Optional[Probe] = None):
        self.options = options
        self.coders = coders
        self.port = reader
        self.interner = interner
        self.metrics = None
        self.probe = probe

    def uint(self, name: str, value=None) -> int:
        return self.port.stream(name).uvarint()

    def sint(self, name: str, value=None) -> int:
        return self.port.stream(name).svarint()

    def u8(self, name: str, value=None) -> int:
        return self.port.stream(name).u8()

    def raw(self, name: str, size: int, data=None) -> bytes:
        return self.port.stream(name).raw(size)

    def text(self, len_stream: str, chars_stream: str,
             value=None) -> str:
        length = self.port.stream(len_stream).uvarint()
        return mutf8.decode(self.port.stream(chars_stream).raw(length))

    def ref(self, space: str, kind: str, stack_context, key=None):
        is_new, value = self.coders[space].decode(
            self.port.stream(wire.SPACES[space]), (kind, stack_context))
        if self.probe is not None:
            self.probe.append((space, kind, is_new))
        return is_new, value

    def register(self, space: str, kind: str, stack_context,
                 value) -> None:
        self.coders[space].register((kind, stack_context), value)

    def fail(self, message: str) -> None:
        raise UnpackError(message)
