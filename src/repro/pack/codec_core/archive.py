"""Top-level archive codec: classes, fields, methods.

The paper's class-structure layout (Section 4): per class, the class
reference, flags, supertypes, then member counts *before* member
bodies so the decoder can size its loops; all scalars on the META
stream.
"""

from __future__ import annotations

from ...ir import model as ir
from .. import wire
from .constructs import CLASS_REF, CONST, FIELD_REF, METHOD_REF
from .instructions import code_body
from .spec import DECODE, NO_CONTEXT


def field_definition(drv, value):
    decoding = value is DECODE
    flags = drv.uint(wire.META,
                     DECODE if decoding else value.access_flags)
    ref = FIELD_REF.run_as(drv, DECODE if decoding else value.ref,
                           "field.def", NO_CONTEXT)
    constant = None
    if flags & ir.FLAG_HAS_CONSTANT:
        # The constant's kind is derivable from the field descriptor,
        # so it never travels on the wire.
        kind = wire.constant_kind_for_field(ref.type.descriptor) \
            if decoding else None
        constant = CONST.run_as(
            drv, DECODE if decoding else value.constant, kind)
    if decoding:
        return ir.FieldDefinition(flags, ref, constant)
    return value


def method_definition(drv, value):
    decoding = value is DECODE
    flags = drv.uint(wire.META,
                     DECODE if decoding else value.access_flags)
    ref = METHOD_REF.run_as(drv, DECODE if decoding else value.ref,
                            "method.def", NO_CONTEXT)
    exceptions = []
    if flags & ir.FLAG_HAS_EXCEPTIONS:
        count = drv.uint(
            wire.META, DECODE if decoding else len(value.exceptions))
        exceptions = [
            CLASS_REF.run(drv,
                          DECODE if decoding else value.exceptions[i])
            for i in range(count)]
    code = None
    if flags & ir.FLAG_HAS_CODE:
        code = code_body(drv, DECODE if decoding else value.code)
    if decoding:
        return ir.MethodDefinition(flags, ref, code, exceptions)
    return value


def class_definition(drv, value):
    decoding = value is DECODE
    this_class = CLASS_REF.run(
        drv, DECODE if decoding else value.this_class)
    flags = drv.uint(wire.META,
                     DECODE if decoding else value.access_flags)
    super_class = None
    if flags & ir.FLAG_HAS_SUPER:
        super_class = CLASS_REF.run(
            drv, DECODE if decoding else value.super_class)
    n_interfaces = drv.uint(
        wire.META, DECODE if decoding else len(value.interfaces))
    interfaces = [
        CLASS_REF.run(drv,
                      DECODE if decoding else value.interfaces[i])
        for i in range(n_interfaces)]
    n_fields = drv.uint(wire.META,
                        DECODE if decoding else len(value.fields))
    n_methods = drv.uint(wire.META,
                         DECODE if decoding else len(value.methods))
    fields = [field_definition(drv,
                               DECODE if decoding else value.fields[i])
              for i in range(n_fields)]
    methods = [
        method_definition(drv,
                          DECODE if decoding else value.methods[i])
        for i in range(n_methods)]
    if decoding:
        return ir.ClassDefinition(flags, this_class, super_class,
                                  interfaces, fields, methods)
    return value


def archive(drv, value):
    """The whole archive: a class count on META, then each class.

    ``drv.class_boundary(i)`` fires after each class — a no-op on
    every driver except the layout sizing sub-pass, which snapshots
    per-stream offsets there (see :mod:`repro.pack.spool`).
    """
    count = drv.uint(wire.META,
                     DECODE if value is DECODE else len(value.classes))
    classes = []
    for i in range(count):
        classes.append(class_definition(
            drv, DECODE if value is DECODE else value.classes[i]))
        drv.class_boundary(i)
    if value is DECODE:
        return ir.Archive(classes)
    return value
