"""Options controlling the packed wire format."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Codec execution backends.  Both produce byte-identical archives;
#: ``compiled`` runs the specialized closures emitted by
#: :mod:`repro.pack.codec_core.compile`, ``interpreted`` runs the
#: reference drivers in :mod:`repro.pack.codec_core.driver`.
CODEC_BACKENDS = ("interpreted", "compiled")

#: Pseudo-scheme: score the Table-3 scheme matrix with the count
#: driver (a no-bytes dry run) and pack with the predicted winner,
#: recording the choice in the archive header.  Resolved to a concrete
#: scheme by :mod:`repro.pack.select` before any codec runs.
AUTO_SCHEME = "auto"


@dataclass(frozen=True)
class PackOptions:
    """Configuration for :func:`repro.pack.pack_archive`.

    The defaults are the paper's final configuration: move-to-front
    references with transients and use-context (Section 5), stack-state
    opcode collapsing (Section 7.1), whole-archive sharing, and zlib
    entropy coding.
    """

    #: Reference scheme: simple | basic | freq | cache | mtf (Table 3),
    #: or ``auto`` — pick the smallest per archive (see
    #: :mod:`repro.pack.select`).
    scheme: str = "mtf"
    #: MTF variant: separate queues per (kind, top-two stack types).
    use_context: bool = True
    #: MTF variant: objects referenced exactly once are not enqueued.
    transients: bool = True
    #: Compute approximate stack state and collapse opcode families.
    stack_state: bool = True
    #: Run zlib over each stream (Table 5's "not gzip'd" turns it off).
    compress: bool = True
    #: zlib compression level.
    zlib_level: int = 9
    #: Seed the MTF coders with a standard dictionary of runtime names
    #: (the Section 14 "preloaded references" extension; MTF only).
    preload: bool = False
    #: Seed for the skiplist height PRNG (affects performance only).
    seed: int = 0
    #: Codec execution backend: interpreted | compiled.  Selects *how*
    #: the wire spec runs, never *what* it emits — the packed bytes are
    #: identical either way (see docs/PERFORMANCE.md).
    codec_backend: str = "compiled"
    #: Record the scheme variant in the archive header so unpack needs
    #: no side channel.  Set by ``scheme="auto"`` resolution; explicit
    #: packs leave it off, keeping their bytes identical to every
    #: pre-extension archive (and to the golden fixtures).
    record_scheme: bool = False
    #: Fraction of the reference trace ``--scheme=auto`` scoring
    #: replays through each candidate (1.0: the full trace).  Lower
    #: rates cut the ~3-5x scoring overhead proportionally; the keep
    #: mask is seeded and shared across candidates so the comparison
    #: stays apples-to-apples and the selection stays deterministic.
    #: Affects which scheme ``auto`` picks, never how a picked scheme
    #: encodes.
    auto_sample: float = 1.0
    #: Approximate encode-side memory target in bytes.  When set, the
    #: compressor writes through spill-to-disk stream buffers
    #: (:mod:`repro.pack.spool`): the count pass prices every stream,
    #: a window plan keeps small streams resident and spills the big
    #: ones, and serialization streams through temp files.  The packed
    #: bytes are identical to the unbounded path — this knob trades
    #: speed for a bounded resident set, never output.  ``None`` (the
    #: default) keeps everything in memory.
    memory_budget: Optional[int] = None

    def validate(self) -> "PackOptions":
        from ..errors import ReproError
        from ..refs.schemes import SCHEME_NAMES

        if self.scheme != AUTO_SCHEME and self.scheme not in SCHEME_NAMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; one of "
                f"{SCHEME_NAMES + [AUTO_SCHEME]}")
        if self.codec_backend not in CODEC_BACKENDS:
            raise ReproError(
                f"unknown codec backend {self.codec_backend!r}; "
                f"one of {list(CODEC_BACKENDS)}")
        if not 0.0 < self.auto_sample <= 1.0:
            raise ReproError(
                f"auto_sample must be in (0, 1], got {self.auto_sample}")
        if self.memory_budget is not None and self.memory_budget < 1:
            raise ReproError(
                f"memory_budget must be a positive byte count, got "
                f"{self.memory_budget}")
        return self


#: The Table 3 experiment matrix: column label -> options.
TABLE3_VARIANTS = {
    "Simple": PackOptions(scheme="simple", use_context=False,
                          transients=False),
    "Basic": PackOptions(scheme="basic", use_context=False,
                         transients=False),
    "Freq": PackOptions(scheme="freq", use_context=False,
                        transients=False),
    "Cache": PackOptions(scheme="cache", use_context=False,
                         transients=False),
    "MTF Basic": PackOptions(scheme="mtf", use_context=False,
                             transients=False),
    "MTF Transients": PackOptions(scheme="mtf", use_context=False,
                                  transients=True),
    "MTF Use Context": PackOptions(scheme="mtf", use_context=True,
                                   transients=False),
    "MTF Transients and Context": PackOptions(scheme="mtf",
                                              use_context=True,
                                              transients=True),
}
