"""The packed-archive decompressor (decoder side of the wire format).

Mirrors :mod:`repro.pack.compressor` operation for operation: the same
traversal order, the same reference-coder state machines, and the same
stack-state computation, so every index decoded refers to exactly the
object the encoder meant.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..classfile import mutf8
from ..classfile.classfile import ClassFile
from ..classfile.opcodes import OPCODES, OperandKind as K
from ..coding.streams import StreamCursor, StreamReader
from ..bytecode_codec.stack_state import StackTracker
from ..ir import model as ir
from ..ir.reconstruct import reconstruct_class
from ..refs.schemes import make_codec
from . import wire
from ..bytecode_codec.apply import (
    OPCODES_BY_NAME,
    apply_instruction_state,
)
from ..observe import recorder as observe
from .compressor import SPACES
from .options import PackOptions
from .sizes import ir_instruction_size


class UnpackError(ValueError):
    """Raised when packed bytes are malformed."""


class Decompressor:
    """Decodes packed bytes back into class definitions / class files."""

    def __init__(self, options: PackOptions):
        self.options = options.validate()
        self.interner = ir.Interner()
        self._decoders = {}
        for index, (space, _) in enumerate(sorted(SPACES.items())):
            _, decoder = make_codec(
                options.scheme, use_context=options.use_context,
                transients=options.transients, seed=options.seed + index)
            self._decoders[space] = decoder
        if options.preload:
            from .preload import preload_coders

            preload_coders(self._decoders, self.interner)
        self.streams: Optional[StreamReader] = None

    # -- entry points ----------------------------------------------------

    def unpack_ir(self, data: bytes) -> ir.Archive:
        if len(data) < 6:
            raise UnpackError("truncated packed archive")
        magic = struct.unpack(">I", data[:4])[0]
        if magic != wire.MAGIC:
            raise UnpackError(f"bad magic {magic:#x}")
        version = data[4]
        if version != wire.VERSION:
            raise UnpackError(f"unsupported version {version}")
        compressed = bool(data[5])
        recorder = observe.current()
        with recorder.span("inflate", bytes=len(data)):
            self.streams = StreamReader(data[6:], compressed=compressed)
        with recorder.span("decode"):
            count = self._stream(wire.META).uvarint()
            classes = [self._decode_class() for _ in range(count)]
        metrics = recorder.metrics
        if metrics is not None:
            metrics.count("unpack.classes", count)
        return ir.Archive(classes)

    def unpack(self, data: bytes) -> List[ClassFile]:
        archive = self.unpack_ir(data)
        with observe.current().span("reconstruct"):
            return [reconstruct_class(definition)
                    for definition in archive.classes]

    # -- plumbing ------------------------------------------------------------

    _NO_CONTEXT = ("-", "-")

    def _stream(self, name: str) -> StreamCursor:
        return self.streams.stream(name)

    def _ref(self, space: str, kind: str,
             stack_context: Tuple[str, str]) -> Tuple[bool, object]:
        decoder = self._decoders[space]
        return decoder.decode(self._stream(SPACES[space]),
                              (kind, stack_context))

    def _register(self, space: str, kind: str,
                  stack_context: Tuple[str, str], value: object) -> object:
        self._decoders[space].register((kind, stack_context), value)
        return value

    def _int(self, stream: str, signed: bool = False) -> int:
        cursor = self._stream(stream)
        return cursor.svarint() if signed else cursor.uvarint()

    def _u8(self, stream: str) -> int:
        return self._stream(stream).u8()

    def _raw(self, stream: str, length: int) -> bytes:
        return self._stream(stream).raw(length)

    def _read_text(self, len_stream: str, chars_stream: str) -> str:
        length = self._int(len_stream)
        return mutf8.decode(self._raw(chars_stream, length))

    # -- shared objects ------------------------------------------------------

    def _decode_package(self) -> ir.PackageName:
        is_new, value = self._ref("package", "package", self._NO_CONTEXT)
        if not is_new:
            return value
        package = self.interner.package(
            self._read_text(wire.STR_PKG_LEN, wire.STR_PKG_CHARS))
        self._register("package", "package", self._NO_CONTEXT, package)
        return package

    def _decode_simple(self) -> ir.SimpleClassName:
        is_new, value = self._ref("simple", "simple", self._NO_CONTEXT)
        if not is_new:
            return value
        simple = self.interner.simple(
            self._read_text(wire.STR_CLS_LEN, wire.STR_CLS_CHARS))
        self._register("simple", "simple", self._NO_CONTEXT, simple)
        return simple

    def _decode_class_ref(self) -> ir.ClassRef:
        is_new, value = self._ref("class", "class", self._NO_CONTEXT)
        if not is_new:
            return value
        package = self._decode_package()
        simple = self._decode_simple()
        ref = ir.ClassRef(package, simple)
        ref = self.interner.class_ref(ref.internal_name)
        self._register("class", "class", self._NO_CONTEXT, ref)
        return ref

    def _decode_type_ref(self) -> ir.TypeRef:
        dims = self._int(wire.SHAPE)
        tag = self._u8(wire.SHAPE)
        if tag == 0:
            base: object = self._decode_class_ref()
            descriptor = "[" * dims + f"L{base.internal_name};"
        else:
            descriptor = "[" * dims + ir.PRIMITIVE_CHARS[tag]
        return self.interner.type_ref(descriptor)

    def _decode_method_name(self) -> ir.MethodName:
        is_new, value = self._ref("methodname", "methodname",
                                  self._NO_CONTEXT)
        if not is_new:
            return value
        name = self.interner.method_name(
            self._read_text(wire.STR_MNAME_LEN, wire.STR_MNAME_CHARS))
        self._register("methodname", "methodname", self._NO_CONTEXT, name)
        return name

    def _decode_field_name(self) -> ir.FieldName:
        is_new, value = self._ref("fieldname", "fieldname",
                                  self._NO_CONTEXT)
        if not is_new:
            return value
        name = self.interner.field_name(
            self._read_text(wire.STR_FNAME_LEN, wire.STR_FNAME_CHARS))
        self._register("fieldname", "fieldname", self._NO_CONTEXT, name)
        return name

    def _decode_method_ref(self, kind: str,
                           stack_context: Tuple[str, str]) -> ir.MethodRef:
        is_new, value = self._ref("method", kind, stack_context)
        if not is_new:
            return value
        owner = self._decode_class_ref()
        name = self._decode_method_name()
        return_type = self._decode_type_ref()
        arg_count = self._int(wire.SHAPE)
        args = tuple(self._decode_type_ref() for _ in range(arg_count))
        descriptor = "(" + "".join(a.descriptor for a in args) + ")" + \
            return_type.descriptor
        ref = self.interner.method_ref(owner.internal_name, name.name,
                                       descriptor)
        self._register("method", kind, stack_context, ref)
        return ref

    def _decode_field_ref(self, kind: str) -> ir.FieldRef:
        is_new, value = self._ref("field", kind, self._NO_CONTEXT)
        if not is_new:
            return value
        owner = self._decode_class_ref()
        name = self._decode_field_name()
        type_ref = self._decode_type_ref()
        ref = self.interner.field_ref(owner.internal_name, name.name,
                                      type_ref.descriptor)
        self._register("field", kind, self._NO_CONTEXT, ref)
        return ref

    def _decode_const(self, kind: str) -> ir.ConstValue:
        if kind == "int":
            return ir.ConstValue("int", self._int(wire.CONST_INT,
                                                  signed=True))
        if kind == "long":
            return ir.ConstValue("long", self._int(wire.CONST_LONG,
                                                   signed=True))
        if kind == "float":
            bits = struct.unpack(">I", self._raw(wire.CONST_FLOAT, 4))[0]
            return ir.ConstValue("float", bits)
        if kind == "double":
            bits = struct.unpack(">Q", self._raw(wire.CONST_DOUBLE, 8))[0]
            return ir.ConstValue("double", bits)
        if kind == "string":
            is_new, value = self._ref("string", "string", self._NO_CONTEXT)
            if not is_new:
                return ir.ConstValue("string", value)
            text = self._read_text(wire.STR_CONST_LEN, wire.STR_CONST_CHARS)
            self._register("string", "string", self._NO_CONTEXT, text)
            return ir.ConstValue("string", text)
        raise UnpackError(f"unknown constant kind {kind}")

    # -- class structure ---------------------------------------------------

    def _decode_class(self) -> ir.ClassDefinition:
        this_class = self._decode_class_ref()
        access_flags = self._int(wire.META)
        super_class = None
        if access_flags & ir.FLAG_HAS_SUPER:
            super_class = self._decode_class_ref()
        interfaces = [self._decode_class_ref()
                      for _ in range(self._int(wire.META))]
        field_count = self._int(wire.META)
        method_count = self._int(wire.META)
        fields = [self._decode_field() for _ in range(field_count)]
        methods = [self._decode_method() for _ in range(method_count)]
        return ir.ClassDefinition(access_flags, this_class, super_class,
                                  interfaces, fields, methods)

    def _decode_field(self) -> ir.FieldDefinition:
        access_flags = self._int(wire.META)
        ref = self._decode_field_ref("field.def")
        constant = None
        if access_flags & ir.FLAG_HAS_CONSTANT:
            constant = self._decode_const(
                wire.constant_kind_for_field(ref.type.descriptor))
        return ir.FieldDefinition(access_flags, ref, constant)

    def _decode_method(self) -> ir.MethodDefinition:
        access_flags = self._int(wire.META)
        ref = self._decode_method_ref("method.def", self._NO_CONTEXT)
        exceptions: List[ir.ClassRef] = []
        if access_flags & ir.FLAG_HAS_EXCEPTIONS:
            exceptions = [self._decode_class_ref()
                          for _ in range(self._int(wire.META))]
        code = None
        if access_flags & ir.FLAG_HAS_CODE:
            code = self._decode_code()
        return ir.MethodDefinition(access_flags, ref, code, exceptions)

    # -- bytecode ------------------------------------------------------------

    def _decode_code(self) -> ir.IRCode:
        max_stack = self._int(wire.META)
        max_locals = self._int(wire.META)
        instruction_count = self._int(wire.META)
        handler_count = self._int(wire.META)
        handlers = []
        for _ in range(handler_count):
            start = self._int(wire.CODE_EXC)
            end = start + self._int(wire.CODE_EXC)
            handler_pc = self._int(wire.CODE_EXC)
            catch = None
            if self._u8(wire.CODE_EXC):
                catch = self._decode_class_ref()
            handlers.append(ir.IRExceptionHandler(start, end, handler_pc,
                                                  catch))
        tracker = StackTracker()
        use_state = self.options.stack_state
        instructions: List[ir.IRInstruction] = []
        offset = 0
        for _ in range(instruction_count):
            if use_state:
                tracker.at_instruction(offset)
            instruction = self._decode_instruction(tracker, offset,
                                                   use_state)
            if use_state:
                apply_instruction_state(tracker, instruction, offset)
            offset += ir_instruction_size(instruction, offset)
            instructions.append(instruction)
        return ir.IRCode(max_stack, max_locals, instructions, handlers)

    def _decode_instruction(self, tracker: StackTracker, offset: int,
                            use_state: bool) -> ir.IRInstruction:
        opcode_byte = self._u8(wire.CODE_OPCODES)
        pseudo = wire.PSEUDO_LDC_REVERSE.get(opcode_byte)
        if pseudo is not None:
            const_kind, wide_const = pseudo
            const = self._decode_const(const_kind)
            if const_kind in ("long", "double"):
                opcode = wire.LDC2_W_OPCODE
            elif wide_const:
                opcode = wire.LDC_W_OPCODE
            else:
                opcode = wire.LDC_OPCODE
            return ir.IRInstruction(opcode, const=const,
                                    wide_const=wide_const)
        spec = OPCODES.get(opcode_byte)
        if spec is None:
            raise UnpackError(f"bad opcode byte {opcode_byte:#x}")
        mnemonic = tracker.expand(spec.mnemonic) if use_state \
            else spec.mnemonic
        opcode = OPCODES_BY_NAME[mnemonic]
        spec = OPCODES[opcode]
        instruction = ir.IRInstruction(opcode)
        if spec.is_switch:
            instruction.switch_default = offset + self._int(
                wire.CODE_BRANCHES, signed=True)
            if spec.mnemonic == "tableswitch":
                low = self._int(wire.CODE_INTS, signed=True)
                count = self._int(wire.CODE_INTS)
                instruction.switch_low = low
                instruction.switch_pairs = [
                    (low + i,
                     offset + self._int(wire.CODE_BRANCHES, signed=True))
                    for i in range(count)]
            else:
                count = self._int(wire.CODE_INTS)
                pairs = []
                for _ in range(count):
                    match = self._int(wire.CODE_INTS, signed=True)
                    target = offset + self._int(wire.CODE_BRANCHES,
                                                signed=True)
                    pairs.append((match, target))
                instruction.switch_pairs = pairs
            return instruction
        for kind in spec.operands:
            if kind == K.LOCAL:
                instruction.local = self._int(wire.CODE_REGS)
            elif kind in (K.SBYTE, K.SSHORT, K.IINC_DELTA):
                instruction.immediate = self._int(wire.CODE_INTS,
                                                  signed=True)
            elif kind in (K.BRANCH2, K.BRANCH4):
                instruction.target = offset + self._int(
                    wire.CODE_BRANCHES, signed=True)
            elif kind == K.ATYPE:
                instruction.atype = self._int(wire.CODE_INTS)
            elif kind == K.DIMS:
                instruction.dims = self._int(wire.CODE_INTS)
            elif kind in (K.COUNT, K.ZERO):
                pass
            elif kind == K.CP_FIELD:
                instruction.field_ref = self._decode_field_ref(
                    wire.FIELD_KINDS[opcode])
            elif kind in (K.CP_METHOD, K.CP_IMETHOD):
                context = tracker.top_categories() if use_state \
                    else ("-", "-")
                instruction.method_ref = self._decode_method_ref(
                    wire.INVOKE_KINDS[opcode], context)
            elif kind == K.CP_CLASS:
                if self._u8(wire.SHAPE):
                    instruction.type_ref = self._decode_type_ref()
                else:
                    instruction.class_ref = self._decode_class_ref()
            else:  # pragma: no cover - exhaustive over kinds
                raise UnpackError(f"unhandled operand kind {kind}")
        return instruction
