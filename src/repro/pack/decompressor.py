"""The packed-archive decompressor: a façade over the codec core.

Decoding runs the *same* codec spec the compressor ran (selected by
the header's version byte through the wire-spec registry), so the
traversals agree by construction.  Which execution backend runs the
spec — the interpreted walker or the compiled closures — is
``options.codec_backend``'s choice, dispatched inside
:func:`codec_core.decode_archive`; the bytes accepted and the archive
produced are identical either way (see ``docs/PERFORMANCE.md``).
This module owns the header, the error boundary (malformed bytes
always surface as :class:`~repro.errors.UnpackError`), and
reconstruction.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Iterator, List, Optional, Tuple

from ..classfile.classfile import ClassFile
from ..coding.streams import StreamReader
from ..errors import CORRUPTION_ERRORS, ReproError, UnpackError
from ..ir import model as ir
from ..ir.reconstruct import reconstruct_class
from ..observe import recorder as observe
from . import codec_core, wire
from .options import AUTO_SCHEME

__all__ = ["Decompressor", "UnpackError", "recorded_scheme"]

_CORRUPTION_ERRORS = CORRUPTION_ERRORS


def _parse_flags(flags: int) -> Tuple[bool, int]:
    """Split the header flags byte -> (compressed, scheme_tag)."""
    if flags & wire.FLAG_RESERVED:
        raise UnpackError(
            f"reserved header flag bits set ({flags:#04x}): corrupt "
            "archive or a future wire extension")
    scheme_tag = flags >> wire.SCHEME_TAG_SHIFT
    if scheme_tag and scheme_tag not in wire.SCHEME_TAGS:
        raise UnpackError(
            f"unknown recorded-scheme tag {scheme_tag}")
    return bool(flags & wire.FLAG_COMPRESS), scheme_tag


def recorded_scheme(data: bytes) -> Optional[Tuple[str, bool, bool]]:
    """The scheme variant an archive's header records, or None.

    ``(scheme, use_context, transients)`` when the flags byte carries
    a tag (``--scheme=auto`` output); None for out-of-band archives
    and for containers whose flags byte has another meaning (deltas).
    """
    if len(data) < 6:
        raise UnpackError("truncated packed archive")
    magic = struct.unpack(">I", data[:4])[0]
    if magic != wire.MAGIC:
        raise UnpackError(f"bad magic {magic:#x}")
    spec = codec_core.spec_for_version(data[4])
    if spec.container != "archive":
        return None
    _, scheme_tag = _parse_flags(data[5])
    if not scheme_tag:
        return None
    return wire.SCHEME_TAGS[scheme_tag]


class Decompressor:
    """Decodes packed bytes back into class definitions / class files.

    The reference coders are built lazily, once the header is parsed:
    an archive whose flags byte records its scheme
    (``--scheme=auto`` output) overrides the scheme/variant options
    it is opened with, so such archives need no side channel.  The
    effective options actually decoded with — after any header
    override — are left on ``effective_options``.
    """

    def __init__(self, options):
        self.options = options.validate()
        self.interner = ir.Interner()
        self.streams: Optional[StreamReader] = None
        #: Options after applying the header's recorded scheme (set by
        #: unpack_ir); equal to ``options`` for out-of-band archives.
        self.effective_options = None
        #: The header-recorded scheme variant, or None.
        self.recorded: Optional[Tuple[str, bool, bool]] = None

    def _resolve_options(self, scheme_tag: int):
        if scheme_tag:
            self.recorded = wire.SCHEME_TAGS[scheme_tag]
            scheme, use_context, transients = self.recorded
            return dataclasses.replace(
                self.options, scheme=scheme, use_context=use_context,
                transients=transients, record_scheme=True)
        if self.options.scheme == AUTO_SCHEME:
            raise UnpackError(
                "scheme 'auto' requested but this archive does not "
                "record its scheme; pass the scheme it was packed with")
        return self.options

    def _make_coders(self, options):
        coders = codec_core.make_space_coders(options)
        if options.preload:
            from .preload import preload_coders

            preload_coders(coders, self.interner)
        return coders

    def _open(self, data: bytes):
        """Parse the header, inflate the container, build the coders.

        Returns ``(spec, options, coders)`` with ``self.streams`` /
        ``self.effective_options`` populated.  Shared by the
        whole-archive and iterator entry points; raises
        :class:`UnpackError` eagerly on malformed headers.
        """
        try:
            if len(data) < 6:
                raise UnpackError("truncated packed archive")
            magic = struct.unpack(">I", data[:4])[0]
            if magic != wire.MAGIC:
                raise UnpackError(f"bad magic {magic:#x}")
            spec = codec_core.spec_for_version(data[4])
            if spec.container != "archive":
                raise UnpackError(
                    f"version {spec.version} is a {spec.container} "
                    "container, not a packed archive; apply it with "
                    "repro patch")
            compressed, scheme_tag = _parse_flags(data[5])
            options = self._resolve_options(scheme_tag)
            self.effective_options = options
            coders = self._make_coders(options)
            with observe.current().span("inflate", bytes=len(data)):
                self.streams = StreamReader(data[6:],
                                            compressed=compressed)
            return spec, options, coders
        except ReproError:
            raise
        except _CORRUPTION_ERRORS as exc:
            raise UnpackError(f"corrupt packed archive: {exc}") from exc

    def unpack_ir(self, data: bytes) -> ir.Archive:
        spec, options, coders = self._open(data)
        try:
            archive = codec_core.decode_archive(
                options, coders, self.streams, self.interner,
                spec=spec)
        except ReproError:
            raise
        except _CORRUPTION_ERRORS as exc:
            raise UnpackError(f"corrupt packed archive: {exc}") from exc
        metrics = observe.current().metrics
        if metrics is not None:
            metrics.count("unpack.classes", len(archive.classes))
        return archive

    def unpack(self, data: bytes) -> List[ClassFile]:
        archive = self.unpack_ir(data)
        with observe.current().span("reconstruct"):
            try:
                return [reconstruct_class(definition)
                        for definition in archive.classes]
            except ReproError:
                raise
            except _CORRUPTION_ERRORS as exc:
                raise UnpackError(
                    f"corrupt packed archive: {exc}") from exc

    def iter_ir(self, data: bytes) -> Iterator[ir.ClassDefinition]:
        """Decode one class definition at a time, in §11 load order.

        Header parsing and container inflation happen eagerly (a
        malformed header raises before any iteration); per-class
        corruption surfaces as :class:`UnpackError` from ``next()``.
        The whole-archive IR is never materialized — each definition
        is yielded as soon as its streams' bytes are consumed, and the
        ``unpack.classes`` metric is emitted at exhaustion.  Decode
        time accumulates in one ``decode`` trace span (an
        accumulator — no stack span is held open across a yield).
        """
        spec, options, coders = self._open(data)
        iterator = codec_core.iter_decode_archive(
            options, coders, self.streams, self.interner, spec=spec)
        decoding = observe.current().accumulator("decode")

        def generate():
            count = 0
            while True:
                try:
                    with decoding:
                        definition = next(iterator)
                except StopIteration:
                    break
                except ReproError:
                    raise
                except _CORRUPTION_ERRORS as exc:
                    raise UnpackError(
                        f"corrupt packed archive: {exc}") from exc
                count += 1
                yield definition
            metrics = observe.current().metrics
            if metrics is not None:
                metrics.count("unpack.classes", count)

        return generate()

    def iter_classes(self, data: bytes) -> Iterator[ClassFile]:
        """Reconstruct one :class:`ClassFile` at a time (§11 order).

        The streaming counterpart of :meth:`unpack`: consumers that
        drop each class after use (``repro unpack``'s jar writer,
        ``repro stats`` attribution) hold a single class instead of
        the archive.
        """
        definitions = self.iter_ir(data)
        reconstructing = observe.current().accumulator("reconstruct")

        def generate():
            for definition in definitions:
                try:
                    with reconstructing:
                        classfile = reconstruct_class(definition)
                except ReproError:
                    raise
                except _CORRUPTION_ERRORS as exc:
                    raise UnpackError(
                        f"corrupt packed archive: {exc}") from exc
                yield classfile

        return generate()
