"""The packed-archive decompressor: a façade over the codec core.

Decoding runs the *same* codec spec the compressor ran (selected by
the header's version byte through the wire-spec registry), so the
traversals agree by construction.  Which execution backend runs the
spec — the interpreted walker or the compiled closures — is
``options.codec_backend``'s choice, dispatched inside
:func:`codec_core.decode_archive`; the bytes accepted and the archive
produced are identical either way (see ``docs/PERFORMANCE.md``).
This module owns the header, the error boundary (malformed bytes
always surface as :class:`~repro.errors.UnpackError`), and
reconstruction.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from ..classfile.classfile import ClassFile
from ..coding.streams import StreamReader
from ..errors import CORRUPTION_ERRORS, ReproError, UnpackError
from ..ir import model as ir
from ..ir.reconstruct import reconstruct_class
from ..observe import recorder as observe
from . import codec_core, wire

__all__ = ["Decompressor", "UnpackError"]

_CORRUPTION_ERRORS = CORRUPTION_ERRORS


class Decompressor:
    """Decodes packed bytes back into class definitions / class files."""

    def __init__(self, options):
        self.options = options.validate()
        self.interner = ir.Interner()
        self._coders = codec_core.make_space_coders(options)
        if options.preload:
            from .preload import preload_coders

            preload_coders(self._coders, self.interner)
        self.streams: Optional[StreamReader] = None

    def unpack_ir(self, data: bytes) -> ir.Archive:
        try:
            if len(data) < 6:
                raise UnpackError("truncated packed archive")
            magic = struct.unpack(">I", data[:4])[0]
            if magic != wire.MAGIC:
                raise UnpackError(f"bad magic {magic:#x}")
            spec = codec_core.spec_for_version(data[4])
            if spec.container != "archive":
                raise UnpackError(
                    f"version {spec.version} is a {spec.container} "
                    "container, not a packed archive; apply it with "
                    "repro patch")
            compressed = bool(data[5])
            with observe.current().span("inflate", bytes=len(data)):
                self.streams = StreamReader(data[6:],
                                            compressed=compressed)
            archive = codec_core.decode_archive(
                self.options, self._coders, self.streams, self.interner,
                spec=spec)
        except ReproError:
            raise
        except _CORRUPTION_ERRORS as exc:
            raise UnpackError(f"corrupt packed archive: {exc}") from exc
        metrics = observe.current().metrics
        if metrics is not None:
            metrics.count("unpack.classes", len(archive.classes))
        return archive

    def unpack(self, data: bytes) -> List[ClassFile]:
        archive = self.unpack_ir(data)
        with observe.current().span("reconstruct"):
            try:
                return [reconstruct_class(definition)
                        for definition in archive.classes]
            except ReproError:
                raise
            except _CORRUPTION_ERRORS as exc:
                raise UnpackError(
                    f"corrupt packed archive: {exc}") from exc
