"""Spill-to-disk stream writing for memory-bounded packing.

The paper's encoder is two-pass by construction: the count pass sizes
every stream before a byte is emitted.  This module exploits that
structure to bound encode-side memory.  A :class:`SpoolStreamSet` is a
drop-in :class:`~repro.coding.streams.StreamSet` whose streams keep a
bounded in-memory window and spill overflow to anonymous temp files;
:func:`plan_windows` turns the count pass's exact per-stream sizes
(measured by :class:`ArchiveLayout` against a
:class:`~repro.coding.streams.SizingStreamSet`) into a window
allocation that keeps small streams fully resident and splits the
remaining budget across the big ones.  Finalization streams the
container out through :meth:`SpoolStreamSet.serialize_to`, which
replicates :meth:`StreamSet.serialize` byte-for-byte (same frame
layout, same whole-vs-per-stream contest, chunked
``zlib.compressobj`` in place of one-shot ``zlib.compress`` — Python's
zlib guarantees identical output for identical input and level).

:class:`BlobStore` / :class:`BlobMap` apply the same idea to triage:
artifact entries above the window threshold live in one shared temp
file as ``(offset, length)`` handles instead of resident bytes.
"""

from __future__ import annotations

import io
import tempfile
import zlib
from collections.abc import Mapping, MutableMapping
from typing import Dict, Iterator, List, Union

from ..coding.streams import StreamSet, StreamWriter
from ..coding.varint import write_uvarint
from ..observe import recorder as _observe

#: Read/write granularity for spill files.
SPOOL_CHUNK = 64 * 1024

#: Smallest useful per-stream window: below this the per-byte flush
#: overhead swamps any memory saving.
MIN_WINDOW = 256


class SpoolBuffer:
    """A ``bytearray``-shaped buffer with a bounded in-memory window.

    Speaks exactly the surface the codec writes through (``append`` /
    ``extend`` / ``__len__``): once the window reaches
    ``window_bytes`` it is flushed wholesale to a lazily created
    anonymous temp file.  Reads happen only at finalize, via
    re-iterable :meth:`chunks`.
    """

    __slots__ = ("window_bytes", "_window", "_file", "_spilled")

    def __init__(self, window_bytes: int):
        if window_bytes < 1:
            raise ValueError(f"window must be >= 1 byte, got {window_bytes}")
        self.window_bytes = window_bytes
        self._window = bytearray()
        self._file = None
        self._spilled = 0

    def __len__(self) -> int:
        return self._spilled + len(self._window)

    @property
    def spilled(self) -> int:
        """Bytes flushed to disk so far."""
        return self._spilled

    def append(self, value: int) -> None:
        self._window.append(value)
        if len(self._window) >= self.window_bytes:
            self._flush()

    def extend(self, data) -> None:
        self._window.extend(data)
        if len(self._window) >= self.window_bytes:
            self._flush()

    def _flush(self) -> None:
        if self._file is None:
            self._file = tempfile.TemporaryFile(prefix="repro-spool-")
        else:
            # chunks() may have moved the file position; spill appends.
            self._file.seek(0, io.SEEK_END)
        self._file.write(self._window)
        self._spilled += len(self._window)
        del self._window[:]

    def chunks(self, chunk_size: int = SPOOL_CHUNK) -> Iterator[bytes]:
        """Yield the buffered bytes in order (spilled file, then window).

        Re-iterable: each call rewinds the spill file.  Do not write
        between chunks of one iteration.
        """
        if self._spilled:
            self._file.seek(0)
            remaining = self._spilled
            while remaining:
                chunk = self._file.read(min(chunk_size, remaining))
                if not chunk:
                    raise ValueError("spool file truncated")
                remaining -= len(chunk)
                yield chunk
        if self._window:
            yield bytes(self._window)

    def getvalue(self) -> bytes:
        return b"".join(self.chunks())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
            self._spilled = 0
        del self._window[:]


class SpoolStreamWriter(StreamWriter):
    """A :class:`StreamWriter` backed by a :class:`SpoolBuffer`."""

    def __init__(self, name: str, window_bytes: int):
        self.name = name
        self.buf = SpoolBuffer(window_bytes)

    def getvalue(self) -> bytes:
        return self.buf.getvalue()


def plan_windows(stream_sizes: Mapping[str, int],
                 budget: int,
                 min_window: int = MIN_WINDOW) -> Dict[str, int]:
    """Allocate per-stream windows from exact sizes (water-filling).

    Streams are visited smallest first; each takes the lesser of its
    full size (plus one byte — the flush trigger is ``>=``, so a
    window equal to the exact size would still spill) and an even
    share of the budget left for the streams not yet placed.  Small
    streams therefore stay fully resident and only the big ones
    spill.  Every window gets at least ``min_window`` bytes, so a
    pathological budget degrades to slow-but-correct, never to
    failure.
    """
    windows: Dict[str, int] = {}
    remaining = budget
    names = sorted(stream_sizes, key=lambda n: (stream_sizes[n], n))
    left = len(names)
    for name in names:
        share = max(min_window, remaining // left)
        window = max(min_window, min(stream_sizes[name] + 1, share))
        windows[name] = window
        remaining -= window
        left -= 1
    return windows


class ArchiveLayout:
    """Per-class per-stream offsets recorded by the count pass.

    The sizing sub-pass (see
    :func:`repro.pack.codec_core.count_references`) replays the encode
    walk against a byte-counting port and calls :meth:`snapshot` at
    every class boundary; ``class_offsets[i][name]`` is the exact byte
    offset of stream ``name`` after class ``i`` has been encoded, and
    :attr:`stream_sizes` holds the final totals the spill planner
    feeds to :func:`plan_windows`.
    """

    __slots__ = ("class_offsets", "stream_sizes")

    def __init__(self):
        self.class_offsets: List[Dict[str, int]] = []
        self.stream_sizes: Dict[str, int] = {}

    def snapshot(self, streams) -> None:
        self.class_offsets.append(streams.raw_sizes())

    def finish(self, stream_sizes: Mapping[str, int]) -> None:
        self.stream_sizes = dict(stream_sizes)

    @property
    def class_count(self) -> int:
        return len(self.class_offsets)

    def class_stream_bytes(self, index: int) -> Dict[str, int]:
        """Bytes each stream grew by while encoding class ``index``."""
        after = self.class_offsets[index]
        before = self.class_offsets[index - 1] if index else {}
        return {name: size - before.get(name, 0)
                for name, size in after.items()
                if size - before.get(name, 0)}


def _copy_file(src, dst, length: int, chunk_size: int = SPOOL_CHUNK) -> None:
    src.seek(0)
    remaining = length
    while remaining:
        data = src.read(min(chunk_size, remaining))
        if not data:
            raise ValueError("truncated spool scratch file")
        dst.write(data)
        remaining -= len(data)


class SpoolStreamSet(StreamSet):
    """A :class:`StreamSet` with bounded-memory streams.

    Construct with the archive-wide ``budget_bytes``; optionally
    install a per-stream window plan (from :func:`plan_windows`, fed
    by the count pass's layout) via :meth:`set_plan` *before* the
    encode pass touches any stream.  Serialization is byte-identical
    to the in-memory path — pinned by the golden fixtures and
    ``tests/test_spool.py``.
    """

    def __init__(self, budget_bytes: int, min_window: int = MIN_WINDOW):
        super().__init__()
        if budget_bytes < 1:
            raise ValueError(f"memory budget must be >= 1, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.min_window = min_window
        self._plan: Dict[str, int] = {}
        # Streams created before (or outside) a plan share the budget
        # pessimistically; the paper's format uses a few dozen streams.
        self._default_window = max(min_window, budget_bytes // 64)

    def set_plan(self, plan: Mapping[str, int]) -> None:
        """Install per-stream windows.  Affects streams created later."""
        self._plan = dict(plan)

    def window_for(self, name: str) -> int:
        return max(self.min_window,
                   self._plan.get(name, self._default_window))

    def stream(self, name: str) -> SpoolStreamWriter:
        writer = self._streams.get(name)
        if writer is None:
            writer = SpoolStreamWriter(name, self.window_for(name))
            self._streams[name] = writer
        return writer

    def _frame_chunks(self) -> Iterator[bytes]:
        """The raw (no-transform) container frame as a chunk sequence.

        Chunk boundaries differ from the in-memory path; the
        concatenated bytes do not (same layout as
        :meth:`StreamSet._frame` with ``transform=None``).
        """
        head = bytearray()
        write_uvarint(head, len(self._streams))
        yield bytes(head)
        for name, writer in self._streams.items():
            head = bytearray()
            name_bytes = name.encode("utf-8")
            write_uvarint(head, len(name_bytes))
            head.extend(name_bytes)
            write_uvarint(head, len(writer))
            yield bytes(head)
            yield from writer.buf.chunks()

    def serialize(self, compress: bool = True, level: int = 9) -> bytes:
        out = io.BytesIO()
        self.serialize_to(out, compress=compress, level=level)
        return out.getvalue()

    def serialize_to(self, out, compress: bool = True, level: int = 9) -> int:
        """Stream the serialized container into ``out``; return its size.

        Both compressed candidates (whole and per-stream — see
        :meth:`StreamSet.serialize`) are built into temp files via
        chunked ``zlib.compressobj``, then the smaller one is copied
        to ``out`` behind its mode byte.  At no point is a whole
        stream, frame, or compressed payload resident in memory.
        """
        recorder = _observe.current()
        if not compress:
            total = out.write(bytes([self.MODE_RAW]))
            for chunk in self._frame_chunks():
                total += out.write(chunk)
            return total

        with recorder.span("zlib.whole"):
            whole_file = tempfile.TemporaryFile(prefix="repro-spool-zw-")
            comp = zlib.compressobj(level)
            whole_len = 0
            for chunk in self._frame_chunks():
                piece = comp.compress(chunk)
                if piece:
                    whole_len += whole_file.write(piece)
            piece = comp.flush()
            if piece:
                whole_len += whole_file.write(piece)

        with recorder.span("zlib.per_stream"):
            per_file = tempfile.TemporaryFile(prefix="repro-spool-zp-")
            scratch = tempfile.TemporaryFile(prefix="repro-spool-zs-")
            per_len = 0
            head = bytearray()
            write_uvarint(head, len(self._streams))
            per_len += per_file.write(bytes(head))
            for name, writer in self._streams.items():
                scratch.seek(0)
                scratch.truncate()
                comp = zlib.compressobj(level)
                compressed_len = 0
                for chunk in writer.buf.chunks():
                    piece = comp.compress(chunk)
                    if piece:
                        compressed_len += scratch.write(piece)
                piece = comp.flush()
                if piece:
                    compressed_len += scratch.write(piece)
                raw_len = len(writer)
                head = bytearray()
                name_bytes = name.encode("utf-8")
                write_uvarint(head, len(name_bytes))
                head.extend(name_bytes)
                if compressed_len < raw_len:
                    head.append(1)
                    write_uvarint(head, compressed_len)
                    per_len += per_file.write(bytes(head))
                    _copy_file(scratch, per_file, compressed_len)
                    per_len += compressed_len
                else:
                    head.append(0)
                    write_uvarint(head, raw_len)
                    per_len += per_file.write(bytes(head))
                    for chunk in writer.buf.chunks():
                        per_len += per_file.write(chunk)
            scratch.close()

        metrics = recorder.metrics
        if metrics is not None:
            metrics.tally("zlib", "whole_bytes", whole_len)
            metrics.tally("zlib", "per_stream_bytes", per_len)
            metrics.count("zlib.mode.whole" if whole_len <= per_len
                          else "zlib.mode.per_stream")
        if whole_len <= per_len:
            per_file.close()
            total = out.write(bytes([self.MODE_WHOLE]))
            _copy_file(whole_file, out, whole_len)
            whole_file.close()
            return total + whole_len
        whole_file.close()
        total = out.write(bytes([self.MODE_PER_STREAM]))
        _copy_file(per_file, out, per_len)
        per_file.close()
        return total + per_len

    def compressed_sizes(self, level: int = 9) -> Dict[str, int]:
        sizes: Dict[str, int] = {}
        for name, writer in self._streams.items():
            comp = zlib.compressobj(level)
            total = 0
            for chunk in writer.buf.chunks():
                total += len(comp.compress(chunk))
            total += len(comp.flush())
            sizes[name] = total
        return sizes

    def spool_stats(self) -> Dict[str, int]:
        """Spill accounting for reports and tests."""
        spilled = {name: w.buf.spilled
                   for name, w in self._streams.items() if w.buf.spilled}
        return {
            "budget_bytes": self.budget_bytes,
            "streams": len(self._streams),
            "spilled_streams": len(spilled),
            "spilled_bytes": sum(spilled.values()),
        }

    def close(self) -> None:
        for writer in self._streams.values():
            writer.buf.close()


class _BlobRef:
    """Handle for a spilled entry: ``(offset, length)`` in the store file."""

    __slots__ = ("offset", "length")

    def __init__(self, offset: int, length: int):
        self.offset = offset
        self.length = length


class BlobStore:
    """A shared spill file for byte blobs above a size threshold.

    ``put`` returns either the bytes themselves (small entries) or a
    :class:`_BlobRef` into one append-only anonymous temp file; ``get``
    resolves either form back to bytes.  Used by triage so nested
    archive entries bigger than the in-memory window cost a file
    handle's worth of RAM instead of their full size.
    """

    def __init__(self, window_bytes: int):
        if window_bytes < 1:
            raise ValueError(f"window must be >= 1 byte, got {window_bytes}")
        self.window_bytes = window_bytes
        self._file = None
        self.spilled_entries = 0
        self.spilled_bytes = 0

    def put(self, data: bytes) -> Union[bytes, _BlobRef]:
        if len(data) < self.window_bytes:
            return data
        if self._file is None:
            self._file = tempfile.TemporaryFile(prefix="repro-blob-")
        self._file.seek(0, io.SEEK_END)
        offset = self._file.tell()
        self._file.write(data)
        self.spilled_entries += 1
        self.spilled_bytes += len(data)
        return _BlobRef(offset, len(data))

    def get(self, ref: Union[bytes, _BlobRef]) -> bytes:
        if isinstance(ref, (bytes, bytearray)):
            return bytes(ref)
        self._file.seek(ref.offset)
        data = self._file.read(ref.length)
        if len(data) != ref.length:
            raise ValueError("truncated blob store file")
        return data

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class BlobMap(MutableMapping):
    """A ``dict[str, bytes]`` view over a :class:`BlobStore`.

    Spilled values are re-read from the store file on access, so
    iterating the map streams entries one at a time instead of
    holding every artifact resident.  Equality materializes both
    sides (tests compare against plain dicts).
    """

    def __init__(self, store: BlobStore):
        self._store = store
        self._refs: Dict[str, Union[bytes, _BlobRef]] = {}

    def __setitem__(self, key: str, data: bytes) -> None:
        self._refs[key] = self._store.put(data)

    def __getitem__(self, key: str) -> bytes:
        return self._store.get(self._refs[key])

    def __delitem__(self, key: str) -> None:
        del self._refs[key]

    def __iter__(self):
        return iter(self._refs)

    def __len__(self) -> int:
        return len(self._refs)

    def __eq__(self, other) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result
