"""The packed wire format: the paper's primary contribution."""

from typing import Dict, List, Optional, Tuple

from ..classfile.classfile import ClassFile
from ..ir.build import build_archive
from ..ir.model import Archive
from ..observe import recorder as _observe
from .compressor import Compressor, pack_archive_ir
from .decompressor import Decompressor, UnpackError, recorded_scheme
from .equivalence import archives_equal, semantic_equal
from .options import AUTO_SCHEME, PackOptions, TABLE3_VARIANTS
from .select import SchemeSelection, select_scheme
from .stats import PackStats, collect_stats

__all__ = [
    "AUTO_SCHEME",
    "Archive",
    "Compressor",
    "Decompressor",
    "PackOptions",
    "PackStats",
    "SchemeSelection",
    "TABLE3_VARIANTS",
    "UnpackError",
    "archives_equal",
    "collect_stats",
    "iter_unpack_archive",
    "pack_archive",
    "pack_archive_ir",
    "pack_archive_to",
    "pack_archive_with_stats",
    "recorded_scheme",
    "select_scheme",
    "semantic_equal",
    "unpack_archive",
]


def pack_archive(classfiles: List[ClassFile],
                 options: Optional[PackOptions] = None) -> bytes:
    """Pack class files into the wire format (order is preserved)."""
    with _observe.current().span("pack"):
        with _observe.current().span("ir.build"):
            archive = build_archive(classfiles)
        data, _ = pack_archive_ir(archive, options)
    return data


def pack_archive_to(classfiles: List[ClassFile], out,
                    options: Optional[PackOptions] = None) -> int:
    """Pack class files straight into the file object ``out``.

    The streaming counterpart of :func:`pack_archive` — byte-identical
    output, returns the byte count written.  With
    ``options.memory_budget`` set, stream buffers spill to temp files
    and serialization streams into ``out``, so the packed archive is
    never resident as one byte string (see :mod:`repro.pack.spool`).
    ``scheme="auto"`` resolves exactly as in :func:`pack_archive_ir`.
    """
    from .select import resolve_options

    with _observe.current().span("pack"):
        with _observe.current().span("ir.build"):
            archive = build_archive(classfiles)
        options, selection = resolve_options(archive, options)
        compressor = Compressor(options)
        compressor.selection = selection
        return compressor.pack_to(archive, out)


def iter_unpack_archive(data: bytes,
                        options: Optional[PackOptions] = None):
    """Decompress one :class:`ClassFile` at a time, in the paper's §11
    eager class-loading order (dependencies precede dependents).

    The streaming counterpart of :func:`unpack_archive`: the archive
    IR is never materialized, so a consumer that drops each class
    after use holds one class instead of the whole archive.  Header
    errors raise immediately; per-class corruption raises
    :class:`UnpackError` from ``next()``.
    """
    return Decompressor(options or PackOptions()).iter_classes(data)


def pack_archive_with_stats(
        classfiles: List[ClassFile],
        options: Optional[PackOptions] = None
) -> Tuple[bytes, PackStats]:
    """Pack and report the per-category compressed sizes (Table 6)."""
    options = options or PackOptions()
    with _observe.current().span("pack"):
        with _observe.current().span("ir.build"):
            archive = build_archive(classfiles)
        data, compressor = pack_archive_ir(archive, options)
        stats = compressor.attribution.stats()
    return data, stats


def unpack_archive(data: bytes,
                   options: Optional[PackOptions] = None
                   ) -> List[ClassFile]:
    """Decompress a packed archive back into conventional class files.

    ``options`` must match the ones used to pack (the paper's format
    is a fixed policy; ours exposes the experiment matrix, so the
    policy travels out of band — the benchmark harness always pairs
    pack/unpack options) — except the reference scheme, when the
    archive records it: ``--scheme=auto`` output carries its chosen
    scheme in the header flags byte, which overrides
    ``options.scheme`` (see :func:`recorded_scheme`).
    """
    with _observe.current().span("unpack"):
        return Decompressor(options or PackOptions()).unpack(data)


def pack_each_separately(classfiles: List[ClassFile],
                         options: Optional[PackOptions] = None) -> int:
    """Total size when every class file is packed as its own archive
    (Table 5's "Packed Separately" row)."""
    total = 0
    for classfile in classfiles:
        total += len(pack_archive([classfile], options))
    return total
