"""Preloaded reference dictionaries (the paper's Section 14 proposal).

    "The only change I can think of that would likely give non-trivial
    improvements would be assume a standard set of preloaded references
    to frequently used package names, classes, method references and
    so on. ... I expect it would help on small archives."

With ``PackOptions(preload=True)`` both sides seed their reference
coders, in a fixed order, with the runtime names every Java program
touches: ``java/lang`` and friends, ``Object``/``String``/...,
``<init>``/``toString``/..., and the hottest concrete method
references (``Object.<init>()V``, the ``StringBuffer`` append chain).
First occurrences of these objects then cost an MTF index instead of
their full spelled-out contents.

Preloading is defined for the MTF scheme only (fixed-id schemes derive
ids from the archive itself); :func:`preload_coders` silently does
nothing for other schemes, matching the paper's framing of this as a
tweak to the final format.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.model import Interner

#: Package names, most common last (the last insert lands at the queue
#: front, so ``java/lang`` is cheapest to reference).
PRELOADED_PACKAGES: List[str] = [
    "javax/swing", "java/awt", "java/net", "java/util", "java/io",
    "java/lang",
]

#: Simple class names (likewise ordered coldest-first).
PRELOADED_SIMPLE_NAMES: List[str] = [
    "Throwable", "Error", "Class", "Thread", "Runnable", "Math",
    "Integer", "Long", "Double", "Float", "Boolean", "Character",
    "Vector", "Hashtable", "Enumeration", "PrintStream", "InputStream",
    "OutputStream", "Exception", "RuntimeException", "System",
    "StringBuffer", "Object", "String",
]

#: Fully qualified classes (package + simple pairs above combine here).
PRELOADED_CLASSES: List[str] = [
    "java/lang/Throwable", "java/lang/Exception",
    "java/lang/RuntimeException", "java/io/PrintStream",
    "java/lang/Math", "java/lang/System", "java/lang/StringBuffer",
    "java/lang/Object", "java/lang/String",
]

PRELOADED_METHOD_NAMES: List[str] = [
    "main", "run", "close", "read", "write", "get", "set", "size",
    "equals", "hashCode", "length", "valueOf", "println", "print",
    "append", "toString", "<clinit>", "<init>",
]

PRELOADED_FIELD_NAMES: List[str] = [
    "err", "out",
]

#: (owner, name, descriptor) for the hottest call targets.
PRELOADED_METHOD_REFS: List[Tuple[str, str, str]] = [
    ("java/lang/String", "valueOf",
     "(I)Ljava/lang/String;"),
    ("java/lang/String", "length", "()I"),
    ("java/io/PrintStream", "println", "(Ljava/lang/String;)V"),
    ("java/lang/StringBuffer", "toString", "()Ljava/lang/String;"),
    ("java/lang/StringBuffer", "append",
     "(I)Ljava/lang/StringBuffer;"),
    ("java/lang/StringBuffer", "append",
     "(Ljava/lang/String;)Ljava/lang/StringBuffer;"),
    ("java/lang/StringBuffer", "<init>", "()V"),
    ("java/lang/Object", "<init>", "()V"),
]

PRELOADED_FIELD_REFS: List[Tuple[str, str, str]] = [
    ("java/lang/System", "err", "Ljava/io/PrintStream;"),
    ("java/lang/System", "out", "Ljava/io/PrintStream;"),
]


def preload_objects(interner: Interner) -> Dict[str, List[object]]:
    """Build the standard objects, per coder space, in seeding order."""
    return {
        "package": [interner.package(name)
                    for name in PRELOADED_PACKAGES],
        "simple": [interner.simple(name)
                   for name in PRELOADED_SIMPLE_NAMES],
        "class": [interner.class_ref(name)
                  for name in PRELOADED_CLASSES],
        "methodname": [interner.method_name(name)
                       for name in PRELOADED_METHOD_NAMES],
        "fieldname": [interner.field_name(name)
                      for name in PRELOADED_FIELD_NAMES],
        "method": [interner.method_ref(owner, name, descriptor)
                   for owner, name, descriptor in PRELOADED_METHOD_REFS],
        "field": [interner.field_ref(owner, name, descriptor)
                  for owner, name, descriptor in PRELOADED_FIELD_REFS],
        "string": [],
    }


def preload_coders(coders: Dict[str, object],
                   interner: Interner) -> None:
    """Seed every MTF coder in ``coders`` with the standard objects.

    ``coders`` maps space name to a dual-mode
    :class:`~repro.refs.base.Coder` (preloads both halves) or a bare
    RefEncoder/RefDecoder half; entries whose scheme has no preload
    support are left untouched.
    """
    objects = preload_objects(interner)
    for space, values in objects.items():
        coder = coders.get(space)
        if coder is None:
            continue
        preload = getattr(coder, "preload", None)
        if preload is not None:
            preload(values)
            continue
        inner = getattr(coder, "_coder", None)
        if inner is None:
            continue  # not an MTF coder; preload is a no-op
        for value in values:
            if not inner.knows(value):
                inner._register(value, value)
