"""Per-category size accounting for packed archives (Table 6).

The final archive compresses all streams in one zlib pass, so exact
per-stream compressed sizes do not exist; attribution uses each
stream's *independent* zlib size, which slightly over-counts shared
context.  Percentages (the numbers Table 6 reports) are computed over
the attributed total, so they remain internally consistent.

Stream names missing from :data:`repro.pack.wire.STREAM_CATEGORIES`
are **not** silently folded into "misc": they land in a dedicated
``unattributed`` category and a warning is logged, so a new stream
added to the wire format without a category assignment shows up
loudly in both the report and the logs.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List

from . import wire

logger = logging.getLogger(__name__)

#: Category for streams with no ``wire.STREAM_CATEGORIES`` entry.
UNATTRIBUTED = "unattributed"

#: Rendering order: the paper's Table 6 columns, then the escape
#: bucket for uncategorized streams.
CATEGORY_ORDER = ["strings", "opcodes", "ints", "refs", "misc",
                  UNATTRIBUTED]


@dataclass
class PackStats:
    """Compressed byte counts per reported category."""

    total: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)
    by_stream: Dict[str, int] = field(default_factory=dict)

    def fraction(self, category: str) -> float:
        if not self.total:
            return 0.0
        return self.by_category.get(category, 0) / self.total

    def render(self, title: str = "per-category breakdown (Table 6)",
               per_stream: bool = False) -> str:
        """The Table-6-style fixed-width report.

        With ``per_stream`` the report appends every stream's bytes,
        largest first — the full attribution behind the categories.
        """
        lines: List[str] = [title]
        categories = list(CATEGORY_ORDER)
        categories += sorted(set(self.by_category) - set(categories))
        for category in categories:
            size = self.by_category.get(category, 0)
            if not size and category not in self.by_category:
                continue
            lines.append(f"  {category:14s} {size:10d} bytes "
                         f"({100.0 * self.fraction(category):5.1f}%)")
        lines.append(f"  {'total':14s} {self.total:10d} bytes")
        if per_stream and self.by_stream:
            lines.append("per-stream attribution (independent zlib):")
            ordered = sorted(self.by_stream.items(),
                             key=lambda item: (-item[1], item[0]))
            for name, size in ordered:
                category = wire.STREAM_CATEGORIES.get(name, UNATTRIBUTED)
                lines.append(f"  {name:20s} {size:10d} bytes "
                             f"[{category}]")
        return "\n".join(lines)


def collect_stats(stream_sizes: Dict[str, int]) -> PackStats:
    """Aggregate per-stream sizes into Table 6 categories.

    Every stream name is expected to appear in
    ``wire.STREAM_CATEGORIES``; unknown names are reported under
    :data:`UNATTRIBUTED` and logged.
    """
    stats = PackStats()
    for name, size in stream_sizes.items():
        stats.by_stream[name] = size
        category = wire.STREAM_CATEGORIES.get(name)
        if category is None:
            logger.warning(
                "stream %r has no entry in wire.STREAM_CATEGORIES; "
                "attributing %d bytes to %r", name, size, UNATTRIBUTED)
            category = UNATTRIBUTED
        stats.by_category[category] = \
            stats.by_category.get(category, 0) + size
        stats.total += size
    return stats
