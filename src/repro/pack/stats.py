"""Per-category size accounting for packed archives (Table 6).

The final archive compresses all streams in one zlib pass, so exact
per-stream compressed sizes do not exist; attribution uses each
stream's *independent* zlib size, which slightly over-counts shared
context.  Percentages (the numbers Table 6 reports) are computed over
the attributed total, so they remain internally consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from . import wire


@dataclass
class PackStats:
    """Compressed byte counts per reported category."""

    total: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)
    by_stream: Dict[str, int] = field(default_factory=dict)

    def fraction(self, category: str) -> float:
        if not self.total:
            return 0.0
        return self.by_category.get(category, 0) / self.total


def collect_stats(stream_sizes: Dict[str, int]) -> PackStats:
    """Aggregate per-stream sizes into Table 6 categories."""
    stats = PackStats()
    for name, size in stream_sizes.items():
        stats.by_stream[name] = size
        category = wire.STREAM_CATEGORIES.get(name, "misc")
        stats.by_category[category] = \
            stats.by_category.get(category, 0) + size
        stats.total += size
    return stats
