"""Wire-format constants shared by the compressor and decompressor."""

from __future__ import annotations

from ..classfile.opcodes import BY_NAME

MAGIC = 0x504A504B  # "PJPK"

#: The wire-format version written into every archive header.  Each
#: version maps to a codec-spec table in
#: :mod:`repro.pack.codec_core.registry`; bumping the format means
#: adding a registry entry, not forking the codec.
VERSION = 1

#: The version byte of the *delta* container (``repro diff`` output).
#: Registered alongside the archive versions so one header parse
#: dispatches both container kinds; the full-archive decompressor
#: refuses it with a pointer at ``repro patch``.
DELTA_VERSION = 2

# -- header flags byte ---------------------------------------------------
#
# Byte 5 of the archive header is a flags byte:
#
#     bit 0     zlib stage on (``PackOptions.compress``)
#     bits 1-3  reserved, must be zero
#     bits 4-7  recorded-scheme tag (0 = not recorded)
#
# Archives written before the flags-byte extension carry exactly 0 or
# 1 here, which parses as tag 0 ("scheme travels out of band") — the
# extension is backward compatible and the golden fixtures are
# untouched.  ``repro pack --scheme=auto`` records the scheme it
# selected so ``repro unpack`` needs no side channel.

#: Bit 0 of the header flags byte: the zlib stage ran.
FLAG_COMPRESS = 0x01
#: Reserved flag bits; nonzero means a corrupt or future header.
FLAG_RESERVED = 0x0E
#: The recorded-scheme tag lives in the high nibble.
SCHEME_TAG_SHIFT = 4

#: Recorded-scheme tags: tag -> (scheme, use_context, transients).
#: One tag per Table-3 column; tag 0 means "not recorded".  The
#: variant flags only alter the wire bytes under ``mtf``, so the four
#: one-pass/two-pass schemes are registered in canonical
#: (``False``, ``False``) form.
SCHEME_TAGS = {
    1: ("simple", False, False),
    2: ("basic", False, False),
    3: ("freq", False, False),
    4: ("cache", False, False),
    5: ("mtf", False, False),
    6: ("mtf", False, True),
    7: ("mtf", True, False),
    8: ("mtf", True, True),
}
SCHEME_TAG_FOR = {variant: tag for tag, variant in SCHEME_TAGS.items()}


def scheme_variant(scheme: str, use_context: bool,
                   transients: bool) -> tuple:
    """The canonical ``(scheme, use_context, transients)`` triple a
    header tag records (variant flags are mtf-only)."""
    if scheme != "mtf":
        return (scheme, False, False)
    return (scheme, bool(use_context), bool(transients))


def pack_flags(compress: bool, scheme_tag: int = 0) -> int:
    """Assemble the header flags byte."""
    if scheme_tag not in SCHEME_TAGS and scheme_tag != 0:
        raise ValueError(f"unknown scheme tag {scheme_tag}")
    return (1 if compress else 0) | (scheme_tag << SCHEME_TAG_SHIFT)

# -- stream names -------------------------------------------------------

META = "meta"
SHAPE = "shape"

REF_PACKAGE = "refs.package"
REF_SIMPLE = "refs.simple"
REF_CLASS = "refs.class"
REF_METHODNAME = "refs.methodname"
REF_FIELDNAME = "refs.fieldname"
REF_METHOD = "refs.method"
REF_FIELD = "refs.field"
REF_STRING = "refs.string"

STR_PKG_LEN = "str.pkg.len"
STR_PKG_CHARS = "str.pkg.chars"
STR_CLS_LEN = "str.cls.len"
STR_CLS_CHARS = "str.cls.chars"
STR_MNAME_LEN = "str.mname.len"
STR_MNAME_CHARS = "str.mname.chars"
STR_FNAME_LEN = "str.fname.len"
STR_FNAME_CHARS = "str.fname.chars"
STR_CONST_LEN = "str.const.len"
STR_CONST_CHARS = "str.const.chars"

CODE_OPCODES = "code.opcodes"
CODE_REGS = "code.regs"
CODE_INTS = "code.ints"
CODE_BRANCHES = "code.branches"
CODE_EXC = "code.exc"

CONST_INT = "const.int"
CONST_LONG = "const.long"
CONST_FLOAT = "const.float"
CONST_DOUBLE = "const.double"

# Delta-container streams (DELTA_VERSION only; see repro.delta).
DELTA_META = "delta.meta"
DELTA_OPS = "delta.ops"
DELTA_BASE = "delta.base"
DELTA_HASHES = "delta.hashes"

#: Object spaces: reference-coder name -> index stream.  The sorted
#: space order also fixes each coder's PRNG seed offset, so it is part
#: of the wire format.
SPACES = {
    "package": REF_PACKAGE,
    "simple": REF_SIMPLE,
    "class": REF_CLASS,
    "methodname": REF_METHODNAME,
    "fieldname": REF_FIELDNAME,
    "method": REF_METHOD,
    "field": REF_FIELD,
    "string": REF_STRING,
}

#: Table 6 category accounting: stream name -> reported category.
STREAM_CATEGORIES = {
    META: "misc",
    SHAPE: "misc",
    REF_PACKAGE: "refs",
    REF_SIMPLE: "refs",
    REF_CLASS: "refs",
    REF_METHODNAME: "refs",
    REF_FIELDNAME: "refs",
    REF_METHOD: "refs",
    REF_FIELD: "refs",
    REF_STRING: "refs",
    STR_PKG_LEN: "strings",
    STR_PKG_CHARS: "strings",
    STR_CLS_LEN: "strings",
    STR_CLS_CHARS: "strings",
    STR_MNAME_LEN: "strings",
    STR_MNAME_CHARS: "strings",
    STR_FNAME_LEN: "strings",
    STR_FNAME_CHARS: "strings",
    STR_CONST_LEN: "strings",
    STR_CONST_CHARS: "strings",
    CODE_OPCODES: "opcodes",
    CODE_REGS: "misc",
    CODE_INTS: "ints",
    CODE_BRANCHES: "misc",
    CODE_EXC: "misc",
    CONST_INT: "ints",
    CONST_LONG: "ints",
    CONST_FLOAT: "misc",
    CONST_DOUBLE: "misc",
    DELTA_META: "misc",
    DELTA_OPS: "misc",
    DELTA_BASE: "misc",
    DELTA_HASHES: "misc",
}

# -- pseudo-opcodes -------------------------------------------------------

#: (const kind, used wide form) -> pseudo-opcode byte in the opcode
#: stream.  Section 3's "LDC Integer"-style pseudo-opcodes: they both
#: route the constant to its typed stream and preserve the original
#: LDC vs LDC_W width so reconstruction keeps instruction sizes.
PSEUDO_LDC = {
    ("int", False): 0xCB,
    ("float", False): 0xCC,
    ("string", False): 0xCD,
    ("int", True): 0xCE,
    ("float", True): 0xCF,
    ("string", True): 0xD0,
    ("long", True): 0xD1,
    ("double", True): 0xD2,
}
PSEUDO_LDC_REVERSE = {v: k for k, v in PSEUDO_LDC.items()}

LDC_OPCODE = BY_NAME["ldc"].opcode
LDC_W_OPCODE = BY_NAME["ldc_w"].opcode
LDC2_W_OPCODE = BY_NAME["ldc2_w"].opcode

#: invoke opcode -> method-reference kind (pool selector).
INVOKE_KINDS = {
    BY_NAME["invokevirtual"].opcode: "method.virtual",
    BY_NAME["invokespecial"].opcode: "method.special",
    BY_NAME["invokestatic"].opcode: "method.static",
    BY_NAME["invokeinterface"].opcode: "method.interface",
}

#: field opcode -> field-reference kind.
FIELD_KINDS = {
    BY_NAME["getfield"].opcode: "field.instance",
    BY_NAME["putfield"].opcode: "field.instance",
    BY_NAME["getstatic"].opcode: "field.static",
    BY_NAME["putstatic"].opcode: "field.static",
}


def constant_kind_for_field(descriptor: str) -> str:
    """Which ConstValue kind a field's ConstantValue carries."""
    if descriptor in ("I", "B", "C", "S", "Z"):
        return "int"
    if descriptor == "J":
        return "long"
    if descriptor == "F":
        return "float"
    if descriptor == "D":
        return "double"
    if descriptor == "Ljava/lang/String;":
        return "string"
    raise ValueError(f"field type {descriptor} cannot carry a constant")
