"""Wire-format constants shared by the compressor and decompressor."""

from __future__ import annotations

from ..classfile.opcodes import BY_NAME

MAGIC = 0x504A504B  # "PJPK"

#: The wire-format version written into every archive header.  Each
#: version maps to a codec-spec table in
#: :mod:`repro.pack.codec_core.registry`; bumping the format means
#: adding a registry entry, not forking the codec.
VERSION = 1

#: The version byte of the *delta* container (``repro diff`` output).
#: Registered alongside the archive versions so one header parse
#: dispatches both container kinds; the full-archive decompressor
#: refuses it with a pointer at ``repro patch``.
DELTA_VERSION = 2

# -- stream names -------------------------------------------------------

META = "meta"
SHAPE = "shape"

REF_PACKAGE = "refs.package"
REF_SIMPLE = "refs.simple"
REF_CLASS = "refs.class"
REF_METHODNAME = "refs.methodname"
REF_FIELDNAME = "refs.fieldname"
REF_METHOD = "refs.method"
REF_FIELD = "refs.field"
REF_STRING = "refs.string"

STR_PKG_LEN = "str.pkg.len"
STR_PKG_CHARS = "str.pkg.chars"
STR_CLS_LEN = "str.cls.len"
STR_CLS_CHARS = "str.cls.chars"
STR_MNAME_LEN = "str.mname.len"
STR_MNAME_CHARS = "str.mname.chars"
STR_FNAME_LEN = "str.fname.len"
STR_FNAME_CHARS = "str.fname.chars"
STR_CONST_LEN = "str.const.len"
STR_CONST_CHARS = "str.const.chars"

CODE_OPCODES = "code.opcodes"
CODE_REGS = "code.regs"
CODE_INTS = "code.ints"
CODE_BRANCHES = "code.branches"
CODE_EXC = "code.exc"

CONST_INT = "const.int"
CONST_LONG = "const.long"
CONST_FLOAT = "const.float"
CONST_DOUBLE = "const.double"

# Delta-container streams (DELTA_VERSION only; see repro.delta).
DELTA_META = "delta.meta"
DELTA_OPS = "delta.ops"
DELTA_BASE = "delta.base"
DELTA_HASHES = "delta.hashes"

#: Object spaces: reference-coder name -> index stream.  The sorted
#: space order also fixes each coder's PRNG seed offset, so it is part
#: of the wire format.
SPACES = {
    "package": REF_PACKAGE,
    "simple": REF_SIMPLE,
    "class": REF_CLASS,
    "methodname": REF_METHODNAME,
    "fieldname": REF_FIELDNAME,
    "method": REF_METHOD,
    "field": REF_FIELD,
    "string": REF_STRING,
}

#: Table 6 category accounting: stream name -> reported category.
STREAM_CATEGORIES = {
    META: "misc",
    SHAPE: "misc",
    REF_PACKAGE: "refs",
    REF_SIMPLE: "refs",
    REF_CLASS: "refs",
    REF_METHODNAME: "refs",
    REF_FIELDNAME: "refs",
    REF_METHOD: "refs",
    REF_FIELD: "refs",
    REF_STRING: "refs",
    STR_PKG_LEN: "strings",
    STR_PKG_CHARS: "strings",
    STR_CLS_LEN: "strings",
    STR_CLS_CHARS: "strings",
    STR_MNAME_LEN: "strings",
    STR_MNAME_CHARS: "strings",
    STR_FNAME_LEN: "strings",
    STR_FNAME_CHARS: "strings",
    STR_CONST_LEN: "strings",
    STR_CONST_CHARS: "strings",
    CODE_OPCODES: "opcodes",
    CODE_REGS: "misc",
    CODE_INTS: "ints",
    CODE_BRANCHES: "misc",
    CODE_EXC: "misc",
    CONST_INT: "ints",
    CONST_LONG: "ints",
    CONST_FLOAT: "misc",
    CONST_DOUBLE: "misc",
    DELTA_META: "misc",
    DELTA_OPS: "misc",
    DELTA_BASE: "misc",
    DELTA_HASHES: "misc",
}

# -- pseudo-opcodes -------------------------------------------------------

#: (const kind, used wide form) -> pseudo-opcode byte in the opcode
#: stream.  Section 3's "LDC Integer"-style pseudo-opcodes: they both
#: route the constant to its typed stream and preserve the original
#: LDC vs LDC_W width so reconstruction keeps instruction sizes.
PSEUDO_LDC = {
    ("int", False): 0xCB,
    ("float", False): 0xCC,
    ("string", False): 0xCD,
    ("int", True): 0xCE,
    ("float", True): 0xCF,
    ("string", True): 0xD0,
    ("long", True): 0xD1,
    ("double", True): 0xD2,
}
PSEUDO_LDC_REVERSE = {v: k for k, v in PSEUDO_LDC.items()}

LDC_OPCODE = BY_NAME["ldc"].opcode
LDC_W_OPCODE = BY_NAME["ldc_w"].opcode
LDC2_W_OPCODE = BY_NAME["ldc2_w"].opcode

#: invoke opcode -> method-reference kind (pool selector).
INVOKE_KINDS = {
    BY_NAME["invokevirtual"].opcode: "method.virtual",
    BY_NAME["invokespecial"].opcode: "method.special",
    BY_NAME["invokestatic"].opcode: "method.static",
    BY_NAME["invokeinterface"].opcode: "method.interface",
}

#: field opcode -> field-reference kind.
FIELD_KINDS = {
    BY_NAME["getfield"].opcode: "field.instance",
    BY_NAME["putfield"].opcode: "field.instance",
    BY_NAME["getstatic"].opcode: "field.static",
    BY_NAME["putstatic"].opcode: "field.static",
}


def constant_kind_for_field(descriptor: str) -> str:
    """Which ConstValue kind a field's ConstantValue carries."""
    if descriptor in ("I", "B", "C", "S", "Z"):
        return "int"
    if descriptor == "J":
        return "long"
    if descriptor == "F":
        return "float"
    if descriptor == "D":
        return "double"
    if descriptor == "Ljava/lang/String;":
        return "string"
    raise ValueError(f"field type {descriptor} cannot carry a constant")
