"""Semantic equality of class files.

Packing renumbers constant pools, so byte equality is the wrong test
for roundtrips.  Two class files are *semantically equal* when their
restructured models (Figure 1) are equal: same names, flags, members,
constants, and instruction streams with resolved operands.
"""

from __future__ import annotations

from typing import Iterable

from ..classfile.classfile import ClassFile
from ..ir.build import build_class
from ..ir.model import Interner


def semantic_equal(first: ClassFile, second: ClassFile) -> bool:
    """Whether the two class files carry identical information."""
    interner = Interner()
    return build_class(first, interner) == build_class(second, interner)


def archives_equal(first: Iterable[ClassFile],
                   second: Iterable[ClassFile]) -> bool:
    first = list(first)
    second = list(second)
    if len(first) != len(second):
        return False
    return all(semantic_equal(a, b) for a, b in zip(first, second))
