"""The packed-archive compressor: a façade over the codec core.

Both passes (counting and encoding) and every construct's wire shape
live in :mod:`repro.pack.codec_core`; this module only assembles the
pieces — coders, streams, header — and runs the shared spec in count
then encode mode.  ``options.codec_backend`` selects *how* the spec
runs (interpreted walker or compiled closures, dispatched inside
:func:`codec_core.count_references` / :func:`codec_core.encode_archive`);
the emitted bytes are identical either way (see
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

from ..coding.streams import StreamSet
from ..errors import PackError
from ..ir import model as ir
from ..observe import recorder as observe
from . import codec_core, wire
from .options import PackOptions

__all__ = ["Compressor", "PackError", "SPACES", "pack_archive_ir"]

#: Back-compat alias; the object-space table is wire-format data.
SPACES = wire.SPACES


class Compressor:
    """Encodes an :class:`~repro.ir.model.Archive` into packed bytes."""

    def __init__(self, options: PackOptions):
        self.options = options.validate()
        self.streams = StreamSet()
        #: None unless an observe recorder is installed (the hot-path
        #: on/off switch: one attribute test per reported event).
        self._metrics = observe.current().metrics
        self._coders = codec_core.make_space_coders(options)
        self._count_seen: Dict[str, set] = {
            space: set() for space in wire.SPACES}
        if options.preload:
            from .preload import preload_coders, preload_objects

            preload_coders(self._coders, ir.Interner())
            # The counting pass must also treat preloaded objects as
            # already seen, so it recurses into the same contents the
            # encoding pass will.
            for space, values in preload_objects(ir.Interner()).items():
                self._count_seen[space].update(values)
        self.attribution = codec_core.SizeAttribution(self.streams,
                                                      self.options)

    def pack(self, archive: ir.Archive) -> bytes:
        codec_core.count_references(archive, self.options,
                                    coders=self._coders,
                                    seen=self._count_seen)
        codec_core.encode_archive(archive, self.options, self._coders,
                                  self.streams, metrics=self._metrics)
        header = bytearray(struct.pack(">I", wire.MAGIC))
        header.append(wire.VERSION)
        header.append(1 if self.options.compress else 0)
        with observe.current().span("serialize"):
            payload = self.streams.serialize(
                compress=self.options.compress,
                level=self.options.zlib_level)
        if self._metrics is not None:
            self._metrics.count("pack.classes", len(archive.classes))
            self.attribution.emit_metrics(self._metrics,
                                          len(header) + len(payload))
        return bytes(header) + payload

    def stream_sizes(self, compressed: bool = True) -> Dict[str, int]:
        """Per-stream byte sizes of the encoded archive (after pack())."""
        return self.attribution.stream_sizes(compressed)


def pack_archive_ir(archive: ir.Archive,
                    options: Optional[PackOptions] = None
                    ) -> Tuple[bytes, Compressor]:
    """Pack a restructured archive; returns (bytes, compressor)."""
    compressor = Compressor(options or PackOptions())
    data = compressor.pack(archive)
    return data, compressor
