"""The packed-archive compressor: a façade over the codec core.

Both passes (counting and encoding) and every construct's wire shape
live in :mod:`repro.pack.codec_core`; this module only assembles the
pieces — coders, streams, header — and runs the shared spec in count
then encode mode.  ``options.codec_backend`` selects *how* the spec
runs (interpreted walker or compiled closures, dispatched inside
:func:`codec_core.count_references` / :func:`codec_core.encode_archive`);
the emitted bytes are identical either way (see
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

from ..coding.streams import StreamSet
from ..errors import PackError
from ..ir import model as ir
from ..observe import recorder as observe
from . import codec_core, wire
from .options import AUTO_SCHEME, PackOptions
from .spool import ArchiveLayout, SpoolStreamSet, plan_windows

__all__ = ["Compressor", "PackError", "SPACES", "pack_archive_ir"]

#: Back-compat alias; the object-space table is wire-format data.
SPACES = wire.SPACES


class Compressor:
    """Encodes an :class:`~repro.ir.model.Archive` into packed bytes."""

    def __init__(self, options: PackOptions):
        self.options = options.validate()
        if self.options.scheme == AUTO_SCHEME:
            raise PackError(
                "scheme 'auto' must be resolved before packing; go "
                "through pack_archive / pack_archive_ir, or resolve "
                "with repro.pack.select.select_scheme")
        #: The :class:`~repro.pack.select.SchemeSelection` behind these
        #: options when ``--scheme=auto`` chose them (set by
        #: :func:`pack_archive_ir`); None for explicit schemes.
        self.selection = None
        #: Per-class per-stream offsets from the count pass's sizing
        #: sub-pass; populated only on the memory-budgeted path.
        self.layout = None
        if self.options.memory_budget is not None:
            self.streams = SpoolStreamSet(self.options.memory_budget)
        else:
            self.streams = StreamSet()
        #: None unless an observe recorder is installed (the hot-path
        #: on/off switch: one attribute test per reported event).
        self._metrics = observe.current().metrics
        self._coders = codec_core.make_space_coders(options)
        self._count_seen: Dict[str, set] = {
            space: set() for space in wire.SPACES}
        if options.preload:
            from .preload import preload_coders, preload_objects

            preload_coders(self._coders, ir.Interner())
            # The counting pass must also treat preloaded objects as
            # already seen, so it recurses into the same contents the
            # encoding pass will.
            for space, values in preload_objects(ir.Interner()).items():
                self._count_seen[space].update(values)
        self.attribution = codec_core.SizeAttribution(self.streams,
                                                      self.options)

    def _run_codec(self, archive: ir.Archive) -> None:
        """Count then encode, planning spill windows in between.

        On the memory-budgeted path, the count pass additionally runs
        the layout sizing sub-pass: exact per-class per-stream offsets
        feed :func:`~repro.pack.spool.plan_windows` before the encode
        pass creates any stream.
        """
        layout = None
        if self.options.memory_budget is not None:
            layout = ArchiveLayout()
        codec_core.count_references(archive, self.options,
                                    coders=self._coders,
                                    seen=self._count_seen,
                                    layout=layout)
        if layout is not None:
            self.layout = layout
            self.streams.set_plan(plan_windows(
                layout.stream_sizes, self.options.memory_budget))
        codec_core.encode_archive(archive, self.options, self._coders,
                                  self.streams, metrics=self._metrics)

    def _header(self) -> bytes:
        scheme_tag = 0
        if self.options.record_scheme:
            scheme_tag = wire.SCHEME_TAG_FOR[wire.scheme_variant(
                self.options.scheme, self.options.use_context,
                self.options.transients)]
        header = bytearray(struct.pack(">I", wire.MAGIC))
        header.append(wire.VERSION)
        header.append(wire.pack_flags(self.options.compress, scheme_tag))
        return bytes(header)

    def _emit_metrics(self, archive: ir.Archive, packed_len: int) -> None:
        if self._metrics is not None:
            self._metrics.count("pack.classes", len(archive.classes))
            self.attribution.emit_metrics(self._metrics, packed_len)

    def pack(self, archive: ir.Archive) -> bytes:
        self._run_codec(archive)
        header = self._header()
        with observe.current().span("serialize"):
            payload = self.streams.serialize(
                compress=self.options.compress,
                level=self.options.zlib_level)
        self._emit_metrics(archive, len(header) + len(payload))
        return header + payload

    def pack_to(self, archive: ir.Archive, out) -> int:
        """Pack ``archive`` straight into the file object ``out``.

        Returns the byte count written.  With a ``memory_budget`` the
        serialized container streams from the spool buffers through
        temp files into ``out`` — the packed archive is never resident
        as one byte string.  Output is byte-identical to :meth:`pack`.
        """
        self._run_codec(archive)
        header = self._header()
        out.write(header)
        with observe.current().span("serialize"):
            if isinstance(self.streams, SpoolStreamSet):
                written = self.streams.serialize_to(
                    out, compress=self.options.compress,
                    level=self.options.zlib_level)
            else:
                payload = self.streams.serialize(
                    compress=self.options.compress,
                    level=self.options.zlib_level)
                out.write(payload)
                written = len(payload)
        total = len(header) + written
        self._emit_metrics(archive, total)
        return total

    def stream_sizes(self, compressed: bool = True) -> Dict[str, int]:
        """Per-stream byte sizes of the encoded archive (after pack())."""
        return self.attribution.stream_sizes(compressed)


def pack_archive_ir(archive: ir.Archive,
                    options: Optional[PackOptions] = None
                    ) -> Tuple[bytes, Compressor]:
    """Pack a restructured archive; returns (bytes, compressor).

    ``scheme="auto"`` is resolved here: the scheme matrix is scored
    against this archive (:mod:`repro.pack.select`) and the winner —
    with ``record_scheme`` set so the header carries the choice — is
    what the compressor actually runs.  The selection report is left
    on ``compressor.selection``.
    """
    from .select import resolve_options

    options, selection = resolve_options(archive, options)
    compressor = Compressor(options)
    compressor.selection = selection
    data = compressor.pack(archive)
    return data, compressor
