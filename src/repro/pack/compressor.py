"""The packed-archive compressor (encoder side of the wire format).

Two passes over the restructured archive:

1. a *counting* pass records how often every shared object is
   referenced in every pool (needed by the freq/cache schemes and the
   MTF transients variant), and
2. the *encoding* pass runs the reference coders and stream writers.

Both passes execute the identical traversal; a flag switches the
reference sink.
"""

from __future__ import annotations

import struct
from typing import Dict, Hashable, Optional, Tuple

from ..classfile.opcodes import OPCODES, OperandKind as K
from ..coding.streams import StreamSet, StreamWriter
from ..bytecode_codec.apply import (
    OPCODES_BY_NAME,
    apply_instruction_state,
)
from ..observe import recorder as observe
from ..bytecode_codec.stack_state import StackTracker
from ..ir import model as ir
from ..refs.schemes import make_codec
from . import wire
from .options import PackOptions
from .sizes import ir_instruction_size

#: Object spaces: coder name -> (index stream, seed offset)
SPACES = {
    "package": wire.REF_PACKAGE,
    "simple": wire.REF_SIMPLE,
    "class": wire.REF_CLASS,
    "methodname": wire.REF_METHODNAME,
    "fieldname": wire.REF_FIELDNAME,
    "method": wire.REF_METHOD,
    "field": wire.REF_FIELD,
    "string": wire.REF_STRING,
}


class PackError(ValueError):
    """Raised when an archive cannot be packed."""


class Compressor:
    """Encodes an :class:`~repro.ir.model.Archive` into packed bytes."""

    def __init__(self, options: PackOptions):
        self.options = options.validate()
        self.streams = StreamSet()
        #: None unless an observe recorder is installed (the hot-path
        #: on/off switch: one attribute test per reported event).
        self._metrics = observe.current().metrics
        self._encoders = {}
        for index, (space, _) in enumerate(sorted(SPACES.items())):
            encoder, _ = make_codec(
                options.scheme, use_context=options.use_context,
                transients=options.transients, seed=options.seed + index)
            self._encoders[space] = encoder
        self._counting = False
        self._counts: Dict[str, Dict[Tuple[str, Hashable], int]] = {
            space: {} for space in SPACES}
        self._count_seen: Dict[str, set] = {space: set() for space in SPACES}
        if options.preload:
            from ..ir.model import Interner
            from .preload import preload_coders, preload_objects

            preload_coders(self._encoders, Interner())
            # The counting pass must also treat preloaded objects as
            # already seen, so it recurses into the same contents the
            # encoding pass will.
            for space, values in preload_objects(Interner()).items():
                self._count_seen[space].update(values)

    # -- entry point ---------------------------------------------------

    def pack(self, archive: ir.Archive) -> bytes:
        recorder = observe.current()
        # Pass 1: count references.
        with recorder.span("count", classes=len(archive.classes)):
            self._counting = True
            for definition in archive.classes:
                self._encode_class(definition)
            self._counting = False
            for space, encoder in self._encoders.items():
                if encoder.needs_frequencies:
                    encoder.set_frequencies(self._counts[space])
        # Pass 2: encode.
        with recorder.span("encode"):
            self.streams.stream(wire.META).uvarint(len(archive.classes))
            for definition in archive.classes:
                self._encode_class(definition)
        header = bytearray(struct.pack(">I", wire.MAGIC))
        header.append(wire.VERSION)
        header.append(1 if self.options.compress else 0)
        with recorder.span("serialize"):
            payload = self.streams.serialize(
                compress=self.options.compress,
                level=self.options.zlib_level)
        if self._metrics is not None:
            self._metrics.count("pack.classes", len(archive.classes))
            self._record_size_metrics(len(header) + len(payload))
        return bytes(header) + payload

    def _record_size_metrics(self, packed_size: int) -> None:
        """Per-stream byte tallies (raw and independently zlib'd)."""
        metrics = self._metrics
        for name, size in self.streams.raw_sizes().items():
            metrics.tally("stream.raw_bytes", name, size)
        if self.options.compress:
            sizes = self.streams.compressed_sizes(self.options.zlib_level)
            for name, size in sizes.items():
                metrics.tally("stream.zlib_bytes", name, size)
        metrics.tally("archive", "packed_bytes", packed_size)

    def stream_sizes(self, compressed: bool = True) -> Dict[str, int]:
        """Per-stream byte sizes of the encoded archive (after pack())."""
        if compressed and self.options.compress:
            return self.streams.compressed_sizes(self.options.zlib_level)
        return self.streams.raw_sizes()

    # -- reference plumbing ------------------------------------------------

    def _stream(self, name: str) -> StreamWriter:
        return self.streams.stream(name)

    def _ref(self, space: str, kind: str, stack_context: Tuple[str, str],
             key: Hashable) -> bool:
        """Encode (or count) one reference; True when contents follow."""
        if self._counting:
            counts = self._counts[space]
            slot = (kind, key)
            counts[slot] = counts.get(slot, 0) + 1
            seen = self._count_seen[space]
            if key in seen:
                return False
            seen.add(key)
            return True
        encoder = self._encoders[space]
        return encoder.encode(self._stream(SPACES[space]),
                              (kind, stack_context), key)

    def _int(self, stream: str, value: int, signed: bool = False) -> None:
        if self._counting:
            return
        if signed:
            self._stream(stream).svarint(value)
        else:
            self._stream(stream).uvarint(value)

    def _u8(self, stream: str, value: int) -> None:
        if not self._counting:
            self._stream(stream).u8(value)

    def _raw(self, stream: str, data: bytes) -> None:
        if not self._counting:
            self._stream(stream).raw(data)

    # -- shared objects ------------------------------------------------------

    _NO_CONTEXT = ("-", "-")

    def _emit_text(self, text: str, len_stream: str,
                   chars_stream: str) -> None:
        from ..classfile import mutf8

        encoded = mutf8.encode(text)
        self._int(len_stream, len(encoded))
        self._raw(chars_stream, encoded)

    def _emit_package(self, package: ir.PackageName) -> None:
        if self._ref("package", "package", self._NO_CONTEXT, package):
            self._emit_text(package.name, wire.STR_PKG_LEN,
                            wire.STR_PKG_CHARS)

    def _emit_simple(self, simple: ir.SimpleClassName) -> None:
        if self._ref("simple", "simple", self._NO_CONTEXT, simple):
            self._emit_text(simple.name, wire.STR_CLS_LEN,
                            wire.STR_CLS_CHARS)

    def _emit_class_ref(self, ref: ir.ClassRef) -> None:
        if self._ref("class", "class", self._NO_CONTEXT, ref):
            self._emit_package(ref.package)
            self._emit_simple(ref.simple)

    def _emit_type_ref(self, type_ref: ir.TypeRef) -> None:
        self._int(wire.SHAPE, type_ref.dims)
        if isinstance(type_ref.base, ir.ClassRef):
            self._u8(wire.SHAPE, 0)
            self._emit_class_ref(type_ref.base)
        else:
            self._u8(wire.SHAPE, ir.PRIMITIVE_CODES[type_ref.base])

    def _emit_method_name(self, name: ir.MethodName) -> None:
        if self._ref("methodname", "methodname", self._NO_CONTEXT, name):
            self._emit_text(name.name, wire.STR_MNAME_LEN,
                            wire.STR_MNAME_CHARS)

    def _emit_field_name(self, name: ir.FieldName) -> None:
        if self._ref("fieldname", "fieldname", self._NO_CONTEXT, name):
            self._emit_text(name.name, wire.STR_FNAME_LEN,
                            wire.STR_FNAME_CHARS)

    def _emit_method_ref(self, ref: ir.MethodRef, kind: str,
                         stack_context: Tuple[str, str]) -> None:
        if self._ref("method", kind, stack_context, ref):
            self._emit_class_ref(ref.owner)
            self._emit_method_name(ref.name)
            self._emit_type_ref(ref.return_type)
            self._int(wire.SHAPE, len(ref.arg_types))
            for arg in ref.arg_types:
                self._emit_type_ref(arg)

    def _emit_field_ref(self, ref: ir.FieldRef, kind: str) -> None:
        if self._ref("field", kind, self._NO_CONTEXT, ref):
            self._emit_class_ref(ref.owner)
            self._emit_field_name(ref.name)
            self._emit_type_ref(ref.type)

    def _emit_const(self, const: ir.ConstValue) -> None:
        """Primitive constants by value; strings via the string pool."""
        if const.kind == "int":
            self._int(wire.CONST_INT, const.value, signed=True)
        elif const.kind == "long":
            self._int(wire.CONST_LONG, const.value, signed=True)
        elif const.kind == "float":
            self._raw(wire.CONST_FLOAT, struct.pack(">I", const.value))
        elif const.kind == "double":
            self._raw(wire.CONST_DOUBLE, struct.pack(">Q", const.value))
        elif const.kind == "string":
            if self._ref("string", "string", self._NO_CONTEXT, const.value):
                self._emit_text(const.value, wire.STR_CONST_LEN,
                                wire.STR_CONST_CHARS)
        else:  # pragma: no cover - exhaustive over kinds
            raise PackError(f"unknown constant kind {const.kind}")

    # -- class structure ---------------------------------------------------

    def _encode_class(self, definition: ir.ClassDefinition) -> None:
        self._emit_class_ref(definition.this_class)
        self._int(wire.META, definition.access_flags)
        if definition.access_flags & ir.FLAG_HAS_SUPER:
            self._emit_class_ref(definition.super_class)
        self._int(wire.META, len(definition.interfaces))
        for interface in definition.interfaces:
            self._emit_class_ref(interface)
        self._int(wire.META, len(definition.fields))
        self._int(wire.META, len(definition.methods))
        for field_def in definition.fields:
            self._encode_field(field_def)
        for method_def in definition.methods:
            self._encode_method(method_def)

    def _encode_field(self, field_def: ir.FieldDefinition) -> None:
        self._int(wire.META, field_def.access_flags)
        self._emit_field_ref(field_def.ref, "field.def")
        if field_def.access_flags & ir.FLAG_HAS_CONSTANT:
            self._emit_const(field_def.constant)

    def _encode_method(self, method_def: ir.MethodDefinition) -> None:
        self._int(wire.META, method_def.access_flags)
        self._emit_method_ref(method_def.ref, "method.def",
                              self._NO_CONTEXT)
        if method_def.access_flags & ir.FLAG_HAS_EXCEPTIONS:
            self._int(wire.META, len(method_def.exceptions))
            for exception in method_def.exceptions:
                self._emit_class_ref(exception)
        if method_def.access_flags & ir.FLAG_HAS_CODE:
            self._encode_code(method_def.code)

    # -- bytecode ------------------------------------------------------------

    def _encode_code(self, code: ir.IRCode) -> None:
        self._int(wire.META, code.max_stack)
        self._int(wire.META, code.max_locals)
        self._int(wire.META, len(code.instructions))
        self._int(wire.META, len(code.handlers))
        for handler in code.handlers:
            self._int(wire.CODE_EXC, handler.start_pc)
            self._int(wire.CODE_EXC, handler.end_pc - handler.start_pc)
            self._int(wire.CODE_EXC, handler.handler_pc)
            if handler.catch_type is None:
                self._u8(wire.CODE_EXC, 0)
            else:
                self._u8(wire.CODE_EXC, 1)
                self._emit_class_ref(handler.catch_type)
        tracker = StackTracker()
        offset = 0
        use_state = self.options.stack_state
        for instruction in code.instructions:
            if use_state:
                tracker.at_instruction(offset)
            self._encode_instruction(instruction, tracker, offset,
                                     use_state)
            self._apply_state(tracker, instruction, offset)
            offset += ir_instruction_size(instruction, offset)

    def _encode_instruction(self, instruction: ir.IRInstruction,
                            tracker: StackTracker, offset: int,
                            use_state: bool) -> None:
        spec = OPCODES[instruction.opcode]
        mnemonic = spec.mnemonic
        metrics = self._metrics if not self._counting else None
        if metrics is not None:
            metrics.count("bytecode.instructions")
        # Opcode byte (pseudo for LDC, collapsed when the state allows).
        if instruction.const is not None:
            pseudo = wire.PSEUDO_LDC[(instruction.const.kind,
                                      instruction.wide_const)]
            self._u8(wire.CODE_OPCODES, pseudo)
            if metrics is not None:
                metrics.count("bytecode.pseudo_ldc")
        else:
            emitted = tracker.collapse(mnemonic) if use_state else mnemonic
            self._u8(wire.CODE_OPCODES, OPCODES_BY_NAME[emitted])
            if metrics is not None and emitted != mnemonic:
                metrics.count("bytecode.collapsed")
        # Operands, routed to their streams.
        if spec.is_switch:
            self._int(wire.CODE_BRANCHES,
                      instruction.switch_default - offset, signed=True)
            if instruction.switch_low is not None:
                self._int(wire.CODE_INTS, instruction.switch_low,
                          signed=True)
                self._int(wire.CODE_INTS, len(instruction.switch_pairs))
                for _, target in instruction.switch_pairs:
                    self._int(wire.CODE_BRANCHES, target - offset,
                              signed=True)
            else:
                self._int(wire.CODE_INTS, len(instruction.switch_pairs))
                for match, target in instruction.switch_pairs:
                    self._int(wire.CODE_INTS, match, signed=True)
                    self._int(wire.CODE_BRANCHES, target - offset,
                              signed=True)
            return
        for kind in spec.operands:
            if kind == K.LOCAL:
                self._int(wire.CODE_REGS, instruction.local)
            elif kind in (K.SBYTE, K.SSHORT, K.IINC_DELTA):
                self._int(wire.CODE_INTS, instruction.immediate,
                          signed=True)
            elif kind in (K.BRANCH2, K.BRANCH4):
                self._int(wire.CODE_BRANCHES,
                          instruction.target - offset, signed=True)
            elif kind == K.ATYPE:
                self._int(wire.CODE_INTS, instruction.atype)
            elif kind == K.DIMS:
                self._int(wire.CODE_INTS, instruction.dims)
            elif kind in (K.COUNT, K.ZERO):
                pass  # regenerated from the descriptor
            elif kind in (K.CP_LDC, K.CP_LDC_W, K.CP_LDC2_W):
                self._emit_const(instruction.const)
            elif kind == K.CP_FIELD:
                self._emit_field_ref(instruction.field_ref,
                                     wire.FIELD_KINDS[instruction.opcode])
            elif kind in (K.CP_METHOD, K.CP_IMETHOD):
                context = tracker.top_categories() if use_state \
                    else ("-", "-")
                self._emit_method_ref(
                    instruction.method_ref,
                    wire.INVOKE_KINDS[instruction.opcode], context)
            elif kind == K.CP_CLASS:
                if instruction.type_ref is not None:
                    self._u8(wire.SHAPE, 1)
                    self._emit_type_ref(instruction.type_ref)
                else:
                    self._u8(wire.SHAPE, 0)
                    self._emit_class_ref(instruction.class_ref)
            else:  # pragma: no cover - exhaustive over kinds
                raise PackError(f"unhandled operand kind {kind}")

    def _apply_state(self, tracker: StackTracker,
                     instruction: ir.IRInstruction, offset: int) -> None:
        if not self.options.stack_state:
            return
        apply_instruction_state(tracker, instruction, offset)


def pack_archive_ir(archive: ir.Archive,
                    options: Optional[PackOptions] = None
                    ) -> Tuple[bytes, Compressor]:
    """Pack a restructured archive; returns (bytes, compressor)."""
    compressor = Compressor(options or PackOptions())
    data = compressor.pack(archive)
    return data, compressor
