"""The one exception hierarchy for expected operational failures.

Every error the system raises for *bad input* — an archive that cannot
be packed, packed bytes that cannot be decoded, a batch job whose
input is unusable — derives from :class:`ReproError`.  Callers that
want a single catch point (the CLI's one-line ``error:`` + exit 2, the
service's per-job degradation) catch ``ReproError``; callers that care
which stage failed catch the specific subclass.

``ReproError`` extends :class:`ValueError` so historical call sites
(and the paper-era tests) that caught ``ValueError`` keep working.

The codec driver's contract: malformed packed bytes raise
:class:`UnpackError` — never ``IndexError``/``KeyError``/
``struct.error`` or any other incidental exception of the decoding
machinery.  :meth:`repro.pack.Decompressor.unpack_ir` enforces this at
the decode boundary.
"""

from __future__ import annotations

import struct
import zlib

#: Everything malformed input can make the decoding machinery raise;
#: decode boundaries (Decompressor.unpack_ir, repro.delta.patch)
#: rewrap these so callers only ever see UnpackError.
CORRUPTION_ERRORS = (ValueError, KeyError, IndexError, OverflowError,
                     UnicodeError, struct.error, zlib.error,
                     MemoryError, RecursionError)


class ReproError(ValueError):
    """Base class for expected operational failures (CLI exit 2)."""


class PackError(ReproError):
    """An archive cannot be packed (invalid or unsupported input IR)."""


class UnpackError(ReproError):
    """Packed bytes are malformed, truncated, or version-incompatible."""


class JobInputError(ReproError):
    """A batch/service job's input cannot be read or contains nothing
    packable."""


class TriageError(ReproError):
    """Recursive ingestion cannot proceed: the input location is
    unreadable, the budget is invalid, or triage found nothing
    packable.  Malformed *content* never raises this — it degrades
    into the TriageReport instead (see :mod:`repro.triage.ingest`)."""


__all__ = ["CORRUPTION_ERRORS", "JobInputError", "PackError",
           "ReproError", "TriageError", "UnpackError"]
