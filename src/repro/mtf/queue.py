"""Move-to-front queues over the indexable skiplist.

The coder state is symmetric: the compressor and decompressor each
hold a :class:`MtfCoder` and apply the same sequence of operations, so
indices decoded always refer to the same queue positions that were
encoded.

Index space (matching Section 5 of the paper):

* plain scheme — ``0`` means "never seen before" (the object's
  contents follow in other streams); ``k >= 1`` means the object at
  1-based position ``k`` of the queue, which then moves to the front.
* transients variant — ``0`` = new, enqueue; ``1`` = new, *transient*
  (seen exactly once in the whole archive, never enqueued);
  ``k >= 2`` = the object at 1-based position ``k - 1``.

Contexts (the "use context" variant) give each context key its own
queue.  A first-seen object is inserted into every queue where it may
later be referenced; queues created later are seeded with all
previously registered objects, which preserves that invariant while
letting contexts be discovered lazily on both sides.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..observe import recorder as observe
from .skiplist import IndexedSkipList, SkipNode

NEW = 0
NEW_TRANSIENT = 1


class MtfError(ValueError):
    """Raised on protocol violations (e.g. decoding an index for an
    empty queue)."""


class _ContextQueue:
    """One context's skiplist plus its key -> node map."""

    def __init__(self, seed: int):
        self.skiplist = IndexedSkipList(seed=seed)
        self.nodes: Dict[Hashable, SkipNode] = {}

    def push_front(self, key: Hashable, value: Any) -> None:
        self.nodes[key] = self.skiplist.insert_front((key, value))

    def position_of(self, key: Hashable) -> int:
        return self.skiplist.index_of(self.nodes[key])

    def move_to_front_by_key(self, key: Hashable) -> int:
        """Returns the 0-based position the key was at."""
        node = self.nodes[key]
        index = self.skiplist.index_of(node)
        self.skiplist.delete_at(index)
        self.skiplist._link_front(node)
        return index

    def move_to_front_by_index(self, index: int) -> Tuple[Hashable, Any]:
        return self.skiplist.move_to_front(index)


class MtfCoder:
    """A (possibly multi-context) move-to-front reference coder.

    With ``transients=True`` the caller must pass ``is_transient`` to
    :meth:`encode_new` decisions via the ``transient`` argument (the
    compressor knows global frequencies from its counting pass); the
    decoder learns transience from the index value itself.
    """

    def __init__(self, transients: bool = False, seed: int = 0):
        self.transients = transients
        self._seed = seed
        self._queues: Dict[Hashable, _ContextQueue] = {}
        #: registration order of every non-transient object.
        self._registry: List[Tuple[Hashable, Any]] = []
        self._known: Dict[Hashable, Any] = {}
        self._metrics = observe.current().metrics

    # -- shared state -----------------------------------------------------

    def _queue(self, context: Hashable) -> _ContextQueue:
        queue = self._queues.get(context)
        if queue is None:
            queue = _ContextQueue(seed=self._seed + len(self._queues))
            if self._metrics is not None:
                self._metrics.count("mtf.contexts")
                self._metrics.observe("mtf.context_seed_size",
                                      len(self._registry))
            # Seed with every object registered so far, oldest first,
            # so the front of the new queue is the most recent object —
            # the same state it would have had if it had existed all
            # along and received every insertion.
            for key, value in self._registry:
                queue.push_front(key, value)
            self._queues[context] = queue
        return queue

    def _register(self, key: Hashable, value: Any) -> None:
        self._registry.append((key, value))
        self._known[key] = value
        for queue in self._queues.values():
            queue.push_front(key, value)

    def knows(self, key: Hashable) -> bool:
        return key in self._known

    # -- encoder side ------------------------------------------------------

    def encode(self, context: Hashable, key: Hashable,
               transient: bool = False,
               value: Any = None) -> Tuple[int, bool]:
        """Encode a reference; returns ``(index, is_new)``.

        ``is_new`` tells the caller to serialize the object's contents.
        ``transient`` is honored only when the coder was built with
        ``transients=True``.
        """
        queue = self._queue(context)
        shift = 1 if self.transients else 0
        if key in self._known:
            position = queue.move_to_front_by_key(key)
            return position + 1 + shift, False
        if self.transients and transient:
            return NEW_TRANSIENT, True
        self._register(key, value if value is not None else key)
        return NEW, True

    # -- decoder side ------------------------------------------------------

    def decode_is_new(self, index: int) -> bool:
        if self.transients:
            return index in (NEW, NEW_TRANSIENT)
        return index == NEW

    def decode_known(self, context: Hashable, index: int) -> Any:
        """Resolve a non-new index to the referenced object's value."""
        shift = 1 if self.transients else 0
        position = index - 1 - shift
        queue = self._queue(context)
        if not 0 <= position < len(queue.skiplist):
            raise MtfError(
                f"MTF index {index} out of range for queue of size "
                f"{len(queue.skiplist)}")
        _, value = queue.move_to_front_by_index(position)
        return value

    def decode_new(self, index: int, key: Hashable, value: Any) -> None:
        """Record a newly transmitted object on the decoder side."""
        if self.transients and index == NEW_TRANSIENT:
            return
        self._register(key, value)


class NaiveMtf:
    """Reference implementation with a plain Python list (for tests)."""

    def __init__(self):
        self.items: List[Hashable] = []

    def encode(self, key: Hashable) -> int:
        if key in self.items:
            index = self.items.index(key)
            del self.items[index]
            self.items.insert(0, key)
            return index + 1
        self.items.insert(0, key)
        return 0

    def decode(self, index: int, new_key: Optional[Hashable] = None
               ) -> Hashable:
        if index == 0:
            self.items.insert(0, new_key)
            return new_key
        key = self.items.pop(index - 1)
        self.items.insert(0, key)
        return key
