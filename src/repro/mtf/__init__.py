"""Move-to-front machinery: indexable skiplist and MTF queues."""

from .queue import MtfCoder, MtfError, NaiveMtf
from .skiplist import IndexedSkipList, SkipNode

__all__ = [
    "IndexedSkipList",
    "MtfCoder",
    "MtfError",
    "NaiveMtf",
    "SkipNode",
]
