"""An indexable (order-statistic) skiplist with distance-annotated links.

Section 5 of the paper implements move-to-front queues with "a modified
form of a Skiplist [Pug90] (the Skiplist structure was modified so that
each link recorded the distance it travels forward in the list)".  This
module is that structure:

* access / delete by position in expected O(log n),
* insert at the front in expected O(log n),
* compute the position of a *node* (not a key) in expected O(log n) by
  walking each node's highest outgoing link to the end of the list and
  summing link distances — exactly the trick the paper describes for
  the compressor side.

The list is circular: the head sentinel doubles as the end marker, so
distances to the end stay correct without a separate NIL bookkeeping
pass.  Heights are drawn from a seeded PRNG, making structures
deterministic for tests while leaving the probabilistic analysis
intact.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional

from ..observe import recorder as _observe

MAX_LEVEL = 32


class SkipNode:
    """One element node.  ``forward[l]``/``width[l]`` describe the
    outgoing link at level ``l``; ``width`` is the positional distance
    the link travels."""

    __slots__ = ("value", "forward", "width")

    def __init__(self, value: Any, height: int):
        self.value = value
        self.forward: List[Optional["SkipNode"]] = [None] * height
        self.width: List[int] = [0] * height

    @property
    def height(self) -> int:
        return len(self.forward)


class IndexedSkipList:
    """A positional skiplist supporting the move-to-front operations."""

    def __init__(self, seed: int = 0, p: float = 0.25):
        self._rng = random.Random(seed)
        self._p = p
        self.head = SkipNode(None, MAX_LEVEL)
        for level in range(MAX_LEVEL):
            self.head.forward[level] = self.head
            self.head.width[level] = 1
        self.size = 0
        self._metrics = _observe.current().metrics

    def __len__(self) -> int:
        return self.size

    def _random_height(self) -> int:
        height = 1
        while height < MAX_LEVEL and self._rng.random() < self._p:
            height += 1
        return height

    # -- core operations ------------------------------------------------

    def insert_front(self, value: Any) -> SkipNode:
        """Insert ``value`` at position 0; returns its node."""
        node = SkipNode(value, self._random_height())
        self._link_front(node)
        if self._metrics is not None:
            self._metrics.count("skiplist.inserts")
            self._metrics.observe("skiplist.node_height", node.height)
        return node

    def _link_front(self, node: SkipNode) -> None:
        height = node.height
        for level in range(MAX_LEVEL):
            if level < height:
                node.forward[level] = self.head.forward[level]
                node.width[level] = self.head.width[level]
                self.head.forward[level] = node
                self.head.width[level] = 1
            else:
                self.head.width[level] += 1
        self.size += 1

    def node_at(self, index: int) -> SkipNode:
        """The node at 0-based ``index`` (O(log n) expected)."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range 0..{self.size - 1}")
        remaining = index + 1  # distance to travel from the head (pos -1)
        node = self.head
        for level in range(MAX_LEVEL - 1, -1, -1):
            while node.width[level] <= remaining and \
                    node.forward[level] is not self.head:
                remaining -= node.width[level]
                node = node.forward[level]
            if remaining == 0:
                break
        return node

    def delete_at(self, index: int) -> SkipNode:
        """Unlink and return the node at ``index`` (O(log n) expected)."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range 0..{self.size - 1}")
        update: List[SkipNode] = [self.head] * MAX_LEVEL
        remaining = index + 1
        node = self.head
        for level in range(MAX_LEVEL - 1, -1, -1):
            while node.width[level] < remaining and \
                    node.forward[level] is not self.head:
                remaining -= node.width[level]
                node = node.forward[level]
            update[level] = node
        target = node.forward[0]
        if target is self.head:  # pragma: no cover - guarded by range check
            raise IndexError("internal error: walked off the list")
        for level in range(MAX_LEVEL):
            if level < target.height and \
                    update[level].forward[level] is target:
                update[level].forward[level] = target.forward[level]
                update[level].width[level] += target.width[level] - 1
            else:
                update[level].width[level] -= 1
        self.size -= 1
        return target

    def move_to_front(self, index: int) -> Any:
        """Move the element at ``index`` to position 0; returns it.

        This is the decompressor-side operation: given a transmitted
        MTF index, fetch the object and requeue it at the front.
        """
        if self._metrics is not None:
            self._metrics.count("skiplist.move_to_front")
        if index == 0:
            return self.node_at(0).value
        node = self.delete_at(index)
        self._link_front(node)
        return node.value

    def index_of(self, node: SkipNode) -> int:
        """Position of ``node``, computed by walking to the end.

        From each node we follow the *highest* outgoing link, summing
        link distances, until we arrive back at the head sentinel; the
        sum is the distance from the node to the end of the list.
        Expected O(log n) — this is the paper's compressor-side trick.
        """
        distance = 0
        hops = 0
        current = node
        while current is not self.head:
            top = current.height - 1
            distance += current.width[top]
            current = current.forward[top]
            hops += 1
        if self._metrics is not None:
            self._metrics.count("skiplist.index_of")
            self._metrics.observe("skiplist.index_of_hops", hops)
        return self.size - distance

    # -- conveniences ------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        node = self.head.forward[0]
        while node is not self.head:
            yield node.value
            node = node.forward[0]

    def to_list(self) -> List[Any]:
        return list(self)

    def check_invariants(self) -> None:
        """Validate width bookkeeping at every level (test helper)."""
        # Level 0 widths are all 1 and the ring has size+1 hops.
        node = self.head
        hops = 0
        while True:
            if node.width[0] != 1:
                raise AssertionError(
                    f"level-0 width {node.width[0]} != 1")
            node = node.forward[0]
            hops += 1
            if node is self.head:
                break
        if hops != self.size + 1:
            raise AssertionError(f"ring has {hops} hops, size {self.size}")
        # Positions implied by widths must agree with level-0 order.
        positions = {id(self.head): -1}
        node = self.head.forward[0]
        position = 0
        while node is not self.head:
            positions[id(node)] = position
            node = node.forward[0]
            position += 1
        node = self.head
        while True:
            for level in range(node.height):
                target = node.forward[level]
                expected = (positions[id(target)] - positions[id(node)]) \
                    if target is not self.head \
                    else self.size - positions[id(node)]
                if node.width[level] != expected:
                    raise AssertionError(
                        f"width mismatch at level {level}: "
                        f"{node.width[level]} != {expected}")
            node = node.forward[0]
            if node is self.head:
                break
