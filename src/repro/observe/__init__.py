"""Structured observability for the codec pipeline.

Three cooperating pieces (each in its own module):

* :mod:`~repro.observe.trace` — nested timed spans recording the
  pipeline's phase structure (parse -> IR build -> counting pass ->
  encoding pass -> zlib, and the mirror phases on the decompressor),
* :mod:`~repro.observe.metrics` — counters, integer histograms, and
  per-stream byte tallies reported by the reference coders, the MTF
  skiplist, the stream writers, and the bytecode codec,
* :mod:`~repro.observe.profile` — a lightweight ``profile(name)``
  probe and an opt-in :mod:`cProfile` wrapper.

Everything hangs off an installable :class:`Recorder`.  By default the
:data:`NULL_RECORDER` is installed: its spans are shared no-op context
managers and its ``metrics`` attribute is ``None``, which is the flag
instrumented hot paths check — so with observability off (the
default) the pipeline pays one attribute load and branch per reported
event, nothing more.

Usage::

    from repro import observe

    with observe.recording() as rec:
        packed = pack_archive(classfiles)
    print(rec.trace.render())             # timing tree
    rec.metrics.to_dict()                 # counters/histograms/tallies
    observe.dump_json(rec, "metrics.json")

The CLI surfaces the same recording as ``repro pack --trace``,
``repro pack --metrics-json FILE``, and ``repro stats``.
"""

from .metrics import Histogram, Metrics
from .profile import ProfileResult, cprofile, profile
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    current,
    enabled,
    install,
    recording,
    silenced,
    uninstall,
)
from .report import HISTOGRAM_FIELDS, SCHEMA, dump_json, to_json
from .trace import Span, Trace

__all__ = [
    "HISTOGRAM_FIELDS",
    "Histogram",
    "Metrics",
    "NULL_RECORDER",
    "NullRecorder",
    "ProfileResult",
    "Recorder",
    "SCHEMA",
    "Span",
    "Trace",
    "cprofile",
    "current",
    "dump_json",
    "enabled",
    "install",
    "profile",
    "recording",
    "silenced",
    "to_json",
    "uninstall",
]
