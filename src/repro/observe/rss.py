"""Peak resident-set-size probes.

Thin wrappers over ``resource.getrusage`` used by the service (worker
density reporting in ``/stats``) and the streaming-pack benchmark.
``ru_maxrss`` is a process-lifetime high-water mark, so meaningful
deltas require a baseline snapshot (or a fresh subprocess); these
helpers only normalize units — Linux reports KiB, macOS bytes.
"""

from __future__ import annotations

import sys


def _normalize_kb(ru_maxrss: int) -> int:
    if sys.platform == "darwin":
        return ru_maxrss // 1024
    return ru_maxrss


def peak_rss_kb() -> int:
    """This process's lifetime peak RSS in KiB (0 where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    return _normalize_kb(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def child_peak_rss_kb() -> int:
    """Peak RSS in KiB over all waited-for children (0 if none)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    return _normalize_kb(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
