"""Nested timed spans for the codec pipeline.

A :class:`Trace` is a tree of :class:`Span` objects.  Spans are
context managers; entering one pushes it onto the trace's stack so
spans opened inside it become its children, which is how the
pack/unpack phase structure (parse -> IR build -> counting pass ->
encoding pass -> zlib) is recorded without the instrumented code
knowing anything about its callers.

The pipeline is single-threaded, so a plain stack suffices; the root
span is synthetic and never timed.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


class Span:
    """One timed phase.  ``seconds`` is populated on exit."""

    __slots__ = ("name", "attrs", "children", "seconds", "_trace",
                 "_start")

    def __init__(self, name: str, trace: Optional["Trace"] = None,
                 **attrs: Any):
        self.name = name
        self.attrs: Dict[str, Any] = attrs
        self.children: List["Span"] = []
        self.seconds: float = 0.0
        self._trace = trace
        self._start = 0.0

    def __enter__(self) -> "Span":
        if self._trace is not None:
            self._trace._stack[-1].children.append(self)
            self._trace._stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.seconds += time.perf_counter() - self._start
        if self._trace is not None:
            self._trace._stack.pop()

    # -- inspection ------------------------------------------------------

    def child_seconds(self) -> float:
        return sum(child.seconds for child in self.children)

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (pre-order) called ``name``, else None."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "name": self.name,
            "seconds": self.seconds,
        }
        if self.attrs:
            entry["attrs"] = dict(self.attrs)
        if self.children:
            entry["children"] = [c.to_dict() for c in self.children]
        return entry


class Trace:
    """A tree of spans plus the stack tracking the open ones."""

    def __init__(self):
        self.root = Span("root")
        self._stack: List[Span] = [self.root]

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span that will attach under the innermost open span."""
        return Span(name, trace=self, **attrs)

    def accumulator(self, name: str, **attrs: Any) -> Span:
        """A span attached under the innermost open span *now* but
        never pushed on the stack: enter/exit it repeatedly and its
        ``seconds`` accumulate.  Streaming consumers use this to time
        phases that interleave per item (decode vs reconstruct, one
        class at a time) without emitting one span per item — and
        without holding a stack span open across a ``yield``, which
        would corrupt the tree.
        """
        span = Span(name, **attrs)
        self._stack[-1].children.append(span)
        return span

    @property
    def spans(self) -> List[Span]:
        """Top-level recorded spans."""
        return self.root.children

    def find(self, name: str) -> Optional[Span]:
        return self.root.find(name)

    def total_seconds(self) -> float:
        return self.root.child_seconds()

    def to_dict(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]

    def render(self, indent: int = 2) -> str:
        """The timing tree as fixed-width text.

        Each line shows the span name, its wall time, and its share of
        the parent's time; untimed gaps between a parent and its
        children are implicit (children do not have to cover the
        parent).
        """
        lines: List[str] = []

        def emit(span: Span, depth: int, parent_seconds: float) -> None:
            pad = " " * (indent * depth)
            share = ""
            if parent_seconds > 0:
                share = f"  ({100.0 * span.seconds / parent_seconds:5.1f}%)"
            lines.append(f"{pad}{span.name:<{32 - indent * depth}s}"
                         f" {span.seconds * 1000.0:10.3f} ms{share}")
            for child in span.children:
                emit(child, depth + 1, span.seconds)

        for span in self.spans:
            emit(span, 0, self.total_seconds())
        return "\n".join(lines)
