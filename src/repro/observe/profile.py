"""Profiling hooks: lightweight wall-time probes and a cProfile wrapper.

``profile(name)`` is the everyday tool: a context manager that records
a span plus a microsecond histogram into the ambient recorder, and
does nothing (beyond one ``enabled`` check) when observability is
disabled, so it can be left permanently in library code.

``cprofile(...)`` is the opt-in heavyweight: it runs the block under
:mod:`cProfile` and returns the ``pstats.Stats``; use it from the REPL
or a benchmark when a phase identified by the trace needs a
function-level breakdown.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from . import recorder as _recorder


@contextmanager
def profile(name: str) -> Iterator[None]:
    """Record a span and a ``profile.<name>`` microsecond histogram.

    Safe on hot-ish paths: when no recorder is installed the body runs
    with no timing calls at all.
    """
    active = _recorder.current()
    if not active.enabled:
        yield
        return
    start = time.perf_counter()
    with active.span(name):
        yield
    if active.metrics is not None:
        elapsed_us = int((time.perf_counter() - start) * 1_000_000)
        active.metrics.observe(f"profile.{name}", elapsed_us)


class ProfileResult:
    """The outcome of a :func:`cprofile` block, filled in on exit."""

    def __init__(self):
        self.stats: Optional[pstats.Stats] = None

    def report(self, sort: str = "cumulative", limit: int = 25) -> str:
        if self.stats is None:
            return ""
        out = io.StringIO()
        self.stats.stream = out
        self.stats.sort_stats(sort).print_stats(limit)
        return out.getvalue()


@contextmanager
def cprofile() -> Iterator[ProfileResult]:
    """Run the block under :mod:`cProfile`.

    Yields a :class:`ProfileResult` whose ``stats``/``report()`` are
    available after the block exits::

        with observe.cprofile() as prof:
            pack_archive(classfiles)
        print(prof.report(sort="tottime"))
    """
    result = ProfileResult()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield result
    finally:
        profiler.disable()
        result.stats = pstats.Stats(profiler)
