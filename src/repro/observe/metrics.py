"""The metrics registry: counters, histograms, and byte tallies.

Three primitive shapes cover everything the pipeline reports:

* **counters** — monotonically increasing event counts (opcode
  collapses, MTF hits/misses, skiplist operations),
* **histograms** — integer value distributions kept exact (a value ->
  count dict), summarized into power-of-two buckets on export; used
  for MTF queue-hit depths and skiplist node heights,
* **tallies** — two-level ``group -> label -> byte count`` maps; used
  for per-stream raw/compressed sizes.

Everything is plain dicts and ints so a full pack run costs a few
dict operations per reported event and the registry serializes
directly to JSON (see :mod:`repro.observe.report` for the schema).
"""

from __future__ import annotations

from typing import Any, Dict, List


class Histogram:
    """An exact integer-valued distribution."""

    __slots__ = ("counts",)

    def __init__(self):
        self.counts: Dict[int, int] = {}

    def observe(self, value: int, n: int = 1) -> None:
        self.counts[value] = self.counts.get(value, 0) + n

    @property
    def count(self) -> int:
        return sum(self.counts.values())

    @property
    def total(self) -> int:
        return sum(value * n for value, n in self.counts.items())

    def mean(self) -> float:
        count = self.count
        return self.total / count if count else 0.0

    def percentile(self, q: float) -> int:
        """Smallest value with at least ``q`` of the mass at or below
        it (``q`` in 0..1); 0 for an empty histogram."""
        count = self.count
        if not count:
            return 0
        threshold = q * count
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= threshold:
                return value
        return max(self.counts)

    def buckets(self) -> Dict[str, int]:
        """Power-of-two buckets: ``0``, ``1``, ``2-3``, ``4-7``, ...

        Exact low values (0 and 1) get their own buckets because the
        MTF index semantics make them special (new object / front of
        queue).
        """
        out: Dict[str, int] = {}
        for value, n in sorted(self.counts.items()):
            if value <= 1:
                label = str(value)
            else:
                low = 1 << (value.bit_length() - 1)
                label = f"{low}-{2 * low - 1}"
            out[label] = out.get(label, 0) + n
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": min(self.counts) if self.counts else 0,
            "max": max(self.counts) if self.counts else 0,
            "mean": self.mean(),
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "buckets": self.buckets(),
        }


class Metrics:
    """A flat registry of named counters, histograms, and tallies."""

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.tallies: Dict[str, Dict[str, int]] = {}

    # -- recording -------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: int, n: int = 1) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value, n)

    def tally(self, group: str, label: str, nbytes: int) -> None:
        bucket = self.tallies.get(group)
        if bucket is None:
            bucket = self.tallies[group] = {}
        bucket[label] = bucket.get(label, 0) + nbytes

    # -- inspection ------------------------------------------------------

    def histogram_names(self) -> List[str]:
        return sorted(self.histograms)

    def is_empty(self) -> bool:
        return not (self.counters or self.histograms or self.tallies)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {name: h.to_dict() for name, h
                           in sorted(self.histograms.items())},
            "tallies": {group: dict(sorted(bucket.items()))
                        for group, bucket
                        in sorted(self.tallies.items())},
        }
