"""Machine-readable export of a recording (the ``--metrics-json``
payload) and its schema contract.

The document layout is versioned and stable — ``benchmarks/`` and any
external tooling key off it:

.. code-block:: text

    {
      "schema":     "repro.observe/1",
      "trace":      [ {name, seconds, attrs?, children?}, ... ],
      "counters":   { name: int, ... },
      "histograms": { name: {count, sum, min, max, mean,
                             p50, p90, p99, buckets}, ... },
      "tallies":    { group: { label: bytes, ... }, ... },
      "streams":    {  # present when pack stats were collected
        "total":       int,
        "by_category": { category: bytes, ... },
        "by_stream":   { stream: bytes, ... }
      }
    }

``streams`` attribution follows :mod:`repro.pack.stats` (independent
zlib sizes, see that module's caveat); ``tallies`` carry the same
per-stream numbers plus the raw (pre-zlib) sizes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

SCHEMA = "repro.observe/1"

#: Keys every exported histogram summary carries, in order.
HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean",
                    "p50", "p90", "p99", "buckets")


def to_json(recorder, stats=None, **extra: Any) -> Dict[str, Any]:
    """Serialize a recorder (and optional ``PackStats``) to the
    schema above.  ``extra`` keys are merged at the top level."""
    doc: Dict[str, Any] = {"schema": SCHEMA}
    doc["trace"] = recorder.trace.to_dict() if recorder.trace else []
    if recorder.metrics is not None:
        doc.update(recorder.metrics.to_dict())
    else:
        doc.update({"counters": {}, "histograms": {}, "tallies": {}})
    if stats is not None:
        doc["streams"] = {
            "total": stats.total,
            "by_category": dict(sorted(stats.by_category.items())),
            "by_stream": dict(sorted(stats.by_stream.items())),
        }
    doc.update(extra)
    return doc


def dump_json(recorder, path: Optional[str] = None, stats=None,
              **extra: Any) -> str:
    """Render (and optionally write) the JSON document; returns it."""
    text = json.dumps(to_json(recorder, stats=stats, **extra), indent=2,
                      sort_keys=False)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text
