"""Recorder installation: the zero-overhead on/off switch.

Instrumented code never checks a global flag on its hot paths.
Instead it asks :func:`current` for the installed recorder once, at
construction time, and either holds ``recorder.metrics`` (``None``
when disabled — sites guard with a single ``is not None`` branch) or
calls ``recorder.span(...)`` at phase granularity, where the disabled
recorder hands back a shared do-nothing context manager.

The default recorder is the module-level :data:`NULL_RECORDER`;
:func:`recording` installs a live one for the duration of a block::

    with observe.recording() as rec:
        packed = pack_archive(classfiles)
    print(rec.trace.render())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .metrics import Metrics
from .trace import Span, Trace


class _NullSpan:
    """A reusable context manager that does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: no trace, no metrics, no-op spans."""

    enabled = False
    trace: Optional[Trace] = None
    metrics: Optional[Metrics] = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def accumulator(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN


NULL_RECORDER = NullRecorder()


class Recorder:
    """A live recorder bundling one trace and one metrics registry."""

    enabled = True

    def __init__(self):
        self.trace = Trace()
        self.metrics: Optional[Metrics] = Metrics()

    def span(self, name: str, **attrs: Any) -> Span:
        return self.trace.span(name, **attrs)

    def accumulator(self, name: str, **attrs: Any) -> Span:
        return self.trace.accumulator(name, **attrs)


_current = NULL_RECORDER


def current():
    """The installed recorder (the null recorder when disabled)."""
    return _current


def enabled() -> bool:
    return _current.enabled


def install(recorder: Optional[Recorder] = None) -> Recorder:
    """Install (and return) a recorder as the ambient one."""
    global _current
    if recorder is None:
        recorder = Recorder()
    _current = recorder
    return recorder


def uninstall() -> None:
    """Restore the disabled (null) recorder."""
    global _current
    _current = NULL_RECORDER


@contextmanager
def silenced() -> Iterator[None]:
    """Suppress the ambient recorder for the duration of a block.

    Internal dry runs (the layout sizing sub-pass re-encodes the
    archive against a byte-counting port) must not pollute the live
    trace or double-count metrics; they run under ``silenced()`` so
    any coders they construct capture the null recorder.
    """
    global _current
    previous = _current
    _current = NULL_RECORDER
    try:
        yield
    finally:
        _current = previous


@contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Install a recorder for the duration of a ``with`` block.

    The previously installed recorder (usually the null one) is
    restored on exit, even on error, so nested recordings compose.
    """
    global _current
    previous = _current
    active = install(recorder)
    try:
        yield active
    finally:
        _current = previous
