"""repro: a reproduction of "Compressing Java Class Files"
(William Pugh, PLDI 1999).

The package provides the paper's packed wire format for collections of
JVM class files, every substrate it depends on (a full class-file
reader/writer, a mini-Java compiler to synthesize corpora, jar
containers, move-to-front skiplist queues, integer/Huffman/arithmetic
codecs), the related-work baselines (Jazz, Clazz), and the benchmark
harness that regenerates every table and figure of the paper.

Quickstart::

    from repro import generate_suite, strip_classes
    from repro import pack_archive, unpack_archive

    classes = strip_classes(generate_suite("javac"))
    ordered = [classes[name] for name in sorted(classes)]
    packed = pack_archive(ordered)
    restored = unpack_archive(packed)
"""

from . import observe
from .classfile import (
    ClassFile,
    normalize,
    parse_class,
    verify_archive,
    verify_class,
    write_class,
)
from .corpus import SUITE_ORDER, generate_suite, suite_names
from .jar import build_baselines, jar_sizes, make_jar, strip_classes
from .loader import EagerClassLoader, eager_order
from .minijava import compile_sources
from .pack import (
    PackOptions,
    archives_equal,
    pack_archive,
    pack_archive_with_stats,
    semantic_equal,
    unpack_archive,
)

__version__ = "1.0.0"

__all__ = [
    "ClassFile",
    "EagerClassLoader",
    "PackOptions",
    "SUITE_ORDER",
    "archives_equal",
    "build_baselines",
    "compile_sources",
    "eager_order",
    "generate_suite",
    "jar_sizes",
    "make_jar",
    "normalize",
    "observe",
    "pack_archive",
    "pack_archive_with_stats",
    "parse_class",
    "semantic_equal",
    "strip_classes",
    "suite_names",
    "unpack_archive",
    "verify_archive",
    "verify_class",
    "write_class",
]
