"""The asyncio streaming front end: ``repro serve --async``.

Same protocol surface as the threaded server (``/pack``, ``/delta``,
``/stats``, ``/healthz``) on an :mod:`asyncio` transport built
directly on ``asyncio.start_server`` — no third-party HTTP stack.
What the event loop buys over one-thread-per-request:

* **streamed bodies** — chunked (``Transfer-Encoding: chunked``)
  uploads are decoded incrementally with the ``--max-body`` cap
  enforced *as bytes arrive*, and responses are written in 64 KiB
  slices with an ``await drain()`` between slices, so a slow client
  paces its own connection instead of ballooning server buffers
  (per-connection backpressure);
* **conditional requests** — the strong ETag of a packed archive is
  its content-addressed cache key; ``If-None-Match`` on ``POST
  /pack``/``/delta`` (and ``GET /pack/<key>``) answers ``304 Not
  Modified`` with an empty body before any engine work is queued;
* **resumable downloads** — ``GET /pack/<key>`` serves cached
  archives by key with single-range ``Range: bytes=…`` support
  (``206``/``416``, ``Accept-Ranges``), so an interrupted fetch
  resumes instead of restarting;
* **admission control** — engine calls run on a thread-pool executor
  gated by the shared :class:`~repro.service.admission
  .AdmissionControl`; a saturated queue answers ``429`` with
  ``Retry-After`` instead of stalling the accept loop;
* **release-chain delta serving** — ``POST /delta`` clients advertise
  the releases they hold via ``X-Repro-Have``; the gateway consults
  its :class:`~repro.gateway.releases.ReleaseGraph`, probes the
  cheapest candidate bases, serves the smallest delta container, and
  falls back to the full pack when no advertised base beats it.

Pack bytes served by the gateway are byte-identical to
``pack_archive`` output — the engine underneath is the same
:class:`~repro.service.scheduler.BatchEngine`, pool, retries, triage
isolation and all.  See docs/SERVICE.md ("The asyncio gateway").
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..errors import JobInputError, ReproError
from ..service.admission import AdmissionControl, QueueSaturated
from ..service.cache import cache_key
from ..service.frontend import (
    TriageRejected,
    etag_for,
    etag_matches,
    is_cache_key,
    load_request_classes,
    parse_have_keys,
    parse_range,
    result_content_type,
    result_headers,
)
from ..service.http import DEFAULT_MAX_BODY, _flag, options_from_query
from ..service.jobs import JobResult, PackJob
from ..service.scheduler import BatchEngine
from .releases import ReleaseGraph
from .stats import GatewayStats

#: Response bodies are written (and chunked-encoded) in slices of
#: this size, with a ``drain()`` between slices.
STREAM_CHUNK = 64 * 1024

#: Unknown delta bases probed (diffed) per ``/delta`` request, after
#: known-edge candidates.  Bounds worst-case diff work per request.
MAX_DELTA_PROBES = 4

_REASONS = {
    200: "OK", 206: "Partial Content", 304: "Not Modified",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 416: "Range Not Satisfiable",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 501: "Not Implemented",
}


class _ProtocolError(Exception):
    """An HTTP-level failure with a ready-to-send status."""

    def __init__(self, status: int, message: str,
                 close: bool = False,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.close = close
        self.headers = headers or {}


@dataclass
class _Request:
    method: str
    target: str
    headers: Dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def path(self) -> str:
        return urlparse(self.target).path

    @property
    def query(self) -> str:
        return urlparse(self.target).query


@dataclass
class _Response:
    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    #: Stream the body with ``Transfer-Encoding: chunked`` instead of
    #: ``Content-Length`` (POST success bodies; Range replies must
    #: keep a length).
    chunked: bool = False
    close: bool = False


def _json_response(status: int, doc: Dict[str, Any],
                   **kwargs: Any) -> _Response:
    return _Response(status,
                     (json.dumps(doc, indent=2) + "\n").encode(),
                     **kwargs)


def _error_response(status: int, message: str,
                    **kwargs: Any) -> _Response:
    return _json_response(status, {"error": message}, **kwargs)


class AsyncGateway:
    """The asyncio serving subsystem around one shared engine.

    Mirrors :class:`~repro.service.http.PackService`'s lifecycle
    (``start_background`` / ``serve_forever`` / ``shutdown`` /
    context manager) so the CLI and tests treat the two front ends
    interchangeably.
    """

    def __init__(self, engine: BatchEngine,
                 host: str = "127.0.0.1", port: int = 8790,
                 verbose: bool = False,
                 max_body: int = DEFAULT_MAX_BODY,
                 triage: bool = False,
                 releases: Optional[ReleaseGraph] = None,
                 admission: Optional[AdmissionControl] = None):
        self.engine = engine
        self.host = host
        self.port = port
        self.verbose = verbose
        self.max_body = max_body
        self.triage_default = triage
        self.releases = releases or ReleaseGraph()
        self.stats = GatewayStats()
        # Same rule as PackService: a workers=0 engine runs inline
        # and has no pool queue, so nothing to admission-gate.
        if admission is None and engine.workers > 0:
            admission = AdmissionControl(engine.queue_limit)
        self.admission = admission
        self.address: Tuple[str, int] = (host, port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    # -- lifecycle -------------------------------------------------------

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        # One executor thread per admission slot: an admitted request
        # always has a thread to run its engine call on.
        self._executor = ThreadPoolExecutor(
            max_workers=self.engine.queue_limit,
            thread_name_prefix="repro-gateway")
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=STREAM_CHUNK)
        try:
            self.address = server.sockets[0].getsockname()[:2]
            self._ready.set()
            async with server:
                await self._stop.wait()
        finally:
            self._executor.shutdown(wait=False)

    def serve_forever(self) -> None:
        """Run the event loop in this thread (the CLI main loop)."""
        asyncio.run(self._serve())

    def start_background(self) -> Tuple[str, int]:
        """Run the loop in a daemon thread; returns the bound
        address."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-gateway",
            daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("gateway failed to start")
        return self.address

    def shutdown(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None \
                and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already torn down
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "AsyncGateway":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _ProtocolError as exc:
                    self.stats.count("errors.protocol")
                    await self._write_response(
                        writer, _error_response(
                            exc.status, str(exc), close=True,
                            headers=exc.headers))
                    break
                if request is None:
                    break
                response = await self._dispatch(request, writer)
                if request.version == "HTTP/1.0":
                    # HTTP/1.0 clients don't understand chunked
                    # framing; fall back to Content-Length (the body
                    # is already in memory) and close the connection
                    # (no keep-alive pre-1.1).
                    response.chunked = False
                    response.close = True
                await self._write_response(writer, response,
                                           head_only=False)
                if response.close or request.headers.get(
                        "connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-exchange
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[_Request]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, version = \
                line.decode("latin-1").strip().split()
        except ValueError:
            raise _ProtocolError(400, "malformed request line",
                                 close=True) from None
        if not version.startswith("HTTP/1."):
            raise _ProtocolError(501, f"unsupported {version}",
                                 close=True)
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                return None  # EOF mid-headers
            if len(headers) >= 128:
                raise _ProtocolError(431, "too many headers",
                                     close=True)
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _ProtocolError(400,
                                     f"malformed header {raw!r}",
                                     close=True)
            headers[name.strip().lower()] = value.strip()
        request = _Request(method, target, headers, version=version)
        if method == "POST":
            request.body = await self._read_body(reader, headers)
        elif "content-length" in headers \
                or "transfer-encoding" in headers:
            # Drain (and cap) any declared body on other methods so
            # the next keep-alive request starts at a request line
            # instead of parsing leftover body bytes.
            await self._read_body(reader, headers)
        if self.verbose:
            print(f"gateway: {method} {target} "
                  f"({len(request.body)} byte body)")
        return request

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Dict[str, str]) -> bytes:
        if headers.get("expect", "").lower() == "100-continue":
            # The client is waiting for permission to send the body.
            pass  # granted implicitly by reading; writer side sends
            # nothing: urllib/http.client don't use Expect, and a
            # strict client will proceed after its timeout.
        encoding = headers.get("transfer-encoding", "").lower()
        if "chunked" in encoding:
            return await self._read_chunked(reader)
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _ProtocolError(400, "bad Content-Length",
                                 close=True) from None
        if length < 0:
            raise _ProtocolError(400, "bad Content-Length", close=True)
        if self.max_body and length > self.max_body:
            # Refuse before reading — same contract as the threaded
            # server's pre-read cap.
            raise _ProtocolError(
                413, f"request body of {length} bytes exceeds the "
                     f"{self.max_body}-byte limit", close=True)
        if length == 0:
            return b""
        return await reader.readexactly(length)

    async def _read_chunked(self, reader: asyncio.StreamReader
                            ) -> bytes:
        """Decode a chunked upload, enforcing the cap incrementally —
        an unbounded stream is cut off at ``max_body``, not after."""
        body = bytearray()
        while True:
            size_line = await reader.readline()
            try:
                size = int(size_line.split(b";", 1)[0].strip(), 16)
            except ValueError:
                raise _ProtocolError(400, "malformed chunk size",
                                     close=True) from None
            if size == 0:
                while True:  # drain trailers
                    trailer = await reader.readline()
                    if trailer in (b"\r\n", b"\n", b""):
                        break
                return bytes(body)
            if self.max_body and len(body) + size > self.max_body:
                raise _ProtocolError(
                    413, f"chunked body exceeds the "
                         f"{self.max_body}-byte limit", close=True)
            body.extend(await reader.readexactly(size))
            await reader.readexactly(2)  # chunk-terminating CRLF

    # -- response writing ------------------------------------------------

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: _Response,
                              head_only: bool = False) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = [f"HTTP/1.1 {response.status} {reason}",
                "Server: repro-gateway/1"]
        headers = dict(response.headers)
        if response.status != 304:
            headers.setdefault("Content-Type", response.content_type)
        if response.status == 304:
            pass  # no body, no framing headers
        elif response.chunked:
            headers["Transfer-Encoding"] = "chunked"
        else:
            headers["Content-Length"] = str(len(response.body))
        if response.close:
            headers["Connection"] = "close"
        head.extend(f"{name}: {value}"
                    for name, value in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n")
                     .encode("latin-1"))
        if response.status == 304 or head_only:
            await writer.drain()
            return
        body = response.body
        for offset in range(0, len(body), STREAM_CHUNK):
            piece = body[offset:offset + STREAM_CHUNK]
            if response.chunked:
                writer.write(f"{len(piece):x}\r\n".encode())
                writer.write(piece)
                writer.write(b"\r\n")
            else:
                writer.write(piece)
            # Per-connection backpressure: wait for the transport
            # buffer to drain before producing the next slice.
            await writer.drain()
        if response.chunked:
            writer.write(b"0\r\n\r\n")
        await writer.drain()
        self.stats.count("bytes_out", len(body))

    # -- dispatch --------------------------------------------------------

    async def _dispatch(self, request: _Request,
                        writer: asyncio.StreamWriter) -> _Response:
        start = time.perf_counter()
        route, handler = self._route(request)
        self.stats.count("requests")
        try:
            response = await handler(request)
        except QueueSaturated as exc:
            self.stats.count("rejected")
            response = _error_response(
                429, str(exc),
                headers={"Retry-After": exc.retry_after_header})
        except _ProtocolError as exc:
            response = _error_response(exc.status, str(exc),
                                       close=exc.close,
                                       headers=exc.headers)
        except TriageRejected as exc:
            response = _json_response(
                400, {"error": str(exc), "triage": exc.report})
        except (JobInputError, ValueError) as exc:
            response = _error_response(400, str(exc))
        except ReproError as exc:
            response = _error_response(500, str(exc))
        except Exception:
            # A handler bug must surface as a 500 (counted below),
            # not a silently dropped connection.
            self.stats.count("errors.unhandled")
            traceback.print_exc()
            response = _error_response(500, "internal server error")
        if response.status >= 500:
            self.stats.count("errors.5xx")
        elif response.status >= 400:
            self.stats.count("errors.4xx")
        self.stats.observe_route(route,
                                 time.perf_counter() - start)
        return response

    def _route(self, request: _Request):
        path, method = request.path, request.method
        if path == "/healthz" and method == "GET":
            return "healthz", self._handle_healthz
        if path == "/stats" and method == "GET":
            return "stats", self._handle_stats
        if path == "/pack" and method == "POST":
            return "pack", self._handle_pack
        if path.startswith("/pack/") and method == "GET":
            return "pack_get", self._handle_pack_get
        if path == "/delta" and method == "POST":
            return "delta", self._handle_delta
        return "unknown", self._handle_unknown

    async def _handle_unknown(self, request: _Request) -> _Response:
        return _error_response(
            404, f"no such endpoint: "
                 f"{request.method} {request.path}")

    async def _handle_healthz(self, request: _Request) -> _Response:
        return _Response(200, b"ok\n", content_type="text/plain")

    async def _handle_stats(self, request: _Request) -> _Response:
        doc = self.engine.stats_dict()
        doc["gateway"] = self.stats.to_dict()
        doc["gateway"]["admission"] = \
            self.admission.stats() if self.admission is not None \
            else None
        doc["gateway"]["releases"] = self.releases.stats()
        return _json_response(200, doc)

    # -- blocking work ----------------------------------------------------

    async def _run_blocking(self, fn, *args):
        return await self._loop.run_in_executor(
            self._executor, fn, *args)

    def _prepare_job(self, request: _Request
                     ) -> Tuple[PackJob, Dict[str, str],
                                Optional[str]]:
        """Parse options + classes; returns
        ``(job, triage headers, cache key or None)``."""
        options, strip, eager = options_from_query(
            request.query, self.engine.codec_backend)
        params = parse_qs(request.query)
        triage = _flag(params, "triage", self.triage_default)
        classes, triage_headers = \
            load_request_classes(request.body, triage)
        job = PackJob(job_id="gateway", classes=classes,
                      options=options, strip=strip, eager=eager)
        key = None
        if self.engine.cache is not None:
            key = cache_key(classes, options, strip, eager)
        return job, triage_headers, key

    def _execute(self, job: PackJob) -> JobResult:
        """Admission-gated engine call (runs on an executor
        thread)."""
        if self.admission is not None:
            with self.admission.admit():
                result = self.engine.execute(job)
        else:
            result = self.engine.execute(job)
        if result.data is not None and not result.degraded \
                and result.key is not None:
            self.releases.add_release(result.key, len(result.data))
        return result

    @staticmethod
    def _not_modified(key: str,
                      extra: Optional[Dict[str, str]] = None
                      ) -> _Response:
        headers = {"ETag": etag_for(key), "X-Repro-Key": key}
        headers.update(extra or {})
        return _Response(304, headers=headers)

    # -- /pack ------------------------------------------------------------

    async def _handle_pack(self, request: _Request) -> _Response:
        job, triage_headers, key = await self._run_blocking(
            self._prepare_job, request)
        if key is not None and etag_matches(
                request.headers.get("if-none-match"), key):
            # The client already holds these exact bytes; skip the
            # engine entirely.
            self.stats.count("pack.not_modified")
            return self._not_modified(key, triage_headers)
        result = await self._run_blocking(self._execute, job)
        if result.data is None:
            return _json_response(500, {
                "error": result.error or "pack failed",
                "job": result.to_dict(),
            })
        self.stats.count("pack.served")
        return _Response(
            200, result.data,
            content_type=result_content_type(result),
            headers=result_headers(result, triage_headers),
            chunked=True)

    async def _handle_pack_get(self, request: _Request) -> _Response:
        if self.engine.cache is None:
            return _error_response(
                400, "GET /pack/<key> requires the result cache "
                     "(serve without --no-cache)")
        key = request.path[len("/pack/"):]
        if not is_cache_key(key):
            # Only 64-hex digests ever name an archive; anything
            # else (notably ../-shaped path text) must not reach the
            # cache's spill-file lookup.
            return _error_response(
                404, "malformed archive key (expected the 64-hex "
                     "X-Repro-Key of a packed archive)")
        data = await self._run_blocking(
            lambda: self.engine.cache.get(key)[0])
        if data is None:
            return _error_response(
                404, f"unknown archive {key}; POST /pack to "
                     "create it")
        if etag_matches(request.headers.get("if-none-match"), key):
            self.stats.count("pack.not_modified")
            return self._not_modified(key)
        headers = {"ETag": etag_for(key), "X-Repro-Key": key,
                   "Accept-Ranges": "bytes"}
        try:
            span = parse_range(request.headers.get("range"),
                               len(data))
        except ValueError:
            self.stats.count("pack.bad_range")
            return _error_response(
                416, "unsatisfiable Range",
                headers={"Content-Range": f"bytes */{len(data)}"})
        if span is None:
            self.stats.count("pack.fetched")
            return _Response(200, data,
                             content_type="application/x-repro-pack",
                             headers=headers)
        start, end = span
        headers["Content-Range"] = \
            f"bytes {start}-{end}/{len(data)}"
        self.stats.count("pack.resumed")
        return _Response(206, data[start:end + 1],
                         content_type="application/x-repro-pack",
                         headers=headers)

    # -- /delta -----------------------------------------------------------

    @staticmethod
    def _delta_cache_key(base_key: str, target_key: str) -> str:
        """Content address of a delta container.

        Both inputs are content-addressed packs and the diff is
        deterministic, so the pair of keys addresses the delta bytes;
        the option canonicalization is already inside each pack key.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(b"repro.gateway.delta/1")
        digest.update(base_key.encode())
        digest.update(b">")
        digest.update(target_key.encode())
        return digest.hexdigest()

    def _probe_bases(self, have, result, options):
        """Pick the cheapest delta among advertised bases (runs on an
        executor thread).  Returns ``(delta bytes, base key, summary
        headers)`` or ``None`` when no base beats the full pack."""
        from ..delta import diff_packed

        cache = self.engine.cache
        target_key = result.key
        best = None  # (delta bytes, base key, headers dict)
        probes = 0
        for base_key, known_cost in self.releases.rank_bases(
                have, target_key):
            if base_key == target_key:
                continue
            if best is not None and known_cost is not None \
                    and known_cost >= len(best[0]):
                # Ranked ascending: everything after a known cost
                # that already loses is either worse or unknown.
                continue
            delta_key = self._delta_cache_key(base_key, target_key)
            delta, _ = cache.get(delta_key)
            headers: Optional[Dict[str, str]] = None
            if delta is not None:
                meta, _ = cache.get(delta_key + "-meta")
                if meta is not None:
                    headers = json.loads(meta)
                self.stats.count("delta.cache_hits")
            else:
                if known_cost is None:
                    if probes >= MAX_DELTA_PROBES:
                        continue
                    probes += 1
                base_data, _ = cache.get(base_key)
                if base_data is None:
                    self.stats.count("delta.base_misses")
                    continue
                try:
                    delta, summary = diff_packed(
                        base_data, result.data, options)
                except ReproError:
                    self.stats.count("delta.probe_failures")
                    continue
                headers = {
                    "X-Repro-Delta-Unchanged": str(summary.unchanged),
                    "X-Repro-Delta-Modified": str(summary.modified),
                    "X-Repro-Delta-Added": str(summary.added),
                    "X-Repro-Delta-Removed": str(summary.removed),
                    "X-Repro-Delta-Ratio": f"{summary.ratio:.4f}",
                }
                cache.put(delta_key, delta)
                cache.put(delta_key + "-meta",
                          json.dumps(headers).encode())
                self.releases.record_edge(base_key, target_key,
                                          len(delta))
            if best is None or len(delta) < len(best[0]):
                best = (delta, base_key, headers or {})
        if best is not None and len(best[0]) < len(result.data):
            return best
        return None

    async def _handle_delta(self, request: _Request) -> _Response:
        if self.engine.cache is None:
            return _error_response(
                400, "/delta requires the result cache "
                     "(serve without --no-cache)")
        params = parse_qs(request.query)
        have = parse_have_keys(request.headers.get("x-repro-have"),
                               params.get("base", [None])[-1])
        if not have:
            return _error_response(
                400, "advertise held releases via X-Repro-Have "
                     "(or the legacy base=<key> parameter)")
        job, triage_headers, key = await self._run_blocking(
            self._prepare_job, request)
        if key is not None and etag_matches(
                request.headers.get("if-none-match"), key):
            self.stats.count("delta.not_modified")
            return self._not_modified(key, triage_headers)
        result = await self._run_blocking(self._execute, job)
        if result.data is None:
            return _json_response(500, {
                "error": result.error or "pack failed",
                "job": result.to_dict(),
            })
        if result.degraded:
            return _json_response(500, {
                "error": "pack degraded to a fallback jar; "
                         "no delta possible",
                "job": result.to_dict(),
            })
        options, _, _ = options_from_query(
            request.query, self.engine.codec_backend)
        best = await self._run_blocking(
            self._probe_bases, have, result, options)
        headers = result_headers(result, triage_headers)
        if best is None:
            # No advertised base beats re-shipping the whole pack.
            self.stats.count("delta.served_full")
            headers["X-Repro-Served"] = "full"
            return _Response(
                200, result.data,
                content_type=result_content_type(result),
                headers=headers, chunked=True)
        delta, base_key, summary_headers = best
        self.stats.count("delta.served_delta")
        headers.update(summary_headers)
        headers["X-Repro-Served"] = "delta"
        headers["X-Repro-Delta-Base"] = base_key
        return _Response(200, delta,
                         content_type="application/x-repro-dpack",
                         headers=headers, chunked=True)
