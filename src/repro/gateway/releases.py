"""The release graph: which archive versions exist and how cheaply
one turns into another.

Every pack the gateway serves is a *release* — a content-addressed
key plus its full-pack size.  Every delta it computes is an *edge*
``base -> target`` weighted by the delta container's byte size.  A
``/delta`` client advertises the releases it already holds
(``X-Repro-Have``); the gateway answers with the cheapest way to get
it to the target:

* a **known edge** from an advertised base — served straight from the
  delta cache, no diff work;
* an **unknown edge** — the diff is computed once, recorded, and the
  next client holding the same base gets the known-edge path;
* **full pack** — when no advertised base produces a delta smaller
  than the full archive (the paper's wire format is already small, so
  a client too many releases behind is often better served whole).

The graph is bounded: releases are kept LRU by last touch, and
evicting a release drops its edges.  Everything is guarded by one
lock — operations are dict lookups, orders of magnitude cheaper than
the diffs they index, so a sharded design would be ceremony here.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Default bound on tracked releases.  Each release is a dict entry
#: plus its out/in edges; 4096 covers months of daily builds for
#: hundreds of artifacts.
DEFAULT_MAX_RELEASES = 4096


class ReleaseGraph:
    """A bounded directed graph of releases and delta costs."""

    def __init__(self, max_releases: int = DEFAULT_MAX_RELEASES):
        if max_releases < 2:
            raise ValueError("max_releases must be >= 2")
        self.max_releases = max_releases
        self._lock = threading.Lock()
        #: key -> {"size": full pack bytes, "edges": {target: bytes}}
        self._releases: "OrderedDict[str, Dict[str, Any]]" = \
            OrderedDict()
        self.evictions = 0

    # -- internals (lock held) ------------------------------------------

    def _touch(self, key: str) -> None:
        self._releases.move_to_end(key)

    def _ensure(self, key: str, size: Optional[int] = None
                ) -> Dict[str, Any]:
        node = self._releases.get(key)
        if node is None:
            node = {"size": size or 0, "edges": {}}
            self._releases[key] = node
            self._evict_to_bound()
        elif size:
            node["size"] = size
        self._touch(key)
        return node

    def _evict_to_bound(self) -> None:
        while len(self._releases) > self.max_releases:
            evicted, _ = self._releases.popitem(last=False)
            self.evictions += 1
            for node in self._releases.values():
                node["edges"].pop(evicted, None)

    # -- recording -------------------------------------------------------

    def add_release(self, key: str, size: int) -> None:
        """Register (or refresh) a release and its full-pack size."""
        with self._lock:
            self._ensure(key, size)

    def record_edge(self, base: str, target: str,
                    delta_bytes: int) -> None:
        """Record that ``base -> target`` costs ``delta_bytes``."""
        if base == target:
            return
        with self._lock:
            node = self._ensure(base)
            self._ensure(target)
            node["edges"][target] = delta_bytes

    # -- queries ---------------------------------------------------------

    def known_edge(self, base: str, target: str) -> Optional[int]:
        with self._lock:
            node = self._releases.get(base)
            if node is None:
                return None
            return node["edges"].get(target)

    def release_size(self, key: str) -> Optional[int]:
        with self._lock:
            node = self._releases.get(key)
            return node["size"] if node and node["size"] else None

    def rank_bases(self, have: Iterable[str], target: str
                   ) -> List[Tuple[str, Optional[int]]]:
        """Advertised bases ordered cheapest-first for ``target``.

        Bases with a known edge cost come first (ascending); unknown
        bases follow in client order.  The gateway probes in this
        order so a known-cheap base short-circuits diff work.
        """
        known: List[Tuple[str, int]] = []
        unknown: List[Tuple[str, Optional[int]]] = []
        with self._lock:
            for key in have:
                node = self._releases.get(key)
                cost = node["edges"].get(target) if node else None
                if cost is None:
                    unknown.append((key, None))
                else:
                    known.append((key, cost))
        known.sort(key=lambda pair: pair[1])
        return list(known) + unknown

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._releases)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            edges = sum(len(node["edges"])
                        for node in self._releases.values())
            return {
                "releases": len(self._releases),
                "edges": edges,
                "max_releases": self.max_releases,
                "evictions": self.evictions,
            }
