"""Gateway observability: counters and per-route latency histograms.

The engine already tracks job-level metrics; the gateway adds the
transport level — how many requests each route saw, how they resolved
(``not_modified``, ``delta_served``, ``full_served``, ``rejected``),
and a per-route wall-latency histogram with exact p50/p99 (the
:class:`~repro.observe.metrics.Histogram` kept by ``/stats``).

Everything is mirrored into an installed :mod:`repro.observe`
recorder under ``gateway.*`` (counters) and ``gateway.route_ms.*``
(histograms), same convention as the engine's ``service.*`` family,
so a ``--metrics-json`` capture of a serving session carries both
layers.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

from .. import observe
from ..observe.metrics import Histogram


class GatewayStats:
    """Thread-safe counters plus per-route latency histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._routes: Dict[str, Histogram] = {}

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
        metrics = observe.current().metrics
        if metrics is not None:
            metrics.count(f"gateway.{name}", n)

    def observe_route(self, route: str, seconds: float) -> None:
        ms = int(seconds * 1000)
        with self._lock:
            histogram = self._routes.get(route)
            if histogram is None:
                histogram = self._routes[route] = Histogram()
            histogram.observe(ms)
        metrics = observe.current().metrics
        if metrics is not None:
            metrics.observe(f"gateway.route_ms.{route}", ms)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "routes": {
                    route: {
                        "count": h.count,
                        "mean_ms": round(h.mean(), 3),
                        "p50_ms": h.percentile(0.50),
                        "p99_ms": h.percentile(0.99),
                        "max_ms": max(h.counts) if h.counts else 0,
                    }
                    for route, h in sorted(self._routes.items())
                },
            }
