"""repro.gateway — the asyncio streaming front end.

The gateway layers three serving-scale pieces over the batch engine:

* :mod:`repro.gateway.http` — :class:`AsyncGateway`, a pure-asyncio
  HTTP front end with streamed chunked bodies, conditional GET
  (ETag = cache key), Range resume, per-connection backpressure, and
  429 admission control shared with the threaded server;
* :mod:`repro.gateway.shards` — :class:`ShardedResultCache`, the
  content-addressed cache split into independently locked LRU shards
  routed by digest prefix;
* :mod:`repro.gateway.releases` — :class:`ReleaseGraph`, the bounded
  graph of known releases and delta costs behind release-chain
  ``/delta`` serving (``X-Repro-Have``).

Run it with ``repro serve --async``.
"""

from .http import MAX_DELTA_PROBES, STREAM_CHUNK, AsyncGateway
from .releases import DEFAULT_MAX_RELEASES, ReleaseGraph
from .shards import DEFAULT_SHARDS, ShardedResultCache, shard_index
from .stats import GatewayStats

__all__ = [
    "AsyncGateway",
    "DEFAULT_MAX_RELEASES",
    "DEFAULT_SHARDS",
    "GatewayStats",
    "MAX_DELTA_PROBES",
    "ReleaseGraph",
    "STREAM_CHUNK",
    "ShardedResultCache",
    "shard_index",
]
