"""Sharded content-addressed cache for hot-archive serving.

The single-lock :class:`~repro.service.cache.ResultCache` is correct
but serializes *everything* — including disk-spill reads, which hold
the lock across file I/O.  Under concurrent cache-hit traffic (the
gateway's entire point) that one lock becomes the ceiling.

:class:`ShardedResultCache` splits the keyspace into ``shards``
independent :class:`ResultCache` instances, routed by a prefix of the
key's hex digest (:func:`shard_index`).  Each shard has its own lock
and its own LRU, so hits on different hot archives proceed in
parallel — and because a disk read releases the GIL, concurrent
disk-hits on different shards genuinely overlap.

Properties worth keeping:

* **Stable routing** — :func:`shard_index` is a pure function of the
  key text, so the same key always lands on the same shard, across
  instances, processes, and restarts (tested as a property).
* **Disk compatibility** — every shard shares one spill directory
  with the exact layout the single-lock cache uses (two-level
  ``key[:2]/key`` fan-out).  A ``--cache-dir`` written by the
  threaded server serves the gateway and vice versa; routing
  determinism means no two shards ever touch the same file.
* **API compatibility** — same ``get``/``put``/``stats`` surface as
  :class:`ResultCache`, so the :class:`BatchEngine` takes either.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..service.cache import DEFAULT_MAX_BYTES, ResultCache

#: Default shard count for ``repro serve --async``.  Shards cost a
#: few dict entries each; 8 keeps collision probability low for
#: dozens of hot archives.  The byte budget is *not* fragmented
#: across shards — admission is per-shard up to the full budget,
#: with a global accounting pass after each put.
DEFAULT_SHARDS = 8

#: Hex digits of the key that select the shard.  8 digits = 32 bits,
#: far more resolution than any sane shard count needs.
_PREFIX_DIGITS = 8


def shard_index(key: str, shards: int) -> int:
    """The shard a key routes to — a pure, stable function.

    Keys are hex SHA-256 digests; the first 8 hex digits are already
    uniformly distributed, so a modulo is an unbiased router.  Keys
    that are not hex (never produced by the service, but the cache
    should not crash on them) fall back to ``hash``-free folding over
    the raw bytes so routing stays deterministic across processes.
    """
    prefix = key[:_PREFIX_DIGITS]
    try:
        value = int(prefix, 16)
    except ValueError:
        value = 0
        for byte in prefix.encode("utf-8", "replace"):
            value = (value * 131 + byte) & 0xFFFFFFFF
    return value % shards


class ShardedResultCache:
    """N independent LRU shards behind the :class:`ResultCache` API."""

    def __init__(self,
                 shards: int = DEFAULT_SHARDS,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 spill_dir: Optional[Path] = None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.max_bytes = max_bytes
        self.spill_dir = Path(spill_dir) if spill_dir else None
        # Every shard gets the *whole* byte budget as its admission
        # cap — splitting it N ways would silently refuse any entry
        # larger than budget/N, a regression against the single-lock
        # cache, which admits anything up to the full budget.  The
        # global bound is enforced after each put instead
        # (:meth:`_evict_to_global_budget`).  Every shard shares the
        # one spill directory (stable routing keeps their key sets
        # disjoint, so the on-disk layout is identical to the
        # single-lock cache's).
        self._shards: List[ResultCache] = [
            ResultCache(max_bytes=max_bytes, spill_dir=spill_dir)
            for _ in range(shards)
        ]

    def _shard(self, key: str) -> ResultCache:
        return self._shards[shard_index(key, self.shards)]

    def _evict_to_global_budget(self) -> None:
        """Trim the shard ensemble back under the global budget.

        Approximate global LRU: evict the least-recently-used entry
        of whichever shard currently holds the most bytes, until the
        sum fits.  No cross-shard lock is taken — each probe/evict
        takes one shard lock at a time, so a racing put can overshoot
        momentarily, and the next put converges it.
        """
        while True:
            sizes = [shard.current_bytes for shard in self._shards]
            if sum(sizes) <= self.max_bytes:
                return
            fullest = self._shards[sizes.index(max(sizes))]
            if fullest.evict_lru() == 0:
                return  # raced with a clear(); nothing left to trim

    # -- ResultCache API -------------------------------------------------

    def get(self, key: str) -> Tuple[Optional[bytes], bool]:
        data, from_disk = self._shard(key).get(key)
        if from_disk and self.max_bytes:
            # A disk hit re-admits the bytes to its shard's memory
            # level; keep the ensemble under the global budget.
            self._evict_to_global_budget()
        return data, from_disk

    def put(self, key: str, data: bytes) -> None:
        self._shard(key).put(key, data)
        if self.max_bytes:
            self._evict_to_global_budget()

    def __contains__(self, key: str) -> bool:
        return key in self._shard(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def current_bytes(self) -> int:
        return sum(shard.current_bytes for shard in self._shards)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    # -- introspection ---------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    @property
    def disk_hits(self) -> int:
        return sum(shard.disk_hits for shard in self._shards)

    @property
    def evictions(self) -> int:
        return sum(shard.evictions for shard in self._shards)

    def stats(self) -> Dict[str, Any]:
        """Aggregate counters plus per-shard occupancy (the
        ``/stats`` ``cache.shard_occupancy`` list)."""
        per_shard = [shard.stats() for shard in self._shards]
        return {
            "entries": sum(s["entries"] for s in per_shard),
            "bytes": sum(s["bytes"] for s in per_shard),
            "max_bytes": self.max_bytes,
            "hits": sum(s["hits"] for s in per_shard),
            "misses": sum(s["misses"] for s in per_shard),
            "disk_hits": sum(s["disk_hits"] for s in per_shard),
            "evictions": sum(s["evictions"] for s in per_shard),
            "spill_dir": str(self.spill_dir) if self.spill_dir
            else None,
            "shards": self.shards,
            "shard_occupancy": [
                {"entries": s["entries"], "bytes": s["bytes"],
                 "hits": s["hits"]}
                for s in per_shard
            ],
        }
