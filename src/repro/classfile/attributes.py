"""Typed class-file attributes.

Every attribute the paper's corpus exercises is modeled explicitly;
anything else survives parsing as a :class:`RawAttribute` (and is
dropped when packing, per Section 2 of the paper, because constant-pool
renumbering would invalidate indices buried inside it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


@dataclass
class ExceptionTableEntry:
    """One row of a Code attribute's exception table."""

    start_pc: int
    end_pc: int
    handler_pc: int
    #: Constant-pool index of the catch type's Class entry, or 0 for
    #: a finally-style catch-all handler.
    catch_type: int


@dataclass
class CodeAttribute:
    """The Code attribute: bytecode plus exception handlers."""

    max_stack: int
    max_locals: int
    code: bytes
    exception_table: List[ExceptionTableEntry] = field(default_factory=list)
    attributes: List["Attribute"] = field(default_factory=list)

    name = "Code"


@dataclass
class ConstantValueAttribute:
    """ConstantValue: constant-pool index of a field's initial value."""

    value_index: int

    name = "ConstantValue"


@dataclass
class ExceptionsAttribute:
    """Exceptions: declared thrown exception classes (CP indices)."""

    exception_indices: List[int] = field(default_factory=list)

    name = "Exceptions"


@dataclass
class SourceFileAttribute:
    source_file_index: int

    name = "SourceFile"


@dataclass
class LineNumberEntry:
    start_pc: int
    line_number: int


@dataclass
class LineNumberTableAttribute:
    entries: List[LineNumberEntry] = field(default_factory=list)

    name = "LineNumberTable"


@dataclass
class LocalVariableEntry:
    start_pc: int
    length: int
    name_index: int
    descriptor_index: int
    index: int


@dataclass
class LocalVariableTableAttribute:
    entries: List[LocalVariableEntry] = field(default_factory=list)

    name = "LocalVariableTable"


@dataclass
class SyntheticAttribute:
    name = "Synthetic"


@dataclass
class DeprecatedAttribute:
    name = "Deprecated"


@dataclass
class InnerClassEntry:
    inner_class_index: int
    outer_class_index: int
    inner_name_index: int
    inner_access_flags: int


@dataclass
class InnerClassesAttribute:
    entries: List[InnerClassEntry] = field(default_factory=list)

    name = "InnerClasses"


@dataclass
class RawAttribute:
    """An attribute we do not interpret; kept verbatim."""

    raw_name: str
    data: bytes

    @property
    def name(self) -> str:
        return self.raw_name


Attribute = Union[
    CodeAttribute, ConstantValueAttribute, ExceptionsAttribute,
    SourceFileAttribute, LineNumberTableAttribute,
    LocalVariableTableAttribute, SyntheticAttribute, DeprecatedAttribute,
    InnerClassesAttribute, RawAttribute,
]


def find_attribute(attributes: List[Attribute],
                   name: str) -> Optional[Attribute]:
    """Return the first attribute called ``name``, or ``None``."""
    for attribute in attributes:
        if attribute.name == name:
            return attribute
    return None


def remove_attributes(attributes: List[Attribute], names) -> List[Attribute]:
    """Return ``attributes`` without any whose name is in ``names``."""
    return [a for a in attributes if a.name not in names]
