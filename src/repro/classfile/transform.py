"""The Section 2 preprocessing transforms.

The paper normalizes its corpus before measuring anything:

* remove ``LineNumberTable``, ``LocalVariableTable`` and ``SourceFile``
  attributes (debug information),
* garbage-collect the constant pool (drop unreferenced entries),
* sort constant-pool entries by type, and Utf8 entries by content.

Together these typically shrink jar files by ~20%, and the sort buys a
few more percent of zlib compression by clustering similar byte
patterns.  Everything here rewrites constant-pool indices throughout
the class file, including inside bytecode (switching ``ldc`` to
``ldc_w`` and relocating branches when an index no longer fits in one
byte).
"""

from __future__ import annotations

from typing import Dict, List, Set

from . import constant_pool as cp
from .attributes import (
    Attribute,
    CodeAttribute,
    ConstantValueAttribute,
    ExceptionsAttribute,
    InnerClassesAttribute,
    LocalVariableTableAttribute,
    RawAttribute,
    SourceFileAttribute,
)
from .bytecode import _instruction_size, assemble, disassemble, layout
from .classfile import ClassFile
from .constants import DEBUG_ATTRIBUTES, ConstantTag
from .opcodes import BY_NAME

_LDC = BY_NAME["ldc"].opcode
_LDC_W = BY_NAME["ldc_w"].opcode


def strip_debug_attributes(classfile: ClassFile) -> ClassFile:
    """Remove the debug attributes, in place; returns the class file."""

    def strip(attributes: List[Attribute]) -> List[Attribute]:
        kept = []
        for attribute in attributes:
            if attribute.name in DEBUG_ATTRIBUTES:
                continue
            if isinstance(attribute, CodeAttribute):
                attribute.attributes = strip(attribute.attributes)
            kept.append(attribute)
        return kept

    classfile.attributes = strip(classfile.attributes)
    for member in list(classfile.fields) + list(classfile.methods):
        member.attributes = strip(member.attributes)
    return classfile


def _collect_roots(classfile: ClassFile) -> Set[int]:
    """Constant-pool indices referenced directly by class structures."""
    roots: Set[int] = set()

    def visit_attributes(attributes: List[Attribute]) -> None:
        for attribute in attributes:
            roots.add(classfile.pool.utf8(attribute.name))
            if isinstance(attribute, CodeAttribute):
                for instruction in disassemble(attribute.code):
                    if instruction.cp_index is not None:
                        roots.add(instruction.cp_index)
                for entry in attribute.exception_table:
                    if entry.catch_type:
                        roots.add(entry.catch_type)
                visit_attributes(attribute.attributes)
            elif isinstance(attribute, ConstantValueAttribute):
                roots.add(attribute.value_index)
            elif isinstance(attribute, ExceptionsAttribute):
                roots.update(attribute.exception_indices)
            elif isinstance(attribute, SourceFileAttribute):
                roots.add(attribute.source_file_index)
            elif isinstance(attribute, LocalVariableTableAttribute):
                for entry in attribute.entries:
                    roots.add(entry.name_index)
                    roots.add(entry.descriptor_index)
            elif isinstance(attribute, InnerClassesAttribute):
                for entry in attribute.entries:
                    if entry.inner_class_index:
                        roots.add(entry.inner_class_index)
                    if entry.outer_class_index:
                        roots.add(entry.outer_class_index)
                    if entry.inner_name_index:
                        roots.add(entry.inner_name_index)

    roots.add(classfile.this_class)
    if classfile.super_class:
        roots.add(classfile.super_class)
    roots.update(classfile.interfaces)
    for member in list(classfile.fields) + list(classfile.methods):
        roots.add(member.name_index)
        roots.add(member.descriptor_index)
        visit_attributes(member.attributes)
    visit_attributes(classfile.attributes)
    roots.discard(0)
    return roots


def _transitive_closure(pool: cp.ConstantPool, roots: Set[int]) -> Set[int]:
    live = set()
    stack = list(roots)
    while stack:
        index = stack.pop()
        if index in live:
            continue
        live.add(index)
        entry = pool[index]
        for child in _children(entry):
            stack.append(child)
    return live


def _children(entry: cp.Entry) -> List[int]:
    if isinstance(entry, cp.ClassInfo):
        return [entry.name_index]
    if isinstance(entry, cp.StringConst):
        return [entry.utf8_index]
    if isinstance(entry, (cp.Fieldref, cp.Methodref, cp.InterfaceMethodref)):
        return [entry.class_index, entry.name_and_type_index]
    if isinstance(entry, cp.NameAndType):
        return [entry.name_index, entry.descriptor_index]
    return []


def _sort_key(pool: cp.ConstantPool, index: int):
    """Deterministic ordering: by type, then by content.

    Utf8 entries sort by their text (the paper's "sort UTF constants
    according to their content"); structured entries sort by the sort
    keys of their referents so the order is stable under renumbering.
    """
    entry = pool[index]
    type_rank = ConstantTag.SORT_ORDER[entry.tag]
    if isinstance(entry, cp.Utf8):
        return (type_rank, entry.value)
    if isinstance(entry, cp.IntegerConst):
        return (type_rank, entry.value)
    if isinstance(entry, cp.FloatConst):
        return (type_rank, entry.bits)
    if isinstance(entry, cp.LongConst):
        return (type_rank, entry.value)
    if isinstance(entry, cp.DoubleConst):
        return (type_rank, entry.bits)
    if isinstance(entry, cp.ClassInfo):
        return (type_rank, pool.utf8_value(entry.name_index))
    if isinstance(entry, cp.StringConst):
        return (type_rank, pool.utf8_value(entry.utf8_index))
    if isinstance(entry, cp.NameAndType):
        return (type_rank, pool.utf8_value(entry.name_index),
                pool.utf8_value(entry.descriptor_index))
    # Member references: order by class name, member name, descriptor.
    nat = pool[entry.name_and_type_index]
    return (type_rank, pool.class_name(entry.class_index),
            pool.utf8_value(nat.name_index),
            pool.utf8_value(nat.descriptor_index))


def gc_and_sort_pool(classfile: ClassFile) -> ClassFile:
    """Garbage-collect and sort the constant pool, rewriting all indices."""
    pool = classfile.pool
    live = _transitive_closure(pool, _collect_roots(classfile))
    ordered = sorted(live, key=lambda index: _sort_key(pool, index))

    # First pass: assign new slot numbers (long/double take two slots).
    index_map: Dict[int, int] = {}
    next_slot = 1
    for old_index in ordered:
        index_map[old_index] = next_slot
        next_slot += 2 if pool[old_index].tag in cp.WIDE_TAGS else 1

    # Second pass: rebuild each surviving entry so its internal
    # references use the new numbering.
    remapped = cp.ConstantPool()
    for old_index in ordered:
        entry = pool[old_index]
        remapped.append_raw(_remap_entry(entry, index_map))
        if entry.tag in cp.WIDE_TAGS:
            remapped.append_raw(None)

    classfile.pool = remapped
    _remap_class_indices(classfile, index_map)
    return classfile


def _remap_entry(entry: cp.Entry, index_map: Dict[int, int]) -> cp.Entry:
    if isinstance(entry, cp.ClassInfo):
        return cp.ClassInfo(index_map[entry.name_index])
    if isinstance(entry, cp.StringConst):
        return cp.StringConst(index_map[entry.utf8_index])
    if isinstance(entry, cp.Fieldref):
        return cp.Fieldref(index_map[entry.class_index],
                           index_map[entry.name_and_type_index])
    if isinstance(entry, cp.Methodref):
        return cp.Methodref(index_map[entry.class_index],
                            index_map[entry.name_and_type_index])
    if isinstance(entry, cp.InterfaceMethodref):
        return cp.InterfaceMethodref(index_map[entry.class_index],
                                     index_map[entry.name_and_type_index])
    if isinstance(entry, cp.NameAndType):
        return cp.NameAndType(index_map[entry.name_index],
                              index_map[entry.descriptor_index])
    return entry


def remap_code(code: CodeAttribute, index_map: Dict[int, int]) -> None:
    """Rewrite constant-pool indices inside bytecode, in place.

    Handles the ``ldc``/``ldc_w`` width change: if a remapped index no
    longer fits in one byte the opcode is widened (and vice versa, a
    wide load of a now-small index is narrowed), then branches and the
    exception table are relocated.
    """
    instructions = disassemble(code.code)
    for instruction in instructions:
        if instruction.cp_index is None:
            continue
        new_index = index_map[instruction.cp_index]
        instruction.cp_index = new_index
        if instruction.opcode == _LDC and new_index > 0xFF:
            instruction.opcode = _LDC_W
        elif instruction.opcode == _LDC_W and new_index <= 0xFF:
            instruction.opcode = _LDC
    end = len(code.code)
    mapping = layout(instructions)
    # end_pc may point one past the last instruction; map it to the new
    # end of code.
    new_end = 0
    for instruction in instructions:
        new_end = instruction.offset + _instruction_size(
            instruction, instruction.offset)
    mapping[end] = new_end
    for instruction in instructions:
        if instruction.target is not None:
            instruction.target = mapping[instruction.target]
        if instruction.switch is not None:
            sw = instruction.switch
            sw.default = mapping[sw.default]
            sw.pairs = [(m, mapping[t]) for m, t in sw.pairs]
    code.code = assemble(instructions, relayout=False)
    for entry in code.exception_table:
        entry.start_pc = mapping[entry.start_pc]
        entry.end_pc = mapping[entry.end_pc]
        entry.handler_pc = mapping[entry.handler_pc]
        if entry.catch_type:
            entry.catch_type = index_map[entry.catch_type]


def _remap_class_indices(classfile: ClassFile,
                         index_map: Dict[int, int]) -> None:
    classfile.this_class = index_map[classfile.this_class]
    if classfile.super_class:
        classfile.super_class = index_map[classfile.super_class]
    classfile.interfaces = [index_map[i] for i in classfile.interfaces]

    def remap_attributes(attributes: List[Attribute]) -> None:
        for attribute in attributes:
            if isinstance(attribute, CodeAttribute):
                remap_code(attribute, index_map)
                remap_attributes(attribute.attributes)
            elif isinstance(attribute, ConstantValueAttribute):
                attribute.value_index = index_map[attribute.value_index]
            elif isinstance(attribute, ExceptionsAttribute):
                attribute.exception_indices = [
                    index_map[i] for i in attribute.exception_indices]
            elif isinstance(attribute, SourceFileAttribute):
                attribute.source_file_index = index_map[
                    attribute.source_file_index]
            elif isinstance(attribute, LocalVariableTableAttribute):
                for entry in attribute.entries:
                    entry.name_index = index_map[entry.name_index]
                    entry.descriptor_index = index_map[entry.descriptor_index]
            elif isinstance(attribute, InnerClassesAttribute):
                for entry in attribute.entries:
                    if entry.inner_class_index:
                        entry.inner_class_index = index_map[
                            entry.inner_class_index]
                    if entry.outer_class_index:
                        entry.outer_class_index = index_map[
                            entry.outer_class_index]
                    if entry.inner_name_index:
                        entry.inner_name_index = index_map[
                            entry.inner_name_index]
            elif isinstance(attribute, RawAttribute):
                raise ValueError(
                    f"cannot renumber constant pool under unrecognized "
                    f"attribute {attribute.name!r}; strip it first")

    for member in list(classfile.fields) + list(classfile.methods):
        member.name_index = index_map[member.name_index]
        member.descriptor_index = index_map[member.descriptor_index]
        remap_attributes(member.attributes)
    remap_attributes(classfile.attributes)


def drop_unrecognized_attributes(classfile: ClassFile) -> ClassFile:
    """Remove :class:`RawAttribute` instances everywhere (Section 2)."""

    def drop(attributes: List[Attribute]) -> List[Attribute]:
        kept = []
        for attribute in attributes:
            if isinstance(attribute, RawAttribute):
                continue
            if isinstance(attribute, CodeAttribute):
                attribute.attributes = drop(attribute.attributes)
            kept.append(attribute)
        return kept

    classfile.attributes = drop(classfile.attributes)
    for member in list(classfile.fields) + list(classfile.methods):
        member.attributes = drop(member.attributes)
    return classfile


def normalize(classfile: ClassFile) -> ClassFile:
    """Apply the full Section 2 pipeline, in place."""
    drop_unrecognized_attributes(classfile)
    strip_debug_attributes(classfile)
    gc_and_sort_pool(classfile)
    return classfile
