"""The complete JVM instruction set (JVM spec, first/second edition).

Each opcode is described by an :class:`OpSpec` carrying its mnemonic and
a tuple of *operand kinds*.  Operand kinds drive three things:

* the bytecode assembler/disassembler (:mod:`repro.classfile.bytecode`),
* the stream separation of the packed format (Section 7 of the paper:
  opcodes, register numbers, integer constants, branch offsets and each
  kind of constant-pool reference go to separate streams), and
* constant-pool reference rewriting during transforms.

``tableswitch`` and ``lookupswitch`` have irregular, padded encodings
and are special-cased by the assembler; their specs use the sentinel
kinds ``TABLESWITCH`` / ``LOOKUPSWITCH``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class OperandKind:
    """Symbolic names for instruction operand kinds."""

    LOCAL = "local"  # unsigned 1-byte local variable index (2 under wide)
    SBYTE = "sbyte"  # signed 1-byte immediate (bipush)
    SSHORT = "sshort"  # signed 2-byte immediate (sipush)
    IINC_DELTA = "iinc_delta"  # signed 1-byte increment (2 under wide)
    CP_LDC = "cp_ldc"  # 1-byte constant-pool index (int/float/string)
    CP_LDC_W = "cp_ldc_w"  # 2-byte constant-pool index (int/float/string)
    CP_LDC2_W = "cp_ldc2_w"  # 2-byte constant-pool index (long/double)
    CP_FIELD = "cp_field"  # 2-byte Fieldref index
    CP_METHOD = "cp_method"  # 2-byte Methodref index
    CP_IMETHOD = "cp_imethod"  # 2-byte InterfaceMethodref index
    CP_CLASS = "cp_class"  # 2-byte Class index
    BRANCH2 = "branch2"  # signed 2-byte branch offset
    BRANCH4 = "branch4"  # signed 4-byte branch offset
    ATYPE = "atype"  # newarray primitive type code
    DIMS = "dims"  # multianewarray dimension count
    ZERO = "zero"  # invokeinterface trailing zero byte
    COUNT = "count"  # invokeinterface count byte
    TABLESWITCH = "tableswitch"
    LOOKUPSWITCH = "lookupswitch"


K = OperandKind

#: Operand kinds that reference the constant pool.
CP_KINDS = frozenset(
    {K.CP_LDC, K.CP_LDC_W, K.CP_LDC2_W, K.CP_FIELD, K.CP_METHOD,
     K.CP_IMETHOD, K.CP_CLASS}
)


@dataclass(frozen=True)
class OpSpec:
    """Static description of one JVM opcode."""

    opcode: int
    mnemonic: str
    operands: Tuple[str, ...] = ()

    @property
    def is_branch(self) -> bool:
        return K.BRANCH2 in self.operands or K.BRANCH4 in self.operands

    @property
    def is_switch(self) -> bool:
        return self.operands and self.operands[0] in (
            K.TABLESWITCH, K.LOOKUPSWITCH)

    @property
    def cp_kind(self) -> Optional[str]:
        """The constant-pool operand kind, if the opcode has one."""
        for kind in self.operands:
            if kind in CP_KINDS:
                return kind
        return None


def _specs() -> Dict[int, OpSpec]:
    table: Dict[int, OpSpec] = {}

    def op(code: int, mnemonic: str, *operands: str) -> None:
        if code in table:  # pragma: no cover - table construction guard
            raise ValueError(f"duplicate opcode {code:#x}")
        table[code] = OpSpec(code, mnemonic, tuple(operands))

    op(0x00, "nop")
    op(0x01, "aconst_null")
    op(0x02, "iconst_m1")
    for i in range(6):
        op(0x03 + i, f"iconst_{i}")
    op(0x09, "lconst_0")
    op(0x0A, "lconst_1")
    op(0x0B, "fconst_0")
    op(0x0C, "fconst_1")
    op(0x0D, "fconst_2")
    op(0x0E, "dconst_0")
    op(0x0F, "dconst_1")
    op(0x10, "bipush", K.SBYTE)
    op(0x11, "sipush", K.SSHORT)
    op(0x12, "ldc", K.CP_LDC)
    op(0x13, "ldc_w", K.CP_LDC_W)
    op(0x14, "ldc2_w", K.CP_LDC2_W)
    op(0x15, "iload", K.LOCAL)
    op(0x16, "lload", K.LOCAL)
    op(0x17, "fload", K.LOCAL)
    op(0x18, "dload", K.LOCAL)
    op(0x19, "aload", K.LOCAL)
    for i in range(4):
        op(0x1A + i, f"iload_{i}")
    for i in range(4):
        op(0x1E + i, f"lload_{i}")
    for i in range(4):
        op(0x22 + i, f"fload_{i}")
    for i in range(4):
        op(0x26 + i, f"dload_{i}")
    for i in range(4):
        op(0x2A + i, f"aload_{i}")
    op(0x2E, "iaload")
    op(0x2F, "laload")
    op(0x30, "faload")
    op(0x31, "daload")
    op(0x32, "aaload")
    op(0x33, "baload")
    op(0x34, "caload")
    op(0x35, "saload")
    op(0x36, "istore", K.LOCAL)
    op(0x37, "lstore", K.LOCAL)
    op(0x38, "fstore", K.LOCAL)
    op(0x39, "dstore", K.LOCAL)
    op(0x3A, "astore", K.LOCAL)
    for i in range(4):
        op(0x3B + i, f"istore_{i}")
    for i in range(4):
        op(0x3F + i, f"lstore_{i}")
    for i in range(4):
        op(0x43 + i, f"fstore_{i}")
    for i in range(4):
        op(0x47 + i, f"dstore_{i}")
    for i in range(4):
        op(0x4B + i, f"astore_{i}")
    op(0x4F, "iastore")
    op(0x50, "lastore")
    op(0x51, "fastore")
    op(0x52, "dastore")
    op(0x53, "aastore")
    op(0x54, "bastore")
    op(0x55, "castore")
    op(0x56, "sastore")
    op(0x57, "pop")
    op(0x58, "pop2")
    op(0x59, "dup")
    op(0x5A, "dup_x1")
    op(0x5B, "dup_x2")
    op(0x5C, "dup2")
    op(0x5D, "dup2_x1")
    op(0x5E, "dup2_x2")
    op(0x5F, "swap")
    op(0x60, "iadd")
    op(0x61, "ladd")
    op(0x62, "fadd")
    op(0x63, "dadd")
    op(0x64, "isub")
    op(0x65, "lsub")
    op(0x66, "fsub")
    op(0x67, "dsub")
    op(0x68, "imul")
    op(0x69, "lmul")
    op(0x6A, "fmul")
    op(0x6B, "dmul")
    op(0x6C, "idiv")
    op(0x6D, "ldiv")
    op(0x6E, "fdiv")
    op(0x6F, "ddiv")
    op(0x70, "irem")
    op(0x71, "lrem")
    op(0x72, "frem")
    op(0x73, "drem")
    op(0x74, "ineg")
    op(0x75, "lneg")
    op(0x76, "fneg")
    op(0x77, "dneg")
    op(0x78, "ishl")
    op(0x79, "lshl")
    op(0x7A, "ishr")
    op(0x7B, "lshr")
    op(0x7C, "iushr")
    op(0x7D, "lushr")
    op(0x7E, "iand")
    op(0x7F, "land")
    op(0x80, "ior")
    op(0x81, "lor")
    op(0x82, "ixor")
    op(0x83, "lxor")
    op(0x84, "iinc", K.LOCAL, K.IINC_DELTA)
    op(0x85, "i2l")
    op(0x86, "i2f")
    op(0x87, "i2d")
    op(0x88, "l2i")
    op(0x89, "l2f")
    op(0x8A, "l2d")
    op(0x8B, "f2i")
    op(0x8C, "f2l")
    op(0x8D, "f2d")
    op(0x8E, "d2i")
    op(0x8F, "d2l")
    op(0x90, "d2f")
    op(0x91, "i2b")
    op(0x92, "i2c")
    op(0x93, "i2s")
    op(0x94, "lcmp")
    op(0x95, "fcmpl")
    op(0x96, "fcmpg")
    op(0x97, "dcmpl")
    op(0x98, "dcmpg")
    op(0x99, "ifeq", K.BRANCH2)
    op(0x9A, "ifne", K.BRANCH2)
    op(0x9B, "iflt", K.BRANCH2)
    op(0x9C, "ifge", K.BRANCH2)
    op(0x9D, "ifgt", K.BRANCH2)
    op(0x9E, "ifle", K.BRANCH2)
    op(0x9F, "if_icmpeq", K.BRANCH2)
    op(0xA0, "if_icmpne", K.BRANCH2)
    op(0xA1, "if_icmplt", K.BRANCH2)
    op(0xA2, "if_icmpge", K.BRANCH2)
    op(0xA3, "if_icmpgt", K.BRANCH2)
    op(0xA4, "if_icmple", K.BRANCH2)
    op(0xA5, "if_acmpeq", K.BRANCH2)
    op(0xA6, "if_acmpne", K.BRANCH2)
    op(0xA7, "goto", K.BRANCH2)
    op(0xA8, "jsr", K.BRANCH2)
    op(0xA9, "ret", K.LOCAL)
    op(0xAA, "tableswitch", K.TABLESWITCH)
    op(0xAB, "lookupswitch", K.LOOKUPSWITCH)
    op(0xAC, "ireturn")
    op(0xAD, "lreturn")
    op(0xAE, "freturn")
    op(0xAF, "dreturn")
    op(0xB0, "areturn")
    op(0xB1, "return")
    op(0xB2, "getstatic", K.CP_FIELD)
    op(0xB3, "putstatic", K.CP_FIELD)
    op(0xB4, "getfield", K.CP_FIELD)
    op(0xB5, "putfield", K.CP_FIELD)
    op(0xB6, "invokevirtual", K.CP_METHOD)
    op(0xB7, "invokespecial", K.CP_METHOD)
    op(0xB8, "invokestatic", K.CP_METHOD)
    op(0xB9, "invokeinterface", K.CP_IMETHOD, K.COUNT, K.ZERO)
    op(0xBB, "new", K.CP_CLASS)
    op(0xBC, "newarray", K.ATYPE)
    op(0xBD, "anewarray", K.CP_CLASS)
    op(0xBE, "arraylength")
    op(0xBF, "athrow")
    op(0xC0, "checkcast", K.CP_CLASS)
    op(0xC1, "instanceof", K.CP_CLASS)
    op(0xC2, "monitorenter")
    op(0xC3, "monitorexit")
    op(0xC4, "wide")  # prefix; handled by the assembler
    op(0xC5, "multianewarray", K.CP_CLASS, K.DIMS)
    op(0xC6, "ifnull", K.BRANCH2)
    op(0xC7, "ifnonnull", K.BRANCH2)
    op(0xC8, "goto_w", K.BRANCH4)
    op(0xC9, "jsr_w", K.BRANCH4)
    return table


#: opcode value -> spec
OPCODES: Dict[int, OpSpec] = _specs()

#: mnemonic -> spec
BY_NAME: Dict[str, OpSpec] = {s.mnemonic: s for s in OPCODES.values()}

WIDE = 0xC4

#: newarray ``atype`` codes -> primitive descriptor character.
ATYPE_DESCRIPTORS = {
    4: "Z", 5: "C", 6: "F", 7: "D", 8: "B", 9: "S", 10: "I", 11: "J",
}
DESCRIPTOR_ATYPES = {v: k for k, v in ATYPE_DESCRIPTORS.items()}


def spec(opcode: int) -> OpSpec:
    """Return the spec for ``opcode``, raising ``KeyError`` if unknown."""
    return OPCODES[opcode]
