"""Bytecode disassembly and assembly.

The disassembler turns the raw ``code[]`` array of a Code attribute
into a list of :class:`Instruction` objects with *absolute* branch
targets; the assembler is its inverse.  The pair is bit-faithful for
canonically encoded code (shortest instruction forms, which is what
our mini-Java compiler and the packed-format reconstructor both emit);
non-canonical encodings (e.g. a ``wide iload`` of a small index)
reassemble to the canonical form with identical semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .io import ByteReader, ByteWriter
from .opcodes import BY_NAME, OPCODES, WIDE, OperandKind as K, OpSpec


class BytecodeError(ValueError):
    """Raised for malformed bytecode."""


@dataclass
class SwitchData:
    """Payload of a tableswitch or lookupswitch instruction.

    ``default`` and every target are absolute code offsets.
    For tableswitch, ``low`` is set and ``pairs`` holds
    ``(low + i, target)`` rows in order; for lookupswitch ``low`` is
    ``None`` and ``pairs`` holds sorted ``(match, target)`` rows.
    """

    default: int
    low: Optional[int]
    pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def is_table(self) -> bool:
        return self.low is not None


@dataclass
class Instruction:
    """One decoded JVM instruction."""

    opcode: int
    offset: int = 0
    #: ``True`` when the instruction used the ``wide`` prefix.
    wide: bool = False
    local: Optional[int] = None
    #: Immediate value (bipush/sipush) or iinc delta.
    immediate: Optional[int] = None
    cp_index: Optional[int] = None
    #: Absolute branch target.
    target: Optional[int] = None
    atype: Optional[int] = None
    dims: Optional[int] = None
    count: Optional[int] = None
    switch: Optional[SwitchData] = None

    @property
    def spec(self) -> OpSpec:
        return OPCODES[self.opcode]

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{self.offset:4d}: {self.mnemonic}"]
        for label, value in (("local", self.local),
                             ("imm", self.immediate),
                             ("cp", self.cp_index),
                             ("->", self.target)):
            if value is not None:
                parts.append(f"{label} {value}")
        return " ".join(parts)


def _needs_wide(instruction: Instruction) -> bool:
    """Whether canonical encoding requires the wide prefix."""
    spec = instruction.spec
    if K.LOCAL not in spec.operands:
        return False
    if instruction.local is not None and instruction.local > 0xFF:
        return True
    if spec.mnemonic == "iinc" and instruction.immediate is not None and \
            not -128 <= instruction.immediate <= 127:
        return True
    return False


def disassemble(code: bytes) -> List[Instruction]:
    """Decode ``code[]`` into a list of instructions."""
    reader = ByteReader(code)
    instructions: List[Instruction] = []
    while reader.remaining():
        offset = reader.pos
        opcode = reader.u1()
        wide = False
        if opcode == WIDE:
            wide = True
            opcode = reader.u1()
        spec = OPCODES.get(opcode)
        if spec is None:
            raise BytecodeError(f"unknown opcode {opcode:#x} at {offset}")
        instruction = Instruction(opcode, offset, wide)
        if spec.is_switch:
            instruction.switch = _read_switch(reader, offset, spec)
            instructions.append(instruction)
            continue
        for kind in spec.operands:
            if kind == K.LOCAL:
                instruction.local = reader.u2() if wide else reader.u1()
            elif kind == K.SBYTE:
                instruction.immediate = reader.s1()
            elif kind == K.SSHORT:
                instruction.immediate = reader.s2()
            elif kind == K.IINC_DELTA:
                instruction.immediate = reader.s2() if wide else reader.s1()
            elif kind == K.CP_LDC:
                instruction.cp_index = reader.u1()
            elif kind in (K.CP_LDC_W, K.CP_LDC2_W, K.CP_FIELD,
                          K.CP_METHOD, K.CP_IMETHOD, K.CP_CLASS):
                instruction.cp_index = reader.u2()
            elif kind == K.BRANCH2:
                instruction.target = offset + reader.s2()
            elif kind == K.BRANCH4:
                instruction.target = offset + reader.s4()
            elif kind == K.ATYPE:
                instruction.atype = reader.u1()
            elif kind == K.DIMS:
                instruction.dims = reader.u1()
            elif kind == K.COUNT:
                instruction.count = reader.u1()
            elif kind == K.ZERO:
                if reader.u1() != 0:
                    raise BytecodeError(
                        f"invokeinterface trailing byte not zero at {offset}")
            else:  # pragma: no cover - exhaustive over kinds
                raise BytecodeError(f"unhandled operand kind {kind}")
        instructions.append(instruction)
    return instructions


def _read_switch(reader: ByteReader, offset: int, spec: OpSpec) -> SwitchData:
    while reader.pos % 4 != 0:
        if reader.u1() != 0:
            raise BytecodeError(f"non-zero switch padding at {reader.pos}")
    default = offset + reader.s4()
    if spec.mnemonic == "tableswitch":
        low = reader.s4()
        high = reader.s4()
        if high < low:
            raise BytecodeError("tableswitch high < low")
        pairs = [(low + i, offset + reader.s4())
                 for i in range(high - low + 1)]
        return SwitchData(default, low, pairs)
    npairs = reader.s4()
    if npairs < 0:
        raise BytecodeError("lookupswitch negative npairs")
    pairs = [(reader.s4(), offset + reader.s4()) for _ in range(npairs)]
    return SwitchData(default, None, pairs)


def _instruction_size(instruction: Instruction, offset: int) -> int:
    """Size in bytes of the canonical encoding at ``offset``."""
    spec = instruction.spec
    if spec.is_switch:
        padding = (4 - (offset + 1) % 4) % 4
        if instruction.switch.is_table:
            return 1 + padding + 12 + 4 * len(instruction.switch.pairs)
        return 1 + padding + 8 + 8 * len(instruction.switch.pairs)
    size = 1
    wide = _needs_wide(instruction)
    if wide:
        size += 1
    for kind in spec.operands:
        if kind == K.LOCAL:
            size += 2 if wide else 1
        elif kind in (K.SBYTE, K.ATYPE, K.DIMS, K.COUNT, K.ZERO, K.CP_LDC):
            size += 1
        elif kind == K.IINC_DELTA:
            size += 2 if wide else 1
        elif kind in (K.SSHORT, K.BRANCH2, K.CP_LDC_W, K.CP_LDC2_W,
                      K.CP_FIELD, K.CP_METHOD, K.CP_IMETHOD, K.CP_CLASS):
            size += 2
        elif kind == K.BRANCH4:
            size += 4
        else:  # pragma: no cover
            raise BytecodeError(f"unhandled operand kind {kind}")
    return size


def layout(instructions: List[Instruction]) -> Dict[int, int]:
    """Assign offsets to instructions; returns old_offset -> new_offset.

    Instructions are re-laid-out with canonical sizes.  Because switch
    padding depends on position, the computation iterates to a fixed
    point (sizes only ever differ by padding, which converges in at
    most a few rounds).
    """
    old_offsets = [ins.offset for ins in instructions]
    for _ in range(8):
        changed = False
        pos = 0
        for instruction in instructions:
            if instruction.offset != pos:
                instruction.offset = pos
                changed = True
            pos += _instruction_size(instruction, pos)
        if not changed:
            break
    else:  # pragma: no cover - convergence is guaranteed
        raise BytecodeError("instruction layout did not converge")
    return {old: ins.offset for old, ins in zip(old_offsets, instructions)}


def assemble(instructions: List[Instruction],
             relayout: bool = True) -> bytes:
    """Encode instructions back into a ``code[]`` byte array.

    With ``relayout`` (the default), instruction offsets and branch
    targets are recomputed for canonical sizes.  Pass ``relayout=False``
    only when offsets are already consistent.
    """
    if relayout:
        mapping = layout(instructions)
        for instruction in instructions:
            if instruction.target is not None:
                instruction.target = mapping[instruction.target]
            if instruction.switch is not None:
                sw = instruction.switch
                sw.default = mapping[sw.default]
                sw.pairs = [(m, mapping[t]) for m, t in sw.pairs]
    writer = ByteWriter()
    for instruction in instructions:
        if writer.buf and len(writer.buf) != instruction.offset:
            raise BytecodeError(
                f"offset mismatch: instruction says {instruction.offset}, "
                f"writer is at {len(writer.buf)}")
        _write_instruction(writer, instruction)
    return writer.getvalue()


def _write_instruction(writer: ByteWriter, instruction: Instruction) -> None:
    spec = instruction.spec
    offset = len(writer.buf)
    if spec.is_switch:
        writer.u1(instruction.opcode)
        while len(writer.buf) % 4 != 0:
            writer.u1(0)
        sw = instruction.switch
        writer.s4(sw.default - offset)
        if sw.is_table:
            writer.s4(sw.low)
            writer.s4(sw.low + len(sw.pairs) - 1)
            for _, target in sw.pairs:
                writer.s4(target - offset)
        else:
            writer.s4(len(sw.pairs))
            for match, target in sw.pairs:
                writer.s4(match)
                writer.s4(target - offset)
        return
    wide = _needs_wide(instruction)
    if wide:
        writer.u1(WIDE)
    writer.u1(instruction.opcode)
    for kind in spec.operands:
        if kind == K.LOCAL:
            if wide:
                writer.u2(instruction.local)
            else:
                writer.u1(instruction.local)
        elif kind == K.SBYTE:
            writer.s1(instruction.immediate)
        elif kind == K.SSHORT:
            writer.s2(instruction.immediate)
        elif kind == K.IINC_DELTA:
            if wide:
                writer.s2(instruction.immediate)
            else:
                writer.s1(instruction.immediate)
        elif kind == K.CP_LDC:
            if instruction.cp_index > 0xFF:
                raise BytecodeError(
                    f"ldc index {instruction.cp_index} does not fit in a "
                    "byte; use ldc_w")
            writer.u1(instruction.cp_index)
        elif kind in (K.CP_LDC_W, K.CP_LDC2_W, K.CP_FIELD, K.CP_METHOD,
                      K.CP_IMETHOD, K.CP_CLASS):
            writer.u2(instruction.cp_index)
        elif kind == K.BRANCH2:
            delta = instruction.target - offset
            if not -0x8000 <= delta <= 0x7FFF:
                raise BytecodeError(f"branch offset {delta} overflows s2")
            writer.s2(delta)
        elif kind == K.BRANCH4:
            writer.s4(instruction.target - offset)
        elif kind == K.ATYPE:
            writer.u1(instruction.atype)
        elif kind == K.DIMS:
            writer.u1(instruction.dims)
        elif kind == K.COUNT:
            writer.u1(instruction.count)
        elif kind == K.ZERO:
            writer.u1(0)
        else:  # pragma: no cover
            raise BytecodeError(f"unhandled operand kind {kind}")


def make(mnemonic: str, **fields) -> Instruction:
    """Convenience constructor used by the mini-Java code generator."""
    spec = BY_NAME[mnemonic]
    return Instruction(spec.opcode, **fields)


def assemble_indexed(instructions: List[Instruction]) -> bytes:
    """Assemble instructions whose branch targets are *instruction
    indices* (as produced by the mini-Java code generator) rather than
    byte offsets.

    Offsets are computed iteratively because switch padding and branch
    reachability depend on layout.
    """
    for _ in range(8):
        pos = 0
        changed = False
        for instruction in instructions:
            if instruction.offset != pos:
                instruction.offset = pos
                changed = True
            pos += _instruction_size(instruction, pos)
        if not changed:
            break
    else:  # pragma: no cover - convergence is guaranteed
        raise BytecodeError("indexed layout did not converge")
    offsets = [ins.offset for ins in instructions]

    def to_offset(index: int) -> int:
        if not 0 <= index < len(instructions):
            raise BytecodeError(f"branch to missing instruction {index}")
        return offsets[index]

    for instruction in instructions:
        if instruction.target is not None:
            instruction.target = to_offset(instruction.target)
        if instruction.switch is not None:
            sw = instruction.switch
            sw.default = to_offset(sw.default)
            sw.pairs = [(m, to_offset(t)) for m, t in sw.pairs]
    return assemble(instructions, relayout=False)
