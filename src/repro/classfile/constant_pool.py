"""Constant-pool model: entries, the pool container, and resolution.

The pool is index-addressed exactly as in a class file: valid indices
run from 1 to ``count - 1``, and ``Long``/``Double`` entries occupy two
slots (the second slot is unusable — represented here as ``None``).

Entries are plain hashable dataclasses so they can be deduplicated,
sorted and used as dictionary keys by the transforms in
:mod:`repro.classfile.transform` and by the packed-format builder.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .constants import ConstantTag


@dataclass(frozen=True)
class Utf8(object):
    value: str
    tag = ConstantTag.UTF8


@dataclass(frozen=True)
class IntegerConst(object):
    value: int
    tag = ConstantTag.INTEGER


@dataclass(frozen=True)
class FloatConst(object):
    #: Raw IEEE-754 bits, not a Python float: this keeps NaN payloads
    #: and -0.0 exact through every roundtrip.
    bits: int
    tag = ConstantTag.FLOAT

    @classmethod
    def from_float(cls, value: float) -> "FloatConst":
        return cls(struct.unpack(">I", struct.pack(">f", value))[0])

    @property
    def value(self) -> float:
        return struct.unpack(">f", struct.pack(">I", self.bits))[0]


@dataclass(frozen=True)
class LongConst(object):
    value: int
    tag = ConstantTag.LONG


@dataclass(frozen=True)
class DoubleConst(object):
    #: Raw IEEE-754 bits (see :class:`FloatConst`).
    bits: int
    tag = ConstantTag.DOUBLE

    @classmethod
    def from_float(cls, value: float) -> "DoubleConst":
        return cls(struct.unpack(">Q", struct.pack(">d", value))[0])

    @property
    def value(self) -> float:
        return struct.unpack(">d", struct.pack(">Q", self.bits))[0]


@dataclass(frozen=True)
class ClassInfo(object):
    name_index: int
    tag = ConstantTag.CLASS


@dataclass(frozen=True)
class StringConst(object):
    utf8_index: int
    tag = ConstantTag.STRING


@dataclass(frozen=True)
class Fieldref(object):
    class_index: int
    name_and_type_index: int
    tag = ConstantTag.FIELDREF


@dataclass(frozen=True)
class Methodref(object):
    class_index: int
    name_and_type_index: int
    tag = ConstantTag.METHODREF


@dataclass(frozen=True)
class InterfaceMethodref(object):
    class_index: int
    name_and_type_index: int
    tag = ConstantTag.INTERFACE_METHODREF


@dataclass(frozen=True)
class NameAndType(object):
    name_index: int
    descriptor_index: int
    tag = ConstantTag.NAME_AND_TYPE


Entry = Union[
    Utf8, IntegerConst, FloatConst, LongConst, DoubleConst,
    ClassInfo, StringConst, Fieldref, Methodref, InterfaceMethodref,
    NameAndType,
]

#: Entry kinds that occupy two constant-pool slots.
WIDE_TAGS = (ConstantTag.LONG, ConstantTag.DOUBLE)

#: Entry kinds loadable by the LDC instruction (single-slot loadables).
LDC_TAGS = (ConstantTag.INTEGER, ConstantTag.FLOAT, ConstantTag.STRING)


class ConstantPool:
    """A mutable constant pool with interning helpers."""

    def __init__(self):
        # Slot 0 is the traditional unusable slot.
        self._entries: List[Optional[Entry]] = [None]
        self._intern: Dict[Entry, int] = {}

    # -- basic container protocol ------------------------------------

    @property
    def count(self) -> int:
        """The ``constant_pool_count`` as written in a class file."""
        return len(self._entries)

    def __getitem__(self, index: int) -> Entry:
        if not 1 <= index < len(self._entries):
            raise IndexError(f"constant pool index {index} out of range")
        entry = self._entries[index]
        if entry is None:
            raise IndexError(
                f"constant pool index {index} is the unusable second slot "
                "of a long/double entry")
        return entry

    def entries(self) -> Iterator[Tuple[int, Entry]]:
        """Iterate ``(index, entry)`` pairs, skipping unusable slots."""
        for index, entry in enumerate(self._entries):
            if entry is not None:
                yield index, entry

    def slots(self) -> List[Optional[Entry]]:
        """The raw slot list including ``None`` placeholders."""
        return list(self._entries)

    # -- construction --------------------------------------------------

    def add(self, entry: Entry) -> int:
        """Intern ``entry``, returning its (possibly existing) index."""
        existing = self._intern.get(entry)
        if existing is not None:
            return existing
        index = len(self._entries)
        self._entries.append(entry)
        if entry.tag in WIDE_TAGS:
            self._entries.append(None)
        self._intern[entry] = index
        return index

    def append_raw(self, entry: Optional[Entry]) -> None:
        """Append a slot without interning (used by the parser)."""
        if entry is not None and entry not in self._intern:
            self._intern[entry] = len(self._entries)
        self._entries.append(entry)

    # -- typed interning helpers ---------------------------------------

    def utf8(self, value: str) -> int:
        return self.add(Utf8(value))

    def class_info(self, binary_name: str) -> int:
        return self.add(ClassInfo(self.utf8(binary_name)))

    def string(self, value: str) -> int:
        return self.add(StringConst(self.utf8(value)))

    def integer(self, value: int) -> int:
        return self.add(IntegerConst(value))

    def float_const(self, value: float) -> int:
        return self.add(FloatConst.from_float(value))

    def long_const(self, value: int) -> int:
        return self.add(LongConst(value))

    def double_const(self, value: float) -> int:
        return self.add(DoubleConst.from_float(value))

    def name_and_type(self, name: str, descriptor: str) -> int:
        return self.add(NameAndType(self.utf8(name), self.utf8(descriptor)))

    def fieldref(self, owner: str, name: str, descriptor: str) -> int:
        return self.add(Fieldref(
            self.class_info(owner), self.name_and_type(name, descriptor)))

    def methodref(self, owner: str, name: str, descriptor: str) -> int:
        return self.add(Methodref(
            self.class_info(owner), self.name_and_type(name, descriptor)))

    def interface_methodref(
            self, owner: str, name: str, descriptor: str) -> int:
        return self.add(InterfaceMethodref(
            self.class_info(owner), self.name_and_type(name, descriptor)))

    # -- resolution -----------------------------------------------------

    def utf8_value(self, index: int) -> str:
        entry = self[index]
        if not isinstance(entry, Utf8):
            raise TypeError(f"index {index} is {type(entry).__name__},"
                            " expected Utf8")
        return entry.value

    def class_name(self, index: int) -> str:
        entry = self[index]
        if not isinstance(entry, ClassInfo):
            raise TypeError(f"index {index} is {type(entry).__name__},"
                            " expected Class")
        return self.utf8_value(entry.name_index)

    def string_value(self, index: int) -> str:
        entry = self[index]
        if not isinstance(entry, StringConst):
            raise TypeError(f"index {index} is {type(entry).__name__},"
                            " expected String")
        return self.utf8_value(entry.utf8_index)

    def member_ref(self, index: int) -> Tuple[str, str, str]:
        """Resolve a Fieldref/Methodref/InterfaceMethodref to
        ``(owner_class, name, descriptor)``."""
        entry = self[index]
        if not isinstance(entry, (Fieldref, Methodref, InterfaceMethodref)):
            raise TypeError(f"index {index} is {type(entry).__name__},"
                            " expected a member reference")
        owner = self.class_name(entry.class_index)
        nat = self[entry.name_and_type_index]
        if not isinstance(nat, NameAndType):
            raise TypeError("member reference does not point at NameAndType")
        return owner, self.utf8_value(nat.name_index), self.utf8_value(
            nat.descriptor_index)
