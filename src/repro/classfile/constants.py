"""JVM class-file constants: magic, constant-pool tags, and access flags.

These values come from the JVM specification (second edition, the one
current at the time of the paper).  They are shared by the parser
(:mod:`repro.classfile.classfile`), the writer, and every transform.
"""

from __future__ import annotations

MAGIC = 0xCAFEBABE

# Class-file version written by our mini-Java compiler: JDK 1.2 era
# (major 46 = Java 1.2), matching the paper's corpus.
MAJOR_VERSION = 46
MINOR_VERSION = 0


class ConstantTag:
    """Constant-pool entry tags (JVM spec table 4.3)."""

    UTF8 = 1
    INTEGER = 3
    FLOAT = 4
    LONG = 5
    DOUBLE = 6
    CLASS = 7
    STRING = 8
    FIELDREF = 9
    METHODREF = 10
    INTERFACE_METHODREF = 11
    NAME_AND_TYPE = 12

    #: Human-readable names, used by analysis and error messages.
    NAMES = {
        UTF8: "Utf8",
        INTEGER: "Integer",
        FLOAT: "Float",
        LONG: "Long",
        DOUBLE: "Double",
        CLASS: "Class",
        STRING: "String",
        FIELDREF: "Fieldref",
        METHODREF: "Methodref",
        INTERFACE_METHODREF: "InterfaceMethodref",
        NAME_AND_TYPE: "NameAndType",
    }

    #: Deterministic sort order used when the constant pool is sorted by
    #: type (one of the paper's Section 2 preprocessing steps).  The
    #: LDC-loadable kinds (Integer, Float, String) sort first so they
    #: receive the smallest indices, which keeps LDC instructions
    #: encodable in one byte (the Section 9 constraint).
    SORT_ORDER = {
        INTEGER: 0,
        FLOAT: 1,
        STRING: 2,
        LONG: 3,
        DOUBLE: 4,
        CLASS: 5,
        FIELDREF: 6,
        METHODREF: 7,
        INTERFACE_METHODREF: 8,
        NAME_AND_TYPE: 9,
        UTF8: 10,
    }


class AccessFlags:
    """Access and property flags for classes, fields, and methods."""

    PUBLIC = 0x0001
    PRIVATE = 0x0002
    PROTECTED = 0x0004
    STATIC = 0x0008
    FINAL = 0x0010
    SUPER = 0x0020  # class
    SYNCHRONIZED = 0x0020  # method
    VOLATILE = 0x0040
    TRANSIENT = 0x0080
    NATIVE = 0x0100
    INTERFACE = 0x0200
    ABSTRACT = 0x0400
    STRICT = 0x0800

    #: Mask of the flag bits defined by the JVM spec; the packed format
    #: (Section 4 of the paper) uses bits above this mask to signal the
    #: presence of specific attributes.
    SPEC_MASK = 0x0FFF


#: Attribute names stripped by the Section 2 preprocessing (debugging
#: information excluded from wire formats).
DEBUG_ATTRIBUTES = frozenset(
    {"LineNumberTable", "LocalVariableTable", "SourceFile"}
)

#: Attribute names the packed format understands.  Anything else is
#: dropped during packing because constant-pool renumbering would break
#: references inside unrecognized attributes (paper, Section 2).
RECOGNIZED_ATTRIBUTES = frozenset(
    {
        "Code",
        "ConstantValue",
        "Exceptions",
        "Synthetic",
        "Deprecated",
        "InnerClasses",
    }
    | DEBUG_ATTRIBUTES
)
