"""Field and method descriptor parsing and construction.

Descriptors are the JVM's string encoding of types, e.g.
``(Ljava/lang/String;I)V`` for a method taking a String and an int and
returning void.  Section 4 of the paper replaces these strings with
arrays of class references in the packed format; this module is the
bridge in both directions.
"""

from __future__ import annotations

from typing import List, Tuple

PRIMITIVES = frozenset("BCDFIJSZV")

#: Descriptor characters of types occupying two JVM stack/local slots.
WIDE_PRIMITIVES = frozenset("DJ")


class DescriptorError(ValueError):
    """Raised for malformed descriptors."""


def _parse_one(descriptor: str, pos: int) -> Tuple[str, int]:
    """Parse one type starting at ``pos``; return ``(type, new_pos)``."""
    if pos >= len(descriptor):
        raise DescriptorError(f"truncated descriptor: {descriptor!r}")
    start = pos
    while pos < len(descriptor) and descriptor[pos] == "[":
        pos += 1
    if pos >= len(descriptor):
        raise DescriptorError(f"truncated array descriptor: {descriptor!r}")
    char = descriptor[pos]
    if char in PRIMITIVES:
        return descriptor[start:pos + 1], pos + 1
    if char == "L":
        end = descriptor.find(";", pos)
        if end < 0:
            raise DescriptorError(
                f"unterminated class type in descriptor: {descriptor!r}")
        return descriptor[start:end + 1], end + 1
    raise DescriptorError(
        f"bad type character {char!r} in descriptor: {descriptor!r}")


def parse_field_descriptor(descriptor: str) -> str:
    """Validate a field descriptor; returns it unchanged."""
    parsed, pos = _parse_one(descriptor, 0)
    if pos != len(descriptor):
        raise DescriptorError(f"trailing junk in descriptor: {descriptor!r}")
    if parsed.lstrip("[").startswith("V"):
        raise DescriptorError("void is not a valid field type")
    return parsed


def parse_method_descriptor(descriptor: str) -> Tuple[List[str], str]:
    """Split a method descriptor into ``(argument_types, return_type)``."""
    if not descriptor.startswith("("):
        raise DescriptorError(f"method descriptor must start with '(':"
                              f" {descriptor!r}")
    pos = 1
    args: List[str] = []
    while pos < len(descriptor) and descriptor[pos] != ")":
        arg, pos = _parse_one(descriptor, pos)
        args.append(arg)
    if pos >= len(descriptor):
        raise DescriptorError(f"unterminated argument list: {descriptor!r}")
    pos += 1  # skip ')'
    ret, pos = _parse_one(descriptor, pos)
    if pos != len(descriptor):
        raise DescriptorError(f"trailing junk in descriptor: {descriptor!r}")
    return args, ret


def build_method_descriptor(args: List[str], ret: str) -> str:
    """Inverse of :func:`parse_method_descriptor`."""
    return "(" + "".join(args) + ")" + ret


def slot_width(type_descriptor: str) -> int:
    """Number of local-variable/stack slots a value of this type uses."""
    return 2 if type_descriptor in ("J", "D") else 1


def argument_slots(descriptor: str, static: bool) -> int:
    """Number of local slots consumed by the arguments of a method."""
    args, _ = parse_method_descriptor(descriptor)
    slots = 0 if static else 1
    for arg in args:
        slots += slot_width(arg)
    return slots


def class_name_of(type_descriptor: str) -> str:
    """Extract the internal class name from an ``L...;`` descriptor."""
    if not (type_descriptor.startswith("L") and
            type_descriptor.endswith(";")):
        raise DescriptorError(
            f"not an object type descriptor: {type_descriptor!r}")
    return type_descriptor[1:-1]


def object_descriptor(internal_name: str) -> str:
    """Wrap an internal class name as an ``L...;`` descriptor."""
    return f"L{internal_name};"
