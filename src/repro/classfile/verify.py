"""Structural class-file verification.

There is no JVM in this environment, so this verifier stands in for
"the class file loads": it checks constant-pool well-formedness,
descriptor syntax, bytecode decodability, branch-target validity,
local-variable bounds, and that the declared ``max_stack`` covers the
computed operand-stack depth.  Both the mini-Java compiler's output
and the packed-format reconstructor's output must pass it.
"""

from __future__ import annotations

from typing import List

from . import constant_pool as cp
from .bytecode import disassemble
from .classfile import ClassFile
from .descriptors import (
    DescriptorError,
    parse_field_descriptor,
    parse_method_descriptor,
)
from .opcodes import OperandKind as K
from .stackdepth import compute_max_stack


class VerificationError(ValueError):
    """Raised when a class file is structurally invalid."""


_CP_EXPECTED_TYPES = {
    K.CP_FIELD: (cp.Fieldref,),
    K.CP_METHOD: (cp.Methodref,),
    K.CP_IMETHOD: (cp.InterfaceMethodref,),
    K.CP_CLASS: (cp.ClassInfo,),
    K.CP_LDC: (cp.IntegerConst, cp.FloatConst, cp.StringConst),
    K.CP_LDC_W: (cp.IntegerConst, cp.FloatConst, cp.StringConst),
    K.CP_LDC2_W: (cp.LongConst, cp.DoubleConst),
}


def verify_pool(classfile: ClassFile) -> List[str]:
    """Check constant-pool cross-references; returns problem strings."""
    problems: List[str] = []
    pool = classfile.pool
    for index, entry in pool.entries():
        try:
            for child_index, expected in _pool_children(entry):
                child = pool[child_index]
                if not isinstance(child, expected):
                    problems.append(
                        f"cp#{index}: child #{child_index} is "
                        f"{type(child).__name__}, expected "
                        f"{expected.__name__}")
        except IndexError as exc:
            problems.append(f"cp#{index}: {exc}")
    return problems


def _pool_children(entry: cp.Entry):
    if isinstance(entry, cp.ClassInfo):
        yield entry.name_index, cp.Utf8
    elif isinstance(entry, cp.StringConst):
        yield entry.utf8_index, cp.Utf8
    elif isinstance(entry, (cp.Fieldref, cp.Methodref,
                            cp.InterfaceMethodref)):
        yield entry.class_index, cp.ClassInfo
        yield entry.name_and_type_index, cp.NameAndType
    elif isinstance(entry, cp.NameAndType):
        yield entry.name_index, cp.Utf8
        yield entry.descriptor_index, cp.Utf8


def verify_class(classfile: ClassFile) -> None:
    """Verify a class file; raises :class:`VerificationError`."""
    problems = verify_pool(classfile)
    pool = classfile.pool
    try:
        classfile.name
    except (IndexError, TypeError) as exc:
        problems.append(f"this_class: {exc}")
    if classfile.super_class:
        try:
            pool.class_name(classfile.super_class)
        except (IndexError, TypeError) as exc:
            problems.append(f"super_class: {exc}")
    for member, kind in ([(f, "field") for f in classfile.fields] +
                         [(m, "method") for m in classfile.methods]):
        try:
            name = pool.utf8_value(member.name_index)
            descriptor = pool.utf8_value(member.descriptor_index)
        except (IndexError, TypeError) as exc:
            problems.append(f"{kind}: {exc}")
            continue
        try:
            if kind == "field":
                parse_field_descriptor(descriptor)
            else:
                parse_method_descriptor(descriptor)
        except DescriptorError as exc:
            problems.append(f"{kind} {name}: {exc}")
        code = member.code()
        if code is not None:
            problems.extend(_verify_code(classfile, name, descriptor,
                                         member, code))
    if problems:
        raise VerificationError("; ".join(problems[:20]))


def _verify_code(classfile: ClassFile, name: str, descriptor: str,
                 member, code) -> List[str]:
    problems: List[str] = []
    pool = classfile.pool
    try:
        instructions = disassemble(code.code)
    except ValueError as exc:
        return [f"method {name}: {exc}"]
    offsets = {ins.offset for ins in instructions}
    end = len(code.code)
    for instruction in instructions:
        where = f"method {name} at {instruction.offset}"
        if instruction.cp_index is not None:
            kind = instruction.spec.cp_kind
            expected = _CP_EXPECTED_TYPES.get(kind)
            try:
                entry = pool[instruction.cp_index]
            except IndexError as exc:
                problems.append(f"{where}: {exc}")
                continue
            if expected and not isinstance(entry, expected):
                problems.append(
                    f"{where}: cp operand is {type(entry).__name__}")
        if instruction.target is not None and \
                instruction.target not in offsets:
            problems.append(f"{where}: branch target {instruction.target} "
                            "is not an instruction boundary")
        if instruction.switch is not None:
            targets = [instruction.switch.default] + [
                t for _, t in instruction.switch.pairs]
            for target in targets:
                if target not in offsets:
                    problems.append(
                        f"{where}: switch target {target} invalid")
        mnemonic = instruction.mnemonic
        local = instruction.local
        if local is None and len(mnemonic) >= 2 and \
                mnemonic[-2] == "_" and mnemonic[-1].isdigit() and \
                ("load" in mnemonic or "store" in mnemonic):
            local = int(mnemonic[-1])  # the implicit _n forms
        if local is not None:
            is_wide_value = mnemonic[0] in ("l", "d") and (
                "load" in mnemonic or "store" in mnemonic)
            width = 2 if is_wide_value else 1
            if local + width > code.max_locals:
                problems.append(
                    f"{where}: local {local} exceeds "
                    f"max_locals {code.max_locals}")
    for entry in code.exception_table:
        if entry.start_pc not in offsets:
            problems.append(f"method {name}: handler start "
                            f"{entry.start_pc} invalid")
        if entry.end_pc not in offsets and entry.end_pc != end:
            problems.append(f"method {name}: handler end "
                            f"{entry.end_pc} invalid")
        if entry.handler_pc not in offsets:
            problems.append(f"method {name}: handler pc "
                            f"{entry.handler_pc} invalid")
        if entry.catch_type:
            try:
                pool.class_name(entry.catch_type)
            except (IndexError, TypeError) as exc:
                problems.append(f"method {name}: catch type {exc}")
    if not problems and instructions:
        try:
            depth = compute_max_stack(
                instructions, pool,
                [e.handler_pc for e in code.exception_table])
            if depth > code.max_stack:
                problems.append(
                    f"method {name}: computed stack depth {depth} exceeds "
                    f"declared max_stack {code.max_stack}")
        except ValueError as exc:
            problems.append(f"method {name}: {exc}")
    return problems


def verify_archive(classfiles) -> None:
    """Verify every class file in an iterable."""
    for classfile in classfiles:
        verify_class(classfile)
