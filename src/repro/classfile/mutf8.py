"""Modified UTF-8, the string encoding used inside class files.

It differs from standard UTF-8 in two ways: U+0000 is encoded as the
two-byte sequence ``C0 80`` (so encoded strings never contain a NUL
byte), and supplementary characters are encoded as surrogate pairs,
each surrogate encoded as three bytes (six bytes total, never the
four-byte UTF-8 form).
"""

from __future__ import annotations


def encode(text: str) -> bytes:
    """Encode ``text`` as modified UTF-8."""
    out = bytearray()
    for char in text:
        point = ord(char)
        if 1 <= point <= 0x7F:
            out.append(point)
        elif point == 0 or point <= 0x7FF:
            out.append(0xC0 | (point >> 6))
            out.append(0x80 | (point & 0x3F))
        elif point <= 0xFFFF:
            out.append(0xE0 | (point >> 12))
            out.append(0x80 | ((point >> 6) & 0x3F))
            out.append(0x80 | (point & 0x3F))
        else:
            # Supplementary plane: encode as a surrogate pair.
            point -= 0x10000
            for surrogate in (0xD800 | (point >> 10),
                              0xDC00 | (point & 0x3FF)):
                out.append(0xE0 | (surrogate >> 12))
                out.append(0x80 | ((surrogate >> 6) & 0x3F))
                out.append(0x80 | (surrogate & 0x3F))
    return bytes(out)


def decode(data: bytes) -> str:
    """Decode modified UTF-8 ``data`` to a string."""
    chars = []
    units = []
    pos = 0
    length = len(data)
    while pos < length:
        byte = data[pos]
        if byte & 0x80 == 0:
            units.append(byte)
            pos += 1
        elif byte & 0xE0 == 0xC0:
            if pos + 1 >= length:
                raise ValueError("truncated modified UTF-8 sequence")
            units.append(((byte & 0x1F) << 6) | (data[pos + 1] & 0x3F))
            pos += 2
        elif byte & 0xF0 == 0xE0:
            if pos + 2 >= length:
                raise ValueError("truncated modified UTF-8 sequence")
            units.append(((byte & 0x0F) << 12) |
                         ((data[pos + 1] & 0x3F) << 6) |
                         (data[pos + 2] & 0x3F))
            pos += 3
        else:
            raise ValueError(f"invalid modified UTF-8 byte {byte:#x}")
    # Recombine surrogate pairs into supplementary characters.
    i = 0
    while i < len(units):
        unit = units[i]
        if 0xD800 <= unit <= 0xDBFF and i + 1 < len(units) and \
                0xDC00 <= units[i + 1] <= 0xDFFF:
            low = units[i + 1]
            chars.append(chr(0x10000 + ((unit - 0xD800) << 10) +
                             (low - 0xDC00)))
            i += 2
        else:
            chars.append(chr(unit))
            i += 1
    return "".join(chars)
