"""Operand-stack depth analysis (``max_stack`` computation).

Works on decoded instruction lists whose offsets and branch targets
are byte offsets (i.e. after assembly/layout).  Depth is measured in
JVM stack *slots* — long and double count as two — matching the
``max_stack`` field of the Code attribute.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from . import constant_pool as cp
from .bytecode import Instruction
from .descriptors import parse_method_descriptor, slot_width

#: mnemonic -> (slots popped, slots pushed) for fixed-effect opcodes.
_FIXED: Dict[str, Tuple[int, int]] = {}


def _init_fixed() -> None:
    effects = {
        "nop": (0, 0), "aconst_null": (0, 1),
        "bipush": (0, 1), "sipush": (0, 1),
        "ldc": (0, 1), "ldc_w": (0, 1), "ldc2_w": (0, 2),
        "iaload": (2, 1), "faload": (2, 1), "aaload": (2, 1),
        "baload": (2, 1), "caload": (2, 1), "saload": (2, 1),
        "laload": (2, 2), "daload": (2, 2),
        "iastore": (3, 0), "fastore": (3, 0), "aastore": (3, 0),
        "bastore": (3, 0), "castore": (3, 0), "sastore": (3, 0),
        "lastore": (4, 0), "dastore": (4, 0),
        "pop": (1, 0), "pop2": (2, 0),
        "dup": (1, 2), "dup_x1": (2, 3), "dup_x2": (3, 4),
        "dup2": (2, 4), "dup2_x1": (3, 5), "dup2_x2": (4, 6),
        "swap": (2, 2),
        "iinc": (0, 0),
        "lcmp": (4, 1), "fcmpl": (2, 1), "fcmpg": (2, 1),
        "dcmpl": (4, 1), "dcmpg": (4, 1),
        "goto": (0, 0), "goto_w": (0, 0),
        "jsr": (0, 1), "jsr_w": (0, 1), "ret": (0, 0),
        "tableswitch": (1, 0), "lookupswitch": (1, 0),
        "ireturn": (1, 0), "freturn": (1, 0), "areturn": (1, 0),
        "lreturn": (2, 0), "dreturn": (2, 0), "return": (0, 0),
        "new": (0, 1), "newarray": (1, 1), "anewarray": (1, 1),
        "arraylength": (1, 1), "athrow": (1, 0),
        "checkcast": (1, 1), "instanceof": (1, 1),
        "monitorenter": (1, 0), "monitorexit": (1, 0),
        "ifnull": (1, 0), "ifnonnull": (1, 0),
    }
    for value in range(-1, 6):
        suffix = "m1" if value == -1 else str(value)
        effects[f"iconst_{suffix}"] = (0, 1)
    for name in ("lconst_0", "lconst_1"):
        effects[name] = (0, 2)
    for name in ("fconst_0", "fconst_1", "fconst_2"):
        effects[name] = (0, 1)
    for name in ("dconst_0", "dconst_1"):
        effects[name] = (0, 2)
    for prefix, width in (("i", 1), ("f", 1), ("a", 1), ("l", 2), ("d", 2)):
        effects[f"{prefix}load"] = (0, width)
        effects[f"{prefix}store"] = (width, 0)
        for slot in range(4):
            effects[f"{prefix}load_{slot}"] = (0, width)
            effects[f"{prefix}store_{slot}"] = (width, 0)
    for op in ("add", "sub", "mul", "div", "rem"):
        for prefix, width in (("i", 1), ("f", 1)):
            effects[f"{prefix}{op}"] = (2 * width, width)
        for prefix, width in (("l", 2), ("d", 2)):
            effects[f"{prefix}{op}"] = (2 * width, width)
    for prefix, width in (("i", 1), ("f", 1), ("l", 2), ("d", 2)):
        effects[f"{prefix}neg"] = (width, width)
    for op in ("and", "or", "xor"):
        effects[f"i{op}"] = (2, 1)
        effects[f"l{op}"] = (4, 2)
    for op in ("shl", "shr", "ushr"):
        effects[f"i{op}"] = (2, 1)
        effects[f"l{op}"] = (3, 2)
    conversions = {
        "i2l": (1, 2), "i2f": (1, 1), "i2d": (1, 2),
        "l2i": (2, 1), "l2f": (2, 1), "l2d": (2, 2),
        "f2i": (1, 1), "f2l": (1, 2), "f2d": (1, 2),
        "d2i": (2, 1), "d2l": (2, 2), "d2f": (2, 1),
        "i2b": (1, 1), "i2c": (1, 1), "i2s": (1, 1),
    }
    effects.update(conversions)
    for name in ("ifeq", "ifne", "iflt", "ifge", "ifgt", "ifle"):
        effects[name] = (1, 0)
    for name in ("if_icmpeq", "if_icmpne", "if_icmplt", "if_icmpge",
                 "if_icmpgt", "if_icmple", "if_acmpeq", "if_acmpne"):
        effects[name] = (2, 0)
    _FIXED.update(effects)


_init_fixed()

#: Mnemonics after which control does not fall through.
TERMINATORS = frozenset({
    "goto", "goto_w", "athrow", "ret", "tableswitch", "lookupswitch",
    "ireturn", "lreturn", "freturn", "dreturn", "areturn", "return",
})


def stack_effect(instruction: Instruction,
                 pool: cp.ConstantPool) -> Tuple[int, int]:
    """``(slots popped, slots pushed)`` for one instruction."""
    mnemonic = instruction.mnemonic
    fixed = _FIXED.get(mnemonic)
    if fixed is not None:
        return fixed
    if mnemonic in ("getstatic", "getfield", "putstatic", "putfield"):
        _, _, descriptor = pool.member_ref(instruction.cp_index)
        width = slot_width(descriptor)
        if mnemonic == "getstatic":
            return (0, width)
        if mnemonic == "getfield":
            return (1, width)
        if mnemonic == "putstatic":
            return (width, 0)
        return (1 + width, 0)
    if mnemonic in ("invokevirtual", "invokespecial", "invokestatic",
                    "invokeinterface"):
        _, _, descriptor = pool.member_ref(instruction.cp_index)
        args, ret = parse_method_descriptor(descriptor)
        pops = sum(slot_width(a) for a in args)
        if mnemonic != "invokestatic":
            pops += 1
        pushes = 0 if ret == "V" else slot_width(ret)
        return (pops, pushes)
    if mnemonic == "multianewarray":
        return (instruction.dims, 1)
    raise ValueError(f"no stack effect known for {mnemonic}")


def successors(instruction: Instruction, next_offset: int) -> List[int]:
    """Offsets of the possible successors of ``instruction``."""
    mnemonic = instruction.mnemonic
    targets: List[int] = []
    if instruction.switch is not None:
        targets.append(instruction.switch.default)
        targets.extend(t for _, t in instruction.switch.pairs)
        return targets
    if instruction.target is not None:
        targets.append(instruction.target)
    if mnemonic not in TERMINATORS:
        targets.append(next_offset)
    return targets


def compute_max_stack(instructions: List[Instruction],
                      pool: cp.ConstantPool,
                      handler_offsets: Iterable[int] = ()) -> int:
    """Worklist computation of the maximum operand-stack depth.

    ``instructions`` must already carry byte offsets and byte-offset
    branch targets.  Exception handlers are entered with depth 1 (the
    thrown exception).
    """
    if not instructions:
        return 0
    by_offset = {ins.offset: i for i, ins in enumerate(instructions)}
    depth_at: Dict[int, int] = {instructions[0].offset: 0}
    worklist: List[int] = [instructions[0].offset]
    for handler in handler_offsets:
        if handler not in depth_at or depth_at[handler] < 1:
            depth_at[handler] = 1
            worklist.append(handler)
    max_depth = 0
    while worklist:
        offset = worklist.pop()
        index = by_offset.get(offset)
        if index is None:
            raise ValueError(f"branch into the middle of an instruction "
                             f"at offset {offset}")
        depth = depth_at[offset]
        instruction = instructions[index]
        pops, pushes = stack_effect(instruction, pool)
        if depth < pops:
            raise ValueError(
                f"stack underflow at {offset} ({instruction.mnemonic}): "
                f"depth {depth}, pops {pops}")
        depth = depth - pops + pushes
        max_depth = max(max_depth, depth)
        if index + 1 < len(instructions):
            next_offset = instructions[index + 1].offset
        else:
            next_offset = instructions[index].offset + 1_000_000_000
        for successor in successors(instruction, next_offset):
            if successor >= next_offset and \
                    index + 1 >= len(instructions) and \
                    instruction.mnemonic not in TERMINATORS:
                raise ValueError("control falls off the end of code")
            known = depth_at.get(successor)
            if known is None or known < depth:
                depth_at[successor] = depth
                worklist.append(successor)
    return max_depth
