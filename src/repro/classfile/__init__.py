"""JVM class-file substrate: parsing, writing, bytecode, transforms."""

from .attributes import (
    CodeAttribute,
    ConstantValueAttribute,
    ExceptionsAttribute,
    ExceptionTableEntry,
)
from .bytecode import Instruction, assemble, disassemble
from .classfile import ClassFile, ClassFileError, parse_class, write_class
from .constant_pool import ConstantPool
from .constants import AccessFlags, ConstantTag
from .transform import normalize
from .verify import VerificationError, verify_archive, verify_class

__all__ = [
    "AccessFlags",
    "ClassFile",
    "ClassFileError",
    "CodeAttribute",
    "ConstantPool",
    "ConstantTag",
    "ConstantValueAttribute",
    "ExceptionTableEntry",
    "ExceptionsAttribute",
    "Instruction",
    "VerificationError",
    "assemble",
    "disassemble",
    "normalize",
    "parse_class",
    "verify_archive",
    "verify_class",
    "write_class",
]
