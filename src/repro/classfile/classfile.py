"""Class-file parsing and serialization.

:func:`parse_class` turns raw ``.class`` bytes into a :class:`ClassFile`
object graph; :func:`write_class` is the exact inverse.  The pair is
bit-faithful: ``write_class(parse_class(data)) == data`` for any class
file whose attributes we model (unknown attributes are preserved as raw
bytes, so the identity holds for them too).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from . import constant_pool as cp
from . import mutf8
from .attributes import (
    Attribute,
    CodeAttribute,
    ConstantValueAttribute,
    DeprecatedAttribute,
    ExceptionTableEntry,
    ExceptionsAttribute,
    InnerClassEntry,
    InnerClassesAttribute,
    LineNumberEntry,
    LineNumberTableAttribute,
    LocalVariableEntry,
    LocalVariableTableAttribute,
    RawAttribute,
    SourceFileAttribute,
    SyntheticAttribute,
)
from .constants import MAGIC, MAJOR_VERSION, MINOR_VERSION, ConstantTag
from .io import ByteReader, ByteWriter
from .members import FieldInfo, MethodInfo


class ClassFileError(ValueError):
    """Raised when class-file bytes are malformed."""


@dataclass
class ClassFile:
    """A parsed class file."""

    minor_version: int = MINOR_VERSION
    major_version: int = MAJOR_VERSION
    pool: cp.ConstantPool = field(default_factory=cp.ConstantPool)
    access_flags: int = 0
    this_class: int = 0
    super_class: int = 0
    interfaces: List[int] = field(default_factory=list)
    fields: List[FieldInfo] = field(default_factory=list)
    methods: List[MethodInfo] = field(default_factory=list)
    attributes: List[Attribute] = field(default_factory=list)

    # -- convenience ----------------------------------------------------

    @property
    def name(self) -> str:
        """Internal (slash-separated) name of this class."""
        return self.pool.class_name(self.this_class)

    @property
    def super_name(self) -> Optional[str]:
        """Internal name of the superclass, or None for java/lang/Object."""
        if self.super_class == 0:
            return None
        return self.pool.class_name(self.super_class)

    def interface_names(self) -> List[str]:
        return [self.pool.class_name(i) for i in self.interfaces]

    def member_name(self, member) -> str:
        return self.pool.utf8_value(member.name_index)

    def member_descriptor(self, member) -> str:
        return self.pool.utf8_value(member.descriptor_index)


# ---------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------


def _parse_constant_pool(reader: ByteReader) -> cp.ConstantPool:
    pool = cp.ConstantPool()
    count = reader.u2()
    index = 1
    while index < count:
        tag = reader.u1()
        if tag == ConstantTag.UTF8:
            length = reader.u2()
            entry = cp.Utf8(mutf8.decode(reader.raw(length)))
        elif tag == ConstantTag.INTEGER:
            entry = cp.IntegerConst(reader.s4())
        elif tag == ConstantTag.FLOAT:
            entry = cp.FloatConst(reader.u4())
        elif tag == ConstantTag.LONG:
            high = reader.u4()
            low = reader.u4()
            raw = (high << 32) | low
            if raw >= 1 << 63:
                raw -= 1 << 64
            entry = cp.LongConst(raw)
        elif tag == ConstantTag.DOUBLE:
            high = reader.u4()
            low = reader.u4()
            entry = cp.DoubleConst((high << 32) | low)
        elif tag == ConstantTag.CLASS:
            entry = cp.ClassInfo(reader.u2())
        elif tag == ConstantTag.STRING:
            entry = cp.StringConst(reader.u2())
        elif tag == ConstantTag.FIELDREF:
            entry = cp.Fieldref(reader.u2(), reader.u2())
        elif tag == ConstantTag.METHODREF:
            entry = cp.Methodref(reader.u2(), reader.u2())
        elif tag == ConstantTag.INTERFACE_METHODREF:
            entry = cp.InterfaceMethodref(reader.u2(), reader.u2())
        elif tag == ConstantTag.NAME_AND_TYPE:
            entry = cp.NameAndType(reader.u2(), reader.u2())
        else:
            raise ClassFileError(f"unknown constant pool tag {tag}")
        pool.append_raw(entry)
        index += 1
        if tag in cp.WIDE_TAGS:
            pool.append_raw(None)
            index += 1
    return pool


def _parse_attribute(reader: ByteReader, pool: cp.ConstantPool) -> Attribute:
    name_index = reader.u2()
    length = reader.u4()
    name = pool.utf8_value(name_index)
    body = ByteReader(reader.raw(length))
    if name == "Code":
        max_stack = body.u2()
        max_locals = body.u2()
        code_length = body.u4()
        code = body.raw(code_length)
        table = [
            ExceptionTableEntry(body.u2(), body.u2(), body.u2(), body.u2())
            for _ in range(body.u2())
        ]
        nested = [_parse_attribute(body, pool) for _ in range(body.u2())]
        return CodeAttribute(max_stack, max_locals, code, table, nested)
    if name == "ConstantValue":
        return ConstantValueAttribute(body.u2())
    if name == "Exceptions":
        return ExceptionsAttribute([body.u2() for _ in range(body.u2())])
    if name == "SourceFile":
        return SourceFileAttribute(body.u2())
    if name == "LineNumberTable":
        return LineNumberTableAttribute([
            LineNumberEntry(body.u2(), body.u2())
            for _ in range(body.u2())
        ])
    if name == "LocalVariableTable":
        return LocalVariableTableAttribute([
            LocalVariableEntry(body.u2(), body.u2(), body.u2(),
                               body.u2(), body.u2())
            for _ in range(body.u2())
        ])
    if name == "Synthetic":
        return SyntheticAttribute()
    if name == "Deprecated":
        return DeprecatedAttribute()
    if name == "InnerClasses":
        return InnerClassesAttribute([
            InnerClassEntry(body.u2(), body.u2(), body.u2(), body.u2())
            for _ in range(body.u2())
        ])
    return RawAttribute(name, body.data)


def _parse_member(reader: ByteReader, pool: cp.ConstantPool, cls):
    access_flags = reader.u2()
    name_index = reader.u2()
    descriptor_index = reader.u2()
    attributes = [_parse_attribute(reader, pool) for _ in range(reader.u2())]
    return cls(access_flags, name_index, descriptor_index, attributes)


def parse_class(data: bytes) -> ClassFile:
    """Parse raw ``.class`` bytes into a :class:`ClassFile`."""
    reader = ByteReader(data)
    if reader.u4() != MAGIC:
        raise ClassFileError("bad magic number (not a class file)")
    minor = reader.u2()
    major = reader.u2()
    pool = _parse_constant_pool(reader)
    access_flags = reader.u2()
    this_class = reader.u2()
    super_class = reader.u2()
    interfaces = [reader.u2() for _ in range(reader.u2())]
    fields = [_parse_member(reader, pool, FieldInfo)
              for _ in range(reader.u2())]
    methods = [_parse_member(reader, pool, MethodInfo)
               for _ in range(reader.u2())]
    attributes = [_parse_attribute(reader, pool) for _ in range(reader.u2())]
    if reader.remaining():
        raise ClassFileError(
            f"{reader.remaining()} trailing bytes after class file")
    return ClassFile(minor, major, pool, access_flags, this_class,
                     super_class, interfaces, fields, methods, attributes)


# ---------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------


def _write_constant_pool(writer: ByteWriter, pool: cp.ConstantPool) -> None:
    writer.u2(pool.count)
    for _, entry in pool.entries():
        writer.u1(entry.tag)
        if isinstance(entry, cp.Utf8):
            encoded = mutf8.encode(entry.value)
            writer.u2(len(encoded))
            writer.raw(encoded)
        elif isinstance(entry, cp.IntegerConst):
            writer.s4(entry.value)
        elif isinstance(entry, cp.FloatConst):
            writer.u4(entry.bits)
        elif isinstance(entry, cp.LongConst):
            raw = entry.value & 0xFFFFFFFFFFFFFFFF
            writer.u4(raw >> 32)
            writer.u4(raw & 0xFFFFFFFF)
        elif isinstance(entry, cp.DoubleConst):
            writer.u4(entry.bits >> 32)
            writer.u4(entry.bits & 0xFFFFFFFF)
        elif isinstance(entry, cp.ClassInfo):
            writer.u2(entry.name_index)
        elif isinstance(entry, cp.StringConst):
            writer.u2(entry.utf8_index)
        elif isinstance(entry, (cp.Fieldref, cp.Methodref,
                                cp.InterfaceMethodref)):
            writer.u2(entry.class_index)
            writer.u2(entry.name_and_type_index)
        elif isinstance(entry, cp.NameAndType):
            writer.u2(entry.name_index)
            writer.u2(entry.descriptor_index)
        else:  # pragma: no cover - exhaustive over Entry
            raise ClassFileError(f"cannot write entry {entry!r}")


def _attribute_body(attribute: Attribute, pool: cp.ConstantPool) -> bytes:
    body = ByteWriter()
    if isinstance(attribute, CodeAttribute):
        body.u2(attribute.max_stack)
        body.u2(attribute.max_locals)
        body.u4(len(attribute.code))
        body.raw(attribute.code)
        body.u2(len(attribute.exception_table))
        for entry in attribute.exception_table:
            body.u2(entry.start_pc)
            body.u2(entry.end_pc)
            body.u2(entry.handler_pc)
            body.u2(entry.catch_type)
        body.u2(len(attribute.attributes))
        for nested in attribute.attributes:
            _write_attribute(body, nested, pool)
    elif isinstance(attribute, ConstantValueAttribute):
        body.u2(attribute.value_index)
    elif isinstance(attribute, ExceptionsAttribute):
        body.u2(len(attribute.exception_indices))
        for index in attribute.exception_indices:
            body.u2(index)
    elif isinstance(attribute, SourceFileAttribute):
        body.u2(attribute.source_file_index)
    elif isinstance(attribute, LineNumberTableAttribute):
        body.u2(len(attribute.entries))
        for entry in attribute.entries:
            body.u2(entry.start_pc)
            body.u2(entry.line_number)
    elif isinstance(attribute, LocalVariableTableAttribute):
        body.u2(len(attribute.entries))
        for entry in attribute.entries:
            body.u2(entry.start_pc)
            body.u2(entry.length)
            body.u2(entry.name_index)
            body.u2(entry.descriptor_index)
            body.u2(entry.index)
    elif isinstance(attribute, (SyntheticAttribute, DeprecatedAttribute)):
        pass
    elif isinstance(attribute, InnerClassesAttribute):
        body.u2(len(attribute.entries))
        for entry in attribute.entries:
            body.u2(entry.inner_class_index)
            body.u2(entry.outer_class_index)
            body.u2(entry.inner_name_index)
            body.u2(entry.inner_access_flags)
    elif isinstance(attribute, RawAttribute):
        body.raw(attribute.data)
    else:  # pragma: no cover - exhaustive over Attribute
        raise ClassFileError(f"cannot write attribute {attribute!r}")
    return body.getvalue()


def _write_attribute(writer: ByteWriter, attribute: Attribute,
                     pool: cp.ConstantPool) -> None:
    name_index = pool.add(cp.Utf8(attribute.name))
    payload = _attribute_body(attribute, pool)
    writer.u2(name_index)
    writer.u4(len(payload))
    writer.raw(payload)


def _write_member(writer: ByteWriter, member, pool: cp.ConstantPool) -> None:
    writer.u2(member.access_flags)
    writer.u2(member.name_index)
    writer.u2(member.descriptor_index)
    writer.u2(len(member.attributes))
    for attribute in member.attributes:
        _write_attribute(writer, attribute, pool)


def write_class(classfile: ClassFile) -> bytes:
    """Serialize a :class:`ClassFile` to ``.class`` bytes.

    Attribute-name Utf8 entries must already be present in the pool
    (the parser guarantees this; builders use
    :meth:`ConstantPool.utf8` before attaching attributes).
    """
    # Attribute names are interned up front so writing the constant
    # pool (which comes first in the file) already includes them.
    def intern_names(attributes: List[Attribute]) -> None:
        for attribute in attributes:
            classfile.pool.utf8(attribute.name)
            if isinstance(attribute, CodeAttribute):
                intern_names(attribute.attributes)

    intern_names(classfile.attributes)
    for member in list(classfile.fields) + list(classfile.methods):
        intern_names(member.attributes)

    writer = ByteWriter()
    writer.u4(MAGIC)
    writer.u2(classfile.minor_version)
    writer.u2(classfile.major_version)
    _write_constant_pool(writer, classfile.pool)
    writer.u2(classfile.access_flags)
    writer.u2(classfile.this_class)
    writer.u2(classfile.super_class)
    writer.u2(len(classfile.interfaces))
    for interface in classfile.interfaces:
        writer.u2(interface)
    writer.u2(len(classfile.fields))
    for member in classfile.fields:
        _write_member(writer, member, classfile.pool)
    writer.u2(len(classfile.methods))
    for member in classfile.methods:
        _write_member(writer, member, classfile.pool)
    writer.u2(len(classfile.attributes))
    for attribute in classfile.attributes:
        _write_attribute(writer, attribute, classfile.pool)
    return writer.getvalue()
