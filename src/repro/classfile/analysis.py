"""Size accounting over class files (the paper's Table 2).

Breaks a collection of class files into the components the paper
reports: field definitions, method definitions, Code attributes, Utf8
constant-pool entries, and the rest of the constant pool — plus the
"if shared" and "if shared & factored" what-if sizes for Utf8 data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from . import constant_pool as cp
from . import mutf8
from .attributes import CodeAttribute
from .classfile import ClassFile
from .classfile import _attribute_body  # noqa: F401  (sizes via writer)


@dataclass
class Breakdown:
    """Byte totals for one collection of class files."""

    total: int = 0
    field_definitions: int = 0
    method_definitions: int = 0
    code: int = 0
    utf8_entries: int = 0
    other_constant_pool: int = 0
    utf8_shared: int = 0
    utf8_shared_factored: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "total": self.total,
            "field_definitions": self.field_definitions,
            "method_definitions": self.method_definitions,
            "code": self.code,
            "other_constant_pool": self.other_constant_pool,
            "utf8_entries": self.utf8_entries,
            "utf8_shared": self.utf8_shared,
            "utf8_shared_factored": self.utf8_shared_factored,
        }


def _entry_size(entry: cp.Entry) -> int:
    """On-disk byte size of one constant-pool entry (incl. tag)."""
    if isinstance(entry, cp.Utf8):
        return 3 + len(mutf8.encode(entry.value))
    if isinstance(entry, (cp.IntegerConst, cp.FloatConst)):
        return 5
    if isinstance(entry, (cp.LongConst, cp.DoubleConst)):
        return 9
    if isinstance(entry, (cp.ClassInfo, cp.StringConst)):
        return 3
    return 5  # member refs and NameAndType: tag + two u2 indices


def _member_size(member, pool: cp.ConstantPool) -> Tuple[int, int]:
    """(definition bytes, code bytes) for a field or method."""
    definition = 8  # access_flags, name, descriptor, attr count
    code_bytes = 0
    for attribute in member.attributes:
        body = len(_attribute_body(attribute, pool))
        attr_size = 6 + body  # name index + length + payload
        if isinstance(attribute, CodeAttribute):
            code_bytes += attr_size
        else:
            definition += attr_size
    return definition, code_bytes


def _factored_utf8_chars(values: Set[str]) -> int:
    """Character bytes remaining after the Section 3/4 factoring.

    Factoring splits class names into package + simple names and
    replaces descriptor strings with structural references, so the
    remaining string payload is the set of distinct *simple* tokens.
    """
    tokens: Set[str] = set()
    for value in values:
        if value.startswith("(") or \
                (value.startswith("L") and value.endswith(";")) or \
                value.startswith("["):
            # A descriptor: its class names decompose into tokens and
            # the structure itself becomes references (no chars).
            for part in _descriptor_class_names(value):
                _split_class_name(part, tokens)
            continue
        if "/" in value:
            _split_class_name(value, tokens)
            continue
        tokens.add(value)
    return sum(len(mutf8.encode(token)) + 2 for token in tokens)


def _descriptor_class_names(descriptor: str) -> List[str]:
    names: List[str] = []
    pos = 0
    while pos < len(descriptor):
        char = descriptor[pos]
        if char == "L":
            end = descriptor.find(";", pos)
            if end < 0:
                break
            names.append(descriptor[pos + 1:end])
            pos = end + 1
        else:
            pos += 1
    return names


def _split_class_name(name: str, tokens: Set[str]) -> None:
    if "/" in name:
        package, simple = name.rsplit("/", 1)
        tokens.add(package)
        tokens.add(simple)
    else:
        tokens.add(name)


def breakdown(classfiles: Iterable[ClassFile]) -> Breakdown:
    """Compute the Table 2 component breakdown."""
    result = Breakdown()
    shared_utf8: Set[str] = set()
    for classfile in classfiles:
        pool = classfile.pool

        # Attribute-name Utf8 entries are interned lazily at write
        # time; intern them now so pool accounting matches the bytes
        # that serialization would produce.
        def intern_names(attributes) -> None:
            for attribute in attributes:
                pool.utf8(attribute.name)
                if isinstance(attribute, CodeAttribute):
                    intern_names(attribute.attributes)

        intern_names(classfile.attributes)
        for member in list(classfile.fields) + list(classfile.methods):
            intern_names(member.attributes)

        header = 8  # magic, minor/major version
        pool_header = 2
        class_header = 8 + 2 * len(classfile.interfaces) + 6
        result.total += header + pool_header + class_header
        for _, entry in pool.entries():
            size = _entry_size(entry)
            result.total += size
            if isinstance(entry, cp.Utf8):
                result.utf8_entries += size
                shared_utf8.add(entry.value)
            else:
                result.other_constant_pool += size
        for member in classfile.fields:
            definition, code_bytes = _member_size(member, pool)
            result.field_definitions += definition
            result.code += code_bytes
            result.total += definition + code_bytes
        for member in classfile.methods:
            definition, code_bytes = _member_size(member, pool)
            result.method_definitions += definition
            result.code += code_bytes
            result.total += definition + code_bytes
        for attribute in classfile.attributes:
            size = 6 + len(_attribute_body(attribute, pool))
            result.total += size
    result.utf8_shared = sum(
        3 + len(mutf8.encode(value)) for value in shared_utf8)
    result.utf8_shared_factored = _factored_utf8_chars(shared_utf8)
    return result
