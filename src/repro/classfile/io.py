"""Big-endian binary readers and writers for class-file structures."""

from __future__ import annotations

import struct


class ByteReader:
    """A cursor over big-endian class-file bytes."""

    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    def remaining(self) -> int:
        return len(self.data) - self.pos

    def _take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise ValueError(
                f"truncated class file: wanted {count} bytes at offset "
                f"{self.pos}, have {len(self.data) - self.pos}")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def u1(self) -> int:
        return self._take(1)[0]

    def u2(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u4(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def s1(self) -> int:
        return struct.unpack(">b", self._take(1))[0]

    def s2(self) -> int:
        return struct.unpack(">h", self._take(2))[0]

    def s4(self) -> int:
        return struct.unpack(">i", self._take(4))[0]

    def raw(self, count: int) -> bytes:
        return self._take(count)


class ByteWriter:
    """An append-only big-endian byte builder."""

    def __init__(self):
        self.buf = bytearray()

    def __len__(self) -> int:
        return len(self.buf)

    def u1(self, value: int) -> None:
        self.buf.append(value & 0xFF)

    def u2(self, value: int) -> None:
        self.buf.extend(struct.pack(">H", value & 0xFFFF))

    def u4(self, value: int) -> None:
        self.buf.extend(struct.pack(">I", value & 0xFFFFFFFF))

    def s1(self, value: int) -> None:
        self.buf.extend(struct.pack(">b", value))

    def s2(self, value: int) -> None:
        self.buf.extend(struct.pack(">h", value))

    def s4(self, value: int) -> None:
        self.buf.extend(struct.pack(">i", value))

    def raw(self, data: bytes) -> None:
        self.buf.extend(data)

    def getvalue(self) -> bytes:
        return bytes(self.buf)
