"""Field and method member records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .attributes import Attribute, CodeAttribute, find_attribute


@dataclass
class MemberInfo:
    """Common shape of ``field_info`` and ``method_info`` records."""

    access_flags: int
    name_index: int
    descriptor_index: int
    attributes: List[Attribute] = field(default_factory=list)

    def code(self) -> Optional[CodeAttribute]:
        """The member's Code attribute, if any (methods only)."""
        attribute = find_attribute(self.attributes, "Code")
        if isinstance(attribute, CodeAttribute):
            return attribute
        return None


class FieldInfo(MemberInfo):
    """A field_info record."""


class MethodInfo(MemberInfo):
    """A method_info record."""
