"""Reference-encoding schemes (Section 5 / Table 3)."""

from .base import Coder, Context, PairCoder, RefDecoder, RefEncoder
from .schemes import SCHEME_NAMES, make_codec, make_coder

__all__ = [
    "Coder",
    "Context",
    "PairCoder",
    "RefDecoder",
    "RefEncoder",
    "SCHEME_NAMES",
    "make_codec",
    "make_coder",
]
