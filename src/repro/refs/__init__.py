"""Reference-encoding schemes (Section 5 / Table 3)."""

from .base import Context, RefDecoder, RefEncoder
from .schemes import SCHEME_NAMES, make_codec

__all__ = [
    "Context",
    "RefDecoder",
    "RefEncoder",
    "SCHEME_NAMES",
    "make_codec",
]
