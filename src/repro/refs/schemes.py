"""The Section 5 reference-encoding schemes (Table 3 columns).

Every scheme comes as an encoder/decoder pair whose state machines
mirror each other exactly.  See :mod:`repro.refs.base` for the pool
granularity of each scheme.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..coding.streams import StreamCursor, StreamWriter
from ..mtf.queue import MtfCoder
from ..observe import recorder as observe
from .base import Coder, Context, PairCoder, RefDecoder, RefEncoder

CACHE_SIZE = 16

SCHEME_NAMES = ["simple", "basic", "freq", "cache", "mtf"]


def make_coder(scheme: str, use_context: bool = False,
               transients: bool = False, seed: int = 0) -> Coder:
    """Build the dual-mode :class:`Coder` for one object space.

    This is what the codec driver consumes: one object whose encoder
    and decoder halves were constructed together (same seed, same
    variant flags) and therefore mirror each other exactly.
    """
    return PairCoder(*make_codec(scheme, use_context=use_context,
                                 transients=transients, seed=seed))


def make_codec(scheme: str, use_context: bool = False,
               transients: bool = False,
               seed: int = 0) -> Tuple[RefEncoder, RefDecoder]:
    """Build a matching encoder/decoder pair for one object space."""
    if scheme == "simple":
        return SimpleEncoder(), SimpleDecoder()
    if scheme == "basic":
        return BasicEncoder(), BasicDecoder()
    if scheme == "freq":
        return FreqEncoder(), FreqDecoder()
    if scheme == "cache":
        return CacheEncoder(), CacheDecoder()
    if scheme == "mtf":
        return (MtfEncoder(use_context=use_context, transients=transients,
                           seed=seed),
                MtfDecoder(use_context=use_context, transients=transients,
                           seed=seed))
    raise ValueError(f"unknown reference scheme {scheme!r}")


# ---------------------------------------------------------------------
# Simple: fixed two-byte ids, one global pool
# ---------------------------------------------------------------------


class SimpleEncoder(RefEncoder):
    def __init__(self):
        self._ids: Dict[Hashable, int] = {}

    def encode(self, stream: StreamWriter, context: Context,
               key: Hashable) -> bool:
        ident = self._ids.get(key)
        is_new = ident is None
        if is_new:
            ident = len(self._ids)
            if ident > 0xFFFF:
                raise ValueError("simple scheme overflow (> 65535 objects)")
            self._ids[key] = ident
        stream.u8(ident >> 8)
        stream.u8(ident & 0xFF)
        return is_new


class SimpleDecoder(RefDecoder):
    def __init__(self):
        self._values: List[Any] = []

    def decode(self, stream: StreamCursor,
               context: Context) -> Tuple[bool, Optional[Any]]:
        ident = (stream.u8() << 8) | stream.u8()
        if ident == len(self._values):
            return True, None
        return False, self._values[ident]

    def register(self, context: Context, value: Any) -> None:
        self._values.append(value)


# ---------------------------------------------------------------------
# Basic: sequential ids, compactly encoded, one global pool
# ---------------------------------------------------------------------


class BasicEncoder(RefEncoder):
    def __init__(self):
        self._ids: Dict[Hashable, int] = {}

    def encode(self, stream: StreamWriter, context: Context,
               key: Hashable) -> bool:
        ident = self._ids.get(key)
        is_new = ident is None
        if is_new:
            ident = len(self._ids)
            self._ids[key] = ident
        stream.uvarint(ident)
        return is_new


class BasicDecoder(RefDecoder):
    def __init__(self):
        self._values: List[Any] = []

    def decode(self, stream: StreamCursor,
               context: Context) -> Tuple[bool, Optional[Any]]:
        ident = stream.uvarint()
        if ident == len(self._values):
            return True, None
        return False, self._values[ident]

    def register(self, context: Context, value: Any) -> None:
        self._values.append(value)


# ---------------------------------------------------------------------
# Freq: frequency-ranked ids per kind; singletons share a special id
# ---------------------------------------------------------------------


class FreqEncoder(RefEncoder):
    needs_frequencies = True

    def __init__(self):
        #: kind -> key -> id (1-based; 0 is the shared singleton id)
        self._ids: Dict[str, Dict[Hashable, int]] = {}
        self._seen: set = set()
        self._metrics = observe.current().metrics

    def set_frequencies(self, counts: Dict[Hashable, int]) -> None:
        """``counts`` maps (kind, key) -> reference count."""
        per_kind: Dict[str, List[Tuple[int, Hashable]]] = {}
        for (kind, key), count in counts.items():
            if count >= 2:
                per_kind.setdefault(kind, []).append((count, key))
        for kind, pairs in per_kind.items():
            pairs.sort(key=lambda pair: (-pair[0], repr(pair[1])))
            self._ids[kind] = {
                key: index + 1 for index, (_, key) in enumerate(pairs)}

    def encode(self, stream: StreamWriter, context: Context,
               key: Hashable) -> bool:
        kind = context[0]
        table = self._ids.get(kind, {})
        ident = table.get(key, 0)
        stream.uvarint(ident)
        if self._metrics is not None:
            self._metrics.count("refs.freq.singleton" if ident == 0
                                else "refs.freq.ranked")
        if ident == 0:
            return True  # singleton: contents always follow
        seen_key = (kind, ident)
        if seen_key in self._seen:
            return False
        self._seen.add(seen_key)
        return True


class FreqDecoder(RefDecoder):
    def __init__(self):
        self._values: Dict[Tuple[str, int], Any] = {}
        self._pending: Optional[Tuple[str, int]] = None

    def decode(self, stream: StreamCursor,
               context: Context) -> Tuple[bool, Optional[Any]]:
        kind = context[0]
        ident = stream.uvarint()
        if ident == 0:
            self._pending = None  # singleton: never registered
            return True, None
        slot = (kind, ident)
        if slot in self._values:
            return False, self._values[slot]
        self._pending = slot
        return True, None

    def register(self, context: Context, value: Any) -> None:
        if self._pending is not None:
            self._values[self._pending] = value
            self._pending = None


# ---------------------------------------------------------------------
# Cache: Freq augmented with a 16-entry LRU (move-to-front) cache
# ---------------------------------------------------------------------


class CacheEncoder(FreqEncoder):
    def __init__(self):
        super().__init__()
        self._caches: Dict[str, List[Hashable]] = {}

    def encode(self, stream: StreamWriter, context: Context,
               key: Hashable) -> bool:
        kind = context[0]
        cache = self._caches.setdefault(kind, [])
        if key in cache:
            position = cache.index(key)
            stream.uvarint(position)
            cache.pop(position)
            cache.insert(0, key)
            if self._metrics is not None:
                self._metrics.count("refs.cache.hit")
                self._metrics.observe("refs.cache.hit_depth", position)
            return False
        if self._metrics is not None:
            self._metrics.count("refs.cache.miss")
        table = self._ids.get(kind, {})
        ident = table.get(key, 0)
        stream.uvarint(CACHE_SIZE + ident)
        if ident != 0:
            cache.insert(0, key)
            del cache[CACHE_SIZE:]
        if ident == 0:
            return True
        seen_key = (kind, ident)
        if seen_key in self._seen:
            return False
        self._seen.add(seen_key)
        return True


class CacheDecoder(RefDecoder):
    def __init__(self):
        self._values: Dict[Tuple[str, int], Any] = {}
        #: kind -> list of freq ids (cache contents)
        self._caches: Dict[str, List[int]] = {}
        self._pending: Optional[Tuple[str, int]] = None

    def decode(self, stream: StreamCursor,
               context: Context) -> Tuple[bool, Optional[Any]]:
        kind = context[0]
        cache = self._caches.setdefault(kind, [])
        code = stream.uvarint()
        if code < CACHE_SIZE:
            ident = cache.pop(code)
            cache.insert(0, ident)
            return False, self._values[(kind, ident)]
        ident = code - CACHE_SIZE
        if ident == 0:
            self._pending = None
            return True, None
        cache.insert(0, ident)
        del cache[CACHE_SIZE:]
        slot = (kind, ident)
        if slot in self._values:
            return False, self._values[slot]
        self._pending = slot
        return True, None

    def register(self, context: Context, value: Any) -> None:
        if self._pending is not None:
            self._values[self._pending] = value
            self._pending = None


# ---------------------------------------------------------------------
# MTF: skiplist-backed move-to-front queues
# ---------------------------------------------------------------------


def _pool_key(context: Context, use_context: bool) -> Hashable:
    kind, stack_context = context
    if use_context and kind.startswith("method."):
        return (kind, stack_context)
    return kind


class MtfEncoder(RefEncoder):
    def __init__(self, use_context: bool, transients: bool, seed: int = 0):
        self.use_context = use_context
        self.transients = transients
        self._coder = MtfCoder(transients=transients, seed=seed)
        self._counts: Dict[Hashable, int] = {}
        self._metrics = observe.current().metrics

    @property
    def needs_frequencies(self) -> bool:  # type: ignore[override]
        return self.transients

    def set_frequencies(self, counts: Dict[Hashable, int]) -> None:
        # Transience is a property of the object across every context,
        # so counts are aggregated by key alone.
        merged: Dict[Hashable, int] = {}
        for (_, key), count in counts.items():
            merged[key] = merged.get(key, 0) + count
        self._counts = merged

    def encode(self, stream: StreamWriter, context: Context,
               key: Hashable) -> bool:
        pool = _pool_key(context, self.use_context)
        transient = self.transients and self._counts.get(key, 2) == 1
        index, is_new = self._coder.encode(pool, key, transient=transient,
                                           value=key)
        stream.uvarint(index)
        if self._metrics is not None:
            kind = context[0]
            self._metrics.observe(f"mtf.queue_depth.{kind}", index)
            if not is_new:
                self._metrics.count("mtf.hit")
            elif transient:
                self._metrics.count("mtf.transient")
            else:
                self._metrics.count("mtf.new")
        return is_new


class MtfDecoder(RefDecoder):
    def __init__(self, use_context: bool, transients: bool, seed: int = 0):
        self.use_context = use_context
        self._coder = MtfCoder(transients=transients, seed=seed)
        self._pending_index: Optional[int] = None

    def decode(self, stream: StreamCursor,
               context: Context) -> Tuple[bool, Optional[Any]]:
        pool = _pool_key(context, self.use_context)
        index = stream.uvarint()
        if self._coder.decode_is_new(index):
            self._pending_index = index
            return True, None
        return False, self._coder.decode_known(pool, index)

    def register(self, context: Context, value: Any) -> None:
        if self._pending_index is None:
            raise ValueError("register() without a pending new object")
        self._coder.decode_new(self._pending_index, value, value)
        self._pending_index = None
