"""Reference-coder interface shared by all Section 5 schemes.

A *reference coder* encodes "an object we may have seen before" into a
stream of small integers.  Encoding returns whether the object is new
(in which case the caller serializes its contents to other streams);
decoding mirrors the state machine exactly.

Contexts: every reference site supplies a ``(kind, stack_context)``
pair — e.g. ``("method.virtual", ("I", "I"))`` for a virtual call with
two ints on top of the approximate stack.  Each scheme decides how
much of the context it uses:

==========  ===================================================
scheme      pools
==========  ===================================================
simple      one global pool (2-byte fixed ids)
basic       one global pool (compact sequential ids)
freq        one pool per kind (frequency-ordered ids)
cache       freq + a 16-entry MTF cache per kind
mtf         one MTF queue per kind (per (kind, stack) with
            ``use_context``); optional transient handling
==========  ===================================================
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from ..coding.streams import StreamCursor, StreamWriter

Context = Tuple[str, Tuple[str, str]]


class RefEncoder:
    """Encoder half: one instance per object space (methods, fields,
    classes, ...)."""

    #: Whether the scheme needs a global frequency table before
    #: encoding starts (supplied via :meth:`set_frequencies`).
    needs_frequencies = False

    def set_frequencies(self, counts: Dict[Hashable, int]) -> None:
        """Provide the counting pass's results (two-pass schemes)."""

    def encode(self, stream: StreamWriter, context: Context,
               key: Hashable) -> bool:
        """Encode one reference; returns True when the object is new
        (caller must then serialize its contents)."""
        raise NotImplementedError


class RefDecoder:
    """Decoder half; must mirror the encoder's state transitions."""

    def decode(self, stream: StreamCursor,
               context: Context) -> Tuple[bool, Optional[Any]]:
        """Decode one reference.

        Returns ``(is_new, value)``: when ``is_new`` the caller reads
        the object's contents and then calls :meth:`register`;
        otherwise ``value`` is the previously registered object.
        """
        raise NotImplementedError

    def register(self, context: Context, value: Any) -> None:
        """Record the contents of the object just decoded as new."""
        raise NotImplementedError


class Coder:
    """Both directions of one reference scheme behind a single object.

    The codec driver holds exactly one ``Coder`` per object space and
    calls whichever direction its mode needs.  The two halves are
    built together from the same seed, so their state machines mirror
    by construction — the structural guarantee the wire format rests
    on (Sections 5 and 7 of the paper).
    """

    encoder: RefEncoder
    decoder: RefDecoder

    @property
    def needs_frequencies(self) -> bool:
        """Whether a counting pass must run before encoding."""
        raise NotImplementedError

    def set_frequencies(self, counts: Dict[Hashable, int]) -> None:
        """Feed the counting pass's per-``(kind, key)`` totals in."""
        raise NotImplementedError

    def encode(self, stream: StreamWriter, context: Context,
               key: Hashable) -> bool:
        raise NotImplementedError

    def decode(self, stream: StreamCursor,
               context: Context) -> Tuple[bool, Optional[Any]]:
        raise NotImplementedError

    def register(self, context: Context, value: Any) -> None:
        raise NotImplementedError

    def preload(self, values) -> None:
        """Seed both halves with a standard dictionary (MTF only;
        a no-op for schemes that derive ids from the archive)."""
        raise NotImplementedError


class PairCoder(Coder):
    """A :class:`Coder` over a matched encoder/decoder pair."""

    def __init__(self, encoder: RefEncoder, decoder: RefDecoder):
        self.encoder = encoder
        self.decoder = decoder

    @property
    def needs_frequencies(self) -> bool:
        return self.encoder.needs_frequencies

    def set_frequencies(self, counts: Dict[Hashable, int]) -> None:
        self.encoder.set_frequencies(counts)

    def encode(self, stream: StreamWriter, context: Context,
               key: Hashable) -> bool:
        return self.encoder.encode(stream, context, key)

    def decode(self, stream: StreamCursor,
               context: Context) -> Tuple[bool, Optional[Any]]:
        return self.decoder.decode(stream, context)

    def register(self, context: Context, value: Any) -> None:
        self.decoder.register(context, value)

    def preload(self, values) -> None:
        for half in (self.encoder, self.decoder):
            inner = getattr(half, "_coder", None)
            if inner is None:
                continue  # not an MTF half; preload is a no-op
            for value in values:
                if not inner.knows(value):
                    inner._register(value, value)
