"""Reference-coder interface shared by all Section 5 schemes.

A *reference coder* encodes "an object we may have seen before" into a
stream of small integers.  Encoding returns whether the object is new
(in which case the caller serializes its contents to other streams);
decoding mirrors the state machine exactly.

Contexts: every reference site supplies a ``(kind, stack_context)``
pair — e.g. ``("method.virtual", ("I", "I"))`` for a virtual call with
two ints on top of the approximate stack.  Each scheme decides how
much of the context it uses:

==========  ===================================================
scheme      pools
==========  ===================================================
simple      one global pool (2-byte fixed ids)
basic       one global pool (compact sequential ids)
freq        one pool per kind (frequency-ordered ids)
cache       freq + a 16-entry MTF cache per kind
mtf         one MTF queue per kind (per (kind, stack) with
            ``use_context``); optional transient handling
==========  ===================================================
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from ..coding.streams import StreamCursor, StreamWriter

Context = Tuple[str, Tuple[str, str]]


class RefEncoder:
    """Encoder half: one instance per object space (methods, fields,
    classes, ...)."""

    #: Whether the scheme needs a global frequency table before
    #: encoding starts (supplied via :meth:`set_frequencies`).
    needs_frequencies = False

    def set_frequencies(self, counts: Dict[Hashable, int]) -> None:
        """Provide the counting pass's results (two-pass schemes)."""

    def encode(self, stream: StreamWriter, context: Context,
               key: Hashable) -> bool:
        """Encode one reference; returns True when the object is new
        (caller must then serialize its contents)."""
        raise NotImplementedError


class RefDecoder:
    """Decoder half; must mirror the encoder's state transitions."""

    def decode(self, stream: StreamCursor,
               context: Context) -> Tuple[bool, Optional[Any]]:
        """Decode one reference.

        Returns ``(is_new, value)``: when ``is_new`` the caller reads
        the object's contents and then calls :meth:`register`;
        otherwise ``value`` is the previously registered object.
        """
        raise NotImplementedError

    def register(self, context: Context, value: Any) -> None:
        """Record the contents of the object just decoded as new."""
        raise NotImplementedError
