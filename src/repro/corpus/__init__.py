"""Synthetic benchmark corpus mirroring the paper's 19 suites."""

from .debug import add_debug_info, add_debug_info_all
from .generator import SuiteSpec, generate_sources
from .shapes import (
    SHAPE_CLASSES,
    SHAPE_NAMES,
    generate_shape,
    shape_spec,
    shape_specs,
)
from .suites import (
    SUITE_ORDER,
    SUITE_SPECS,
    generate_from_spec,
    generate_suite,
    suite_names,
)

__all__ = [
    "SHAPE_CLASSES",
    "SHAPE_NAMES",
    "SUITE_ORDER",
    "SUITE_SPECS",
    "SuiteSpec",
    "add_debug_info",
    "add_debug_info_all",
    "generate_from_spec",
    "generate_shape",
    "generate_sources",
    "generate_suite",
    "shape_spec",
    "shape_specs",
    "suite_names",
]
