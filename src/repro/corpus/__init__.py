"""Synthetic benchmark corpus mirroring the paper's 19 suites."""

from .debug import add_debug_info, add_debug_info_all
from .generator import SuiteSpec, generate_sources
from .suites import SUITE_ORDER, SUITE_SPECS, generate_suite, suite_names

__all__ = [
    "SUITE_ORDER",
    "SUITE_SPECS",
    "SuiteSpec",
    "add_debug_info",
    "add_debug_info_all",
    "generate_sources",
    "generate_suite",
    "suite_names",
]
