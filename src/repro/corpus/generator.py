"""Seeded synthesizer of mini-Java benchmark suites.

The paper's corpus (rt.jar, Swing, SPEC JVM98, ...) is proprietary and
unavailable offline, so we synthesize suites with the structural
statistics that drive the paper's results:

* many classes spread over a few packages (package names repeat),
* method and field names drawn from a small reused vocabulary,
* cross-class calls with a skewed (Zipf-like) callee distribution,
* string constants drawn from a shared phrase pool,
* integer constants skewed toward small values, with optional
  table-heavy classes (mpegaudio-style constant tables),
* inheritance, interfaces, overriding, exceptions and switches.

Everything is driven by a :class:`SuiteSpec` and a seed, so corpora
are fully deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .words import ATTRS, NOUNS, PACKAGE_ROOTS, PHRASES, VERBS


@dataclass
class SuiteSpec:
    """Knobs controlling one synthesized suite."""

    name: str
    seed: int
    packages: int = 2
    classes_per_package: int = 4
    methods_per_class: int = 5
    statements_per_method: int = 8
    #: Fraction of classes that are interfaces.
    interface_fraction: float = 0.12
    #: Fraction of (non-first) concrete classes that extend another.
    subclass_fraction: float = 0.3
    #: Fraction of concrete classes implementing an interface.
    implement_fraction: float = 0.35
    #: Bias toward extending the *most recently defined* class instead
    #: of a Zipf draw over all earlier ones — 0 keeps the default
    #: shallow forest, near 1 grows deep inheritance chains (the
    #: "inheritance-deep" corpus shape).
    inheritance_depth_bias: float = 0.0
    #: Fraction of classes given constant-table init methods
    #: (mpegaudio-style numeric payload).
    table_fraction: float = 0.0
    #: Entries per constant table.
    table_size: int = 64
    #: Weight of string-manipulating statements.
    stringiness: float = 1.0
    #: Weight of arithmetic statements.
    mathiness: float = 1.0
    #: Weight of reflection-flavored statements: fully-qualified class
    #: names as string constants (Class.forName-style metadata), which
    #: load the constant pool with many long, prefix-sharing strings.
    #: 0 (the default) emits none — and, like every knob above, leaves
    #: the default rng draw sequence untouched, so pre-existing suites
    #: are byte-identical to their pre-knob selves.
    reflectiveness: float = 0.0

    @property
    def class_count(self) -> int:
        return self.packages * self.classes_per_package


@dataclass
class _Field:
    name: str
    typ: str  # source type text
    is_static: bool = False


@dataclass
class _Method:
    name: str
    params: List[Tuple[str, str]]  # (type text, name)
    return_type: str
    is_static: bool = False


@dataclass
class _Class:
    package: str  # dotted
    name: str
    superclass: Optional[str] = None  # dotted qualified
    interfaces: List[str] = field(default_factory=list)
    is_interface: bool = False
    fields: List[_Field] = field(default_factory=list)
    methods: List[_Method] = field(default_factory=list)
    has_table: bool = False

    @property
    def qualified(self) -> str:
        return f"{self.package}.{self.name}"


_PRIMS = ["int", "long", "double", "boolean", "String"]


class Synthesizer:
    """Generates one suite of mini-Java source files."""

    def __init__(self, spec: SuiteSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.classes: List[_Class] = []
        self._names_used: Dict[str, int] = {}

    # -- skeleton ---------------------------------------------------------

    def _zipf_choice(self, items: List):
        """Choose with a 1/rank bias toward the front of the list."""
        if not items:
            raise ValueError("empty choice")
        n = len(items)
        weights = [1.0 / (i + 1) for i in range(n)]
        return self.rng.choices(items, weights=weights, k=1)[0]

    def _class_name(self) -> str:
        base = self.rng.choice(NOUNS)
        if self.rng.random() < 0.5:
            base = self.rng.choice(VERBS).capitalize() + base
        count = self._names_used.get(base, 0)
        self._names_used[base] = count + 1
        return base if count == 0 else f"{base}{count}"

    def build_skeletons(self) -> None:
        packages = []
        roots = list(PACKAGE_ROOTS)
        self.rng.shuffle(roots)
        for i in range(self.spec.packages):
            root = roots[i % len(roots)].replace("/", ".")
            suffix = "" if i < len(roots) else str(i // len(roots))
            packages.append(root + suffix)
        for package in packages:
            for _ in range(self.spec.classes_per_package):
                cls = _Class(package, self._class_name())
                cls.is_interface = (
                    self.rng.random() < self.spec.interface_fraction)
                self.classes.append(cls)
        concrete = [c for c in self.classes if not c.is_interface]
        interfaces = [c for c in self.classes if c.is_interface]
        # Interfaces: a couple of abstract methods each, reused names.
        for iface in interfaces:
            for _ in range(2):
                iface.methods.append(self._signature(allow_static=False))
        # Concrete classes: fields, inheritance, methods.
        for index, cls in enumerate(concrete):
            if index > 0 and self.rng.random() < self.spec.subclass_fraction:
                # The depth-bias test must short-circuit on the spec
                # value: drawing from the rng only when the knob is on
                # keeps default-knob suites byte-identical.
                if self.spec.inheritance_depth_bias > 0 and \
                        self.rng.random() < self.spec.inheritance_depth_bias:
                    parent = concrete[index - 1]
                else:
                    parent = self._zipf_choice(concrete[:index])
                cls.superclass = parent.qualified
            if interfaces and \
                    self.rng.random() < self.spec.implement_fraction:
                iface = self.rng.choice(interfaces)
                cls.interfaces.append(iface.qualified)
                cls.methods.extend(
                    _Method(m.name, list(m.params), m.return_type)
                    for m in iface.methods)
            field_count = self.rng.randint(2, 5)
            for _ in range(field_count):
                cls.fields.append(_Field(
                    self._field_name(cls),
                    self.rng.choice(_PRIMS + ["int[]"]),
                    is_static=self.rng.random() < 0.25))
            if self.rng.random() < self.spec.table_fraction:
                cls.has_table = True
                cls.fields.append(_Field("table", "int[]", is_static=True))
                cls.fields.append(_Field("factors", "double[]",
                                         is_static=True))
            while len(cls.methods) < self.spec.methods_per_class:
                cls.methods.append(self._signature(
                    allow_static=self.rng.random() < 0.3))

    def _field_name(self, cls: _Class) -> str:
        existing = {f.name for f in cls.fields}
        for _ in range(20):
            name = self.rng.choice(ATTRS)
            if name not in existing:
                return name
        return f"extra{len(cls.fields)}"

    def _signature(self, allow_static: bool) -> _Method:
        verb = self._zipf_choice(VERBS)
        noun = self._zipf_choice(ATTRS)
        name = verb + noun.capitalize()
        param_count = self.rng.randint(0, 3)
        params = [
            (self.rng.choice(_PRIMS), f"p{i}") for i in range(param_count)]
        return_type = self.rng.choice(_PRIMS + ["void", "void", "void"])
        return _Method(name, params, return_type, is_static=allow_static)

    # -- bodies ----------------------------------------------------------

    def render(self) -> List[str]:
        """Render every class to source text."""
        self.build_skeletons()
        # De-duplicate method signatures within each class (reused
        # vocabulary can collide).
        for cls in self.classes:
            seen = set()
            unique = []
            for method in cls.methods:
                key = (method.name, tuple(t for t, _ in method.params))
                if key in seen:
                    continue
                seen.add(key)
                unique.append(method)
            cls.methods = unique
        return [self._render_class(cls) for cls in self.classes]

    def _render_class(self, cls: _Class) -> str:
        lines: List[str] = [f"package {cls.package};", ""]
        head = "public interface" if cls.is_interface else "public class"
        decl = f"{head} {cls.name}"
        if cls.superclass:
            decl += f" extends {cls.superclass}"
        if cls.interfaces:
            decl += " implements " + ", ".join(cls.interfaces)
        lines.append(decl + " {")
        if cls.is_interface:
            for method in cls.methods:
                params = ", ".join(f"{t} {n}" for t, n in method.params)
                lines.append(f"    {method.return_type} "
                             f"{method.name}({params});")
            lines.append("}")
            return "\n".join(lines)
        for field_decl in cls.fields:
            modifier = "static " if field_decl.is_static else ""
            init = ""
            if field_decl.typ == "String" and self.rng.random() < 0.5 and \
                    field_decl.is_static:
                modifier = "static final "
                init = f" = \"{self.rng.choice(PHRASES)}\""
            elif field_decl.typ == "int" and field_decl.is_static and \
                    self.rng.random() < 0.4:
                modifier = "static final "
                init = f" = {self._int_constant()}"
            lines.append(f"    {modifier}{field_decl.typ} "
                         f"{field_decl.name}{init};")
        lines.append("")
        lines.extend(self._render_constructor(cls))
        if cls.has_table:
            lines.extend(self._render_table_init(cls))
        for method in cls.methods:
            lines.extend(self._render_method(cls, method))
        lines.append("}")
        return "\n".join(lines)

    def _render_constructor(self, cls: _Class) -> List[str]:
        settable = [f for f in cls.fields
                    if not f.is_static and f.typ in ("int", "String",
                                                     "double", "long")]
        params = ", ".join(f"{f.typ} {f.name}" for f in settable[:2])
        lines = [f"    public {cls.name}({params}) {{"]
        for f in settable[:2]:
            lines.append(f"        this.{f.name} = {f.name};")
        for f in cls.fields:
            if f.is_static or f in settable[:2]:
                continue
            lines.append(f"        this.{f.name} = "
                         f"{self._default_value(f.typ)};")
        lines.append("    }")
        lines.append("")
        return lines

    def _default_value(self, typ: str) -> str:
        if typ == "int":
            return str(self._int_constant())
        if typ == "long":
            return f"{self.rng.randint(0, 10000)}L"
        if typ == "double":
            return f"{round(self.rng.uniform(0, 10), 3)}"
        if typ == "boolean":
            return self.rng.choice(["true", "false"])
        if typ == "String":
            return f"\"{self.rng.choice(PHRASES)}\""
        if typ.endswith("[]"):
            return f"new {typ[:-2]}[{self.rng.randint(4, 32)}]"
        return "null"

    def _int_constant(self) -> int:
        roll = self.rng.random()
        if roll < 0.55:
            return self.rng.randint(0, 9)
        if roll < 0.8:
            return self.rng.randint(10, 127)
        if roll < 0.95:
            return self.rng.randint(128, 4096)
        return self.rng.randint(4097, 1 << 20)

    def _render_table_init(self, cls: _Class) -> List[str]:
        size = self.spec.table_size
        lines = [f"    static void initTables() {{",
                 f"        table = new int[{size}];",
                 f"        factors = new double[{size}];"]
        for i in range(size):
            lines.append(f"        table[{i}] = "
                         f"{self.rng.randint(-(1 << 15), 1 << 15)};")
        for i in range(0, size, 2):
            lines.append(f"        factors[{i}] = "
                         f"{round(self.rng.uniform(-4, 4), 6)};")
        lines.append("    }")
        lines.append("")
        return lines

    def _render_method(self, cls: _Class, method: _Method) -> List[str]:
        modifier = "static " if method.is_static else ""
        params = ", ".join(f"{t} {n}" for t, n in method.params)
        lines = [f"    public {modifier}{method.return_type} "
                 f"{method.name}({params}) {{"]
        body = _BodyGenerator(self, cls, method)
        for statement in body.generate():
            lines.append("        " + statement)
        lines.append("    }")
        lines.append("")
        return lines


class _BodyGenerator:
    """Generates a well-typed method body as source lines."""

    def __init__(self, synth: Synthesizer, cls: _Class, method: _Method):
        self.synth = synth
        self.rng = synth.rng
        self.cls = cls
        self.method = method
        #: name -> source type of in-scope int-like locals etc.
        self.locals: Dict[str, str] = dict(
            (n, t) for t, n in method.params)
        self.counter = 0

    # -- helpers -----------------------------------------------------------

    def _fresh(self, typ: str) -> str:
        name = f"v{self.counter}"
        self.counter += 1
        self.locals[name] = typ
        return name

    def _vars_of(self, typ: str, include_fields: bool = True) -> List[str]:
        names = [n for n, t in self.locals.items() if t == typ]
        if include_fields:
            for f in self.cls.fields:
                if f.typ == typ and \
                        (not self.method.is_static or f.is_static):
                    names.append(f.name)
        return names

    def _int_expr(self, depth: int = 0) -> str:
        options = self._vars_of("int")
        roll = self.rng.random()
        if depth > 2 or (roll < 0.35 or not options):
            if options and roll < 0.6:
                return self.rng.choice(options)
            return str(self.synth._int_constant())
        if roll < 0.7:
            op = self.rng.choice(["+", "-", "*", "%", "/"])
            left = self._int_expr(depth + 1)
            right = self._int_expr(depth + 1)
            if op in ("%", "/"):
                right = str(self.rng.randint(1, 97))
            return f"({left} {op} {right})"
        if roll < 0.8:
            call = self._call_returning("int")
            if call:
                return call
        if roll < 0.9 and options:
            return f"Math.max({self.rng.choice(options)}, " \
                   f"{self._int_expr(depth + 1)})"
        return self.rng.choice(options) if options else \
            str(self.synth._int_constant())

    def _long_expr(self) -> str:
        options = self._vars_of("long")
        if options and self.rng.random() < 0.6:
            base = self.rng.choice(options)
            if self.rng.random() < 0.5:
                return f"({base} + {self.rng.randint(0, 999)}L)"
            return base
        return f"{self.rng.randint(0, 100000)}L"

    def _double_expr(self, depth: int = 0) -> str:
        options = self._vars_of("double")
        roll = self.rng.random()
        if depth > 2 or roll < 0.3:
            if options and roll < 0.5:
                return self.rng.choice(options)
            return str(round(self.rng.uniform(0, 100), 4))
        if roll < 0.55 and options:
            op = self.rng.choice(["+", "-", "*"])
            return f"({self.rng.choice(options)} {op} " \
                   f"{self._double_expr(depth + 1)})"
        if roll < 0.75:
            fn = self.rng.choice(["Math.sqrt", "Math.abs", "Math.floor",
                                  "Math.sin", "Math.cos"])
            return f"{fn}({self._double_expr(depth + 1)})"
        call = self._call_returning("double")
        if call:
            return call
        return str(round(self.rng.uniform(0, 100), 4))

    def _string_expr(self, depth: int = 0) -> str:
        options = self._vars_of("String")
        roll = self.rng.random()
        if depth > 1 or roll < 0.4:
            if options and roll < 0.55:
                return self.rng.choice(options)
            return f"\"{self.rng.choice(PHRASES)}\""
        if roll < 0.7:
            return f"({self._string_expr(depth + 1)} + " \
                   f"{self._int_expr(depth + 1)})"
        if options:
            base = self.rng.choice(options)
            return self.rng.choice([
                f"{base}.trim()", f"{base}.toUpperCase()",
                f"{base}.substring(0, Math.min(3, {base}.length()))",
            ])
        return f"String.valueOf({self._int_expr(depth + 1)})"

    def _bool_expr(self, depth: int = 0) -> str:
        roll = self.rng.random()
        if depth > 1 or roll < 0.6:
            comparison = self.rng.choice(["<", ">", "<=", ">=", "==", "!="])
            return f"({self._int_expr(depth + 1)} {comparison} " \
                   f"{self._int_expr(depth + 1)})"
        op = self.rng.choice(["&&", "||"])
        return f"({self._bool_expr(depth + 1)} {op} " \
               f"{self._bool_expr(depth + 1)})"

    def _expr_of(self, typ: str, depth: int = 0) -> str:
        if typ == "int":
            return self._int_expr(depth)
        if typ == "long":
            return self._long_expr()
        if typ == "double":
            return self._double_expr(depth)
        if typ == "boolean":
            return self._bool_expr(depth)
        if typ == "String":
            return self._string_expr(depth)
        if typ.endswith("[]"):
            return f"new {typ[:-2]}[{self.rng.randint(4, 32)}]"
        return "null"

    def _call_returning(self, typ: str) -> Optional[str]:
        """A static cross-class call returning ``typ``, if one exists."""
        candidates: List[Tuple[_Class, _Method]] = []
        for other in self.synth.classes:
            if other.is_interface:
                continue
            for method in other.methods:
                if method.is_static and method.return_type == typ:
                    candidates.append((other, method))
        if not candidates:
            return None
        owner, method = self.synth._zipf_choice(candidates)
        args = ", ".join(self._expr_of(t, 2) for t, _ in method.params)
        return f"{owner.qualified}.{method.name}({args})"

    # -- statements ---------------------------------------------------------

    def generate(self) -> List[str]:
        statements: List[str] = []
        count = max(2, int(self.rng.gauss(
            self.synth.spec.statements_per_method,
            self.synth.spec.statements_per_method / 3)))
        weights = self._statement_weights()
        kinds, kind_weights = zip(*weights)
        for _ in range(count):
            kind = self.rng.choices(kinds, weights=kind_weights, k=1)[0]
            statements.extend(getattr(self, f"_stmt_{kind}")())
        statements.extend(self._final_return())
        return statements

    def _statement_weights(self) -> List[Tuple[str, float]]:
        spec = self.synth.spec
        weights = [
            ("decl", 2.0),
            ("assign", 1.5),
            ("arith", 1.2 * spec.mathiness),
            ("stringop", 0.9 * spec.stringiness),
            ("iff", 1.0),
            ("loop", 0.8),
            ("call", 1.4),
            ("print", 0.5 * spec.stringiness),
            ("switchy", 0.3),
            ("tryy", 0.25),
            ("array", 0.6),
        ]
        # Appended only when the knob is on, so default-knob suites
        # present random.choices with the exact historical weight list.
        if spec.reflectiveness > 0:
            weights.append(("reflecty", 1.0 * spec.reflectiveness))
        return weights

    def _stmt_decl(self) -> List[str]:
        typ = self.rng.choice(_PRIMS)
        value = self._expr_of(typ)
        name = self._fresh(typ)
        return [f"{typ} {name} = {value};"]

    def _stmt_assign(self) -> List[str]:
        typ = self.rng.choice(_PRIMS)
        targets = self._vars_of(typ)
        if not targets:
            return self._stmt_decl()
        return [f"{self.rng.choice(targets)} = {self._expr_of(typ)};"]

    def _stmt_arith(self) -> List[str]:
        targets = self._vars_of("int")
        if not targets:
            return self._stmt_decl()
        target = self.rng.choice(targets)
        op = self.rng.choice(["+", "-", "*"])
        return [f"{target} = {target} {op} {self._int_expr(1)};"]

    def _stmt_stringop(self) -> List[str]:
        targets = self._vars_of("String")
        if not targets:
            value = self._string_expr()
            name = self._fresh("String")
            return [f"String {name} = {value};"]
        return [f"{self.rng.choice(targets)} = {self._string_expr()};"]

    def _stmt_iff(self) -> List[str]:
        lines = [f"if {self._bool_expr()} {{"]
        lines.append(f"    {self._simple_statement()}")
        if self.rng.random() < 0.5:
            lines.append("} else {")
            lines.append(f"    {self._simple_statement()}")
        lines.append("}")
        return lines

    def _simple_statement(self) -> str:
        """A one-line statement safe inside a nested block (it must not
        declare a local, which would go out of scope)."""
        typ = self.rng.choice(_PRIMS)
        targets = self._vars_of(typ)
        if targets:
            return f"{self.rng.choice(targets)} = {self._expr_of(typ)};"
        return f"System.out.println({self._string_expr(1)});"

    def _stmt_loop(self) -> List[str]:
        index = f"i{self.counter}"
        self.counter += 1
        bound = self.rng.choice(
            [str(self.rng.randint(2, 64))] + self._vars_of("int"))
        self.locals[index] = "int"
        lines = [f"for (int {index} = 0; {index} < {bound}; "
                 f"{index} = {index} + 1) {{"]
        lines.append(f"    {self._simple_statement()}")
        lines.append("}")
        del self.locals[index]
        return lines

    def _stmt_call(self) -> List[str]:
        typ = self.rng.choice(["int", "double", "String"])
        call = self._call_returning(typ)
        if call is None:
            return self._stmt_decl()
        if self.rng.random() < 0.5:
            name = self._fresh(typ)
            return [f"{typ} {name} = {call};"]
        return [f"{call};"]

    def _stmt_print(self) -> List[str]:
        return [f"System.out.println({self._string_expr()});"]

    def _stmt_switchy(self) -> List[str]:
        selector = self._int_expr(1)
        dense = self.rng.random() < 0.6
        if dense:
            values = list(range(self.rng.randint(2, 5)))
        else:
            values = sorted(self.rng.sample(range(0, 1000),
                                            self.rng.randint(2, 4)))
        lines = [f"switch ({selector}) {{"]
        for value in values:
            lines.append(f"    case {value}:")
            lines.append(f"        {self._simple_statement()}")
            lines.append("        break;")
        lines.append("    default:")
        lines.append(f"        {self._simple_statement()}")
        lines.append("}")
        return lines

    def _stmt_tryy(self) -> List[str]:
        exc = self.rng.choice(["RuntimeException",
                               "IllegalArgumentException",
                               "ArithmeticException"])
        return [
            "try {",
            f"    {self._simple_statement()}",
            f"}} catch ({exc} e) {{",
            f"    System.out.println(e.getMessage());",
            "}",
        ]

    def _stmt_reflecty(self) -> List[str]:
        """A reflection-flavored statement: a fully-qualified class
        name as a string constant (the shape Class.forName tables and
        serialization metadata give real constant pools)."""
        target = self.synth._zipf_choice(self.synth.classes)
        constant = f"\"{target.qualified}\""
        roll = self.rng.random()
        if roll < 0.5:
            name = self._fresh("String")
            return [f"String {name} = {constant};"]
        strings = self._vars_of("String")
        if strings and roll < 0.8:
            return [f"{self.rng.choice(strings)} = {constant};"]
        return [f"System.out.println({constant});"]

    def _stmt_array(self) -> List[str]:
        arrays = self._vars_of("int[]")
        if not arrays:
            name = self._fresh("int[]")
            return [f"int[] {name} = new int[{self.rng.randint(4, 32)}];"]
        array = self.rng.choice(arrays)
        index = f"({self._int_expr(2)} % {array}.length + "\
                f"{array}.length) % {array}.length"
        if self.rng.random() < 0.3:
            index = str(self.rng.randint(0, 3))
            return [f"if ({array}.length > {index}) {{ "
                    f"{array}[{index}] = {self._int_expr(1)}; }}"]
        return [f"{array}[{index}] = {self._int_expr(1)};"]

    def _final_return(self) -> List[str]:
        ret = self.method.return_type
        if ret == "void":
            return []
        return [f"return {self._expr_of(ret)};"]


def generate_sources(spec: SuiteSpec) -> List[str]:
    """Generate the source files of one suite."""
    return Synthesizer(spec).render()
