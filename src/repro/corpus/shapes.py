"""Shaped large-corpus generators for scheme-selection experiments.

The named suites (:mod:`repro.corpus.suites`) mirror the paper's
Table 1 — many small-to-mid archives with *mixed* character.  The
shapes here are the opposite experiment: archives of 1000+ classes
each dominated by ONE structural trait, chosen to pull the Table-3
reference schemes apart:

* ``inherit_deep`` — long ``extends`` chains (depth-biased parents):
  class/package references concentrate on the chain neighborhood, the
  locality MTF exploits;
* ``interface_heavy`` — many interfaces, nearly every class
  implements one: method-name references repeat across unrelated
  classes, the global skew the frequency schemes rank well;
* ``string_heavy`` — string-manipulating bodies and phrase-pool
  constants dominate: the string space dwarfs the others;
* ``const_heavy`` — mpegaudio-style numeric tables plus
  reflection-flavored qualified-class-name constants: big constant
  pools, weak reference locality.

Every shape is an ordinary :class:`~repro.corpus.generator.SuiteSpec`
(same seeded synthesizer, same caching), parameterized by a target
class count, so tests can run the identical shapes at ~100 classes
while the benchmark runs them at full scale.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ..classfile.classfile import ClassFile
from .generator import SuiteSpec
from .suites import generate_from_spec

#: Default full-scale class count ("1000+-class archives").
SHAPE_CLASSES = 1100

#: Shape name -> spec overrides (layout + character knobs).  Seeds are
#: spaced so no shape shares a PRNG stream with a Table-1 suite.
_SHAPES: Dict[str, Dict] = {
    "inherit_deep": dict(
        seed=7101, classes_per_package=16, methods_per_class=5,
        statements_per_method=6, interface_fraction=0.04,
        subclass_fraction=0.85, inheritance_depth_bias=0.85),
    "interface_heavy": dict(
        seed=7202, classes_per_package=12, methods_per_class=6,
        statements_per_method=6, interface_fraction=0.4,
        implement_fraction=0.95),
    "string_heavy": dict(
        seed=7303, classes_per_package=12, methods_per_class=6,
        statements_per_method=7, stringiness=2.5, mathiness=0.3),
    "const_heavy": dict(
        seed=7404, classes_per_package=10, methods_per_class=5,
        statements_per_method=7, mathiness=2.2, stringiness=0.25,
        table_fraction=0.45, table_size=96, reflectiveness=1.4),
}

SHAPE_NAMES: List[str] = list(_SHAPES)


def shape_spec(shape: str, classes: int = SHAPE_CLASSES,
               seed: int = None) -> SuiteSpec:
    """The :class:`SuiteSpec` for one shape at a target class count.

    The package grid is sized to the smallest multiple of the shape's
    package width that reaches ``classes`` (so the result has *at
    least* that many classes).  ``seed`` overrides the shape's default
    seed — distinct seeds give independent corpora of the same shape,
    which the determinism and fuzz tests lean on.
    """
    if shape not in _SHAPES:
        raise KeyError(f"unknown shape {shape!r}; "
                       f"known: {', '.join(_SHAPES)}")
    knobs = dict(_SHAPES[shape])
    if seed is not None:
        knobs["seed"] = seed
    per_package = knobs.pop("classes_per_package")
    packages = max(1, -(-classes // per_package))
    return SuiteSpec(name=f"{shape}-{packages * per_package}",
                     packages=packages,
                     classes_per_package=per_package, **knobs)


def shape_specs(classes: int = SHAPE_CLASSES) -> Dict[str, SuiteSpec]:
    """All shapes at one target class count, name -> spec."""
    return {shape: shape_spec(shape, classes) for shape in SHAPE_NAMES}


def generate_shape(shape: str, classes: int = SHAPE_CLASSES,
                   seed: int = None,
                   fresh: bool = False) -> Dict[str, ClassFile]:
    """Generate and compile one shape (cached like the named suites)."""
    return generate_from_spec(shape_spec(shape, classes, seed),
                              fresh=fresh)


def describe(spec: SuiteSpec) -> Dict[str, object]:
    """Spec facts for reports (committed benchmark JSON)."""
    return {"name": spec.name, "classes": spec.class_count,
            **{field.name: getattr(spec, field.name)
               for field in dataclasses.fields(spec)
               if field.name not in ("name",)}}
