"""The 19 benchmark suites of the paper, as synthetic analogs.

Each spec mirrors the relative size and character of one benchmark
from Table 1 (scaled down ~8x so the full matrix runs in minutes):

* ``rt`` is by far the largest, library-shaped (many packages, wide
  vocabulary);
* ``swingall``/``visaj``/``tools`` are mid-size GUI/tool libraries;
* ``mpegaudio`` is numeric-table heavy (the paper highlights its
  extreme opcode compressibility and 37% integer share);
* ``Hanoi`` variants are tiny applets;
* ``compress``/``db`` are small single-purpose programs;
* ``javac``/``jess``/``jack`` are parser/compiler-shaped (large
  switches, string tables).

Compiled suites are cached in-process: generating + compiling ``rt``
takes a few seconds and every benchmark table reuses it.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Dict, List, Tuple

from ..classfile.classfile import ClassFile
from ..minijava import compile_sources
from .generator import SuiteSpec, generate_sources

SUITE_SPECS: Dict[str, SuiteSpec] = {
    spec.name: spec for spec in [
        SuiteSpec("rt", seed=101, packages=8, classes_per_package=14,
                  methods_per_class=7, statements_per_method=7),
        SuiteSpec("swingall", seed=102, packages=6, classes_per_package=10,
                  methods_per_class=7, statements_per_method=7,
                  stringiness=1.2),
        SuiteSpec("tools", seed=103, packages=4, classes_per_package=8,
                  methods_per_class=6, statements_per_method=7),
        SuiteSpec("icebrowserbean", seed=104, packages=2,
                  classes_per_package=5, methods_per_class=5,
                  statements_per_method=6, stringiness=1.4),
        SuiteSpec("jmark20", seed=105, packages=2, classes_per_package=6,
                  methods_per_class=6, statements_per_method=8,
                  mathiness=1.5),
        SuiteSpec("visaj", seed=106, packages=5, classes_per_package=10,
                  methods_per_class=6, statements_per_method=7),
        SuiteSpec("ImageEditor", seed=107, packages=3,
                  classes_per_package=7, methods_per_class=6,
                  statements_per_method=7, mathiness=1.3),
        SuiteSpec("Hanoi", seed=108, packages=1, classes_per_package=4,
                  methods_per_class=4, statements_per_method=5),
        SuiteSpec("Hanoi_big", seed=109, packages=1, classes_per_package=3,
                  methods_per_class=4, statements_per_method=5),
        SuiteSpec("Hanoi_jax", seed=110, packages=1, classes_per_package=2,
                  methods_per_class=4, statements_per_method=5,
                  stringiness=0.6),
        SuiteSpec("javafig", seed=111, packages=3, classes_per_package=8,
                  methods_per_class=6, statements_per_method=6,
                  stringiness=1.2),
        SuiteSpec("javafig_dashO", seed=112, packages=3,
                  classes_per_package=8, methods_per_class=6,
                  statements_per_method=6, stringiness=0.8),
        SuiteSpec("compress", seed=201, packages=1, classes_per_package=3,
                  methods_per_class=5, statements_per_method=8,
                  mathiness=1.8, stringiness=0.4),
        SuiteSpec("jess", seed=202, packages=2, classes_per_package=9,
                  methods_per_class=6, statements_per_method=7,
                  stringiness=1.3),
        SuiteSpec("raytrace", seed=205, packages=1, classes_per_package=6,
                  methods_per_class=6, statements_per_method=8,
                  mathiness=1.8, stringiness=0.5),
        SuiteSpec("db", seed=209, packages=1, classes_per_package=2,
                  methods_per_class=5, statements_per_method=7,
                  stringiness=1.2),
        SuiteSpec("javac", seed=213, packages=3, classes_per_package=9,
                  methods_per_class=7, statements_per_method=8,
                  stringiness=1.1),
        SuiteSpec("mpegaudio", seed=222, packages=1, classes_per_package=5,
                  methods_per_class=5, statements_per_method=8,
                  mathiness=2.0, stringiness=0.2, table_fraction=0.6,
                  table_size=96),
        SuiteSpec("jack", seed=228, packages=2, classes_per_package=6,
                  methods_per_class=6, statements_per_method=7,
                  stringiness=1.2),
    ]
}

#: Suites ordered as in the paper's Table 1.
SUITE_ORDER: List[str] = list(SUITE_SPECS)

#: Compiled-suite cache, keyed by the *full spec contents* — not the
#: suite name.  Name-only keying served stale results whenever a spec
#: changed under a cached name (tests overriding ``SUITE_SPECS``
#: entries, shaped variants reusing a name): a ``-j4`` batch whose
#: workers saw the fresh spec then disagreed byte-for-byte with a
#: ``-j1`` run served from the stale in-process cache.
_CACHE: Dict[Tuple, Dict[str, ClassFile]] = {}


def _spec_key(spec: SuiteSpec) -> Tuple:
    return dataclasses.astuple(spec)


def generate_from_spec(spec: SuiteSpec,
                       fresh: bool = False) -> Dict[str, ClassFile]:
    """Generate and compile one spec; results are cached per process.

    Returns a map from internal class name to a deep-copied
    :class:`ClassFile` (callers may mutate freely).  Class files are
    "as distributed": they carry synthetic debug attributes, which the
    Section 2 preprocessing (``strip_classes``) removes — reproducing
    the paper's ``jar`` vs ``sjar`` gap.
    """
    key = _spec_key(spec)
    if fresh or key not in _CACHE:
        from .debug import add_debug_info_all

        sources = generate_sources(spec)
        _CACHE[key] = add_debug_info_all(compile_sources(sources))
    return {name_: copy.deepcopy(classfile)
            for name_, classfile in _CACHE[key].items()}


def generate_suite(name: str, fresh: bool = False) -> Dict[str, ClassFile]:
    """Generate and compile one named suite (see
    :func:`generate_from_spec` for caching and the returned shape)."""
    if name not in SUITE_SPECS:
        raise KeyError(f"unknown suite {name!r}; "
                       f"known: {', '.join(SUITE_SPECS)}")
    return generate_from_spec(SUITE_SPECS[name], fresh=fresh)


def suite_names(small_only: bool = False) -> List[str]:
    """All suite names, optionally only the quick ones."""
    if not small_only:
        return list(SUITE_ORDER)
    return [name for name in SUITE_ORDER
            if SUITE_SPECS[name].class_count <= 20]


def clear_cache() -> None:
    _CACHE.clear()
