"""Word lists used by the corpus synthesizer.

The identifiers and string phrases below drive the statistical shape
of the synthesized programs: heavy reuse of a small vocabulary of
method-name verbs and nouns (as in real code), shared package-name
roots, and a phrase pool for string constants that repeats across
classes — the redundancies the paper's techniques exploit.
"""

NOUNS = [
    "Buffer", "Widget", "Panel", "Stream", "Parser", "Token", "Node",
    "Tree", "Graph", "Table", "Index", "Cache", "Store", "Record",
    "Field", "Value", "Entry", "Event", "Handler", "Manager", "Engine",
    "Filter", "Layout", "Model", "View", "Frame", "Image", "Shape",
    "Color", "Font", "Sound", "Codec", "Packet", "Socket", "Channel",
    "Worker", "Task", "Queue", "Stack", "Heap", "Pool", "Context",
    "Config", "Option", "Result", "Status", "Error", "Report", "Logger",
]

VERBS = [
    "get", "set", "compute", "update", "process", "render", "parse",
    "read", "write", "load", "store", "init", "reset", "clear", "add",
    "remove", "find", "check", "apply", "build", "create", "make",
    "run", "start", "stop", "flush", "scan", "emit", "encode", "decode",
    "merge", "split", "sort", "count", "sum", "mix", "pack", "unpack",
]

ATTRS = [
    "size", "count", "total", "index", "offset", "span", "width",
    "height", "depth", "level", "state", "mode", "flags", "weight",
    "score", "rate", "limit", "delta", "scale", "bias", "seed",
    "cursor", "capacity", "version", "id", "key", "name", "label",
]

PACKAGE_ROOTS = [
    "com/acme", "org/widgets", "net/tools", "com/acme/util",
    "org/widgets/core", "net/tools/io", "com/acme/render",
    "org/widgets/event", "edu/lab/math", "edu/lab/data",
]

PHRASES = [
    "error: invalid argument",
    "warning: deprecated call",
    "unexpected end of input",
    "index out of range",
    "operation not supported",
    "initialization complete",
    "processing element ",
    "result = ",
    "total count: ",
    "cache miss for key ",
    "loading configuration from ",
    "connection refused",
    "timeout while waiting",
    "parse error at line ",
    "unknown token ",
    "file not found: ",
    "writing output to ",
    "done.",
    "starting up",
    "shutting down",
    "retry attempt ",
    "checksum mismatch",
    "buffer overflow detected",
    "invalid state transition",
    "missing required field ",
    "duplicate entry ",
    "version mismatch: expected ",
    "permission denied",
    "illegal character in name",
    "queue is empty",
    "stack underflow",
    "value must be positive",
]
