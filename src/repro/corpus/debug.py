"""Synthetic debug information (for the Table 1 ``jar`` vs ``sjar``
distinction).

The paper's "class files as distributed" often still carry
``SourceFile``, ``LineNumberTable`` and ``LocalVariableTable``
attributes; the Section 2 preprocessing strips them for ~20% savings.
Our compiler emits stripped class files, so this module *adds*
plausible debug attributes, modeling the as-distributed state.
"""

from __future__ import annotations

from typing import Dict

from ..classfile.attributes import (
    LineNumberEntry,
    LineNumberTableAttribute,
    LocalVariableEntry,
    LocalVariableTableAttribute,
    SourceFileAttribute,
)
from ..classfile.bytecode import disassemble
from ..classfile.classfile import ClassFile


def add_debug_info(classfile: ClassFile) -> ClassFile:
    """Attach SourceFile / LineNumberTable / LocalVariableTable
    attributes, in place; returns the class file."""
    pool = classfile.pool
    simple = classfile.name.rsplit("/", 1)[-1]
    classfile.attributes.append(SourceFileAttribute(
        pool.utf8(f"{simple}.java")))
    line = 10
    for method in classfile.methods:
        code = method.code()
        if code is None:
            continue
        instructions = disassemble(code.code)
        entries = []
        for index, instruction in enumerate(instructions):
            if index % 3 == 0:
                entries.append(LineNumberEntry(instruction.offset, line))
                line += 1
        code.attributes.append(LineNumberTableAttribute(entries))
        local_entries = []
        for slot in range(min(code.max_locals, 8)):
            local_entries.append(LocalVariableEntry(
                start_pc=0,
                length=len(code.code),
                name_index=pool.utf8(f"local{slot}"),
                descriptor_index=pool.utf8("I"),
                index=slot,
            ))
        code.attributes.append(LocalVariableTableAttribute(local_entries))
    return classfile


def add_debug_info_all(classfiles: Dict[str, ClassFile]
                       ) -> Dict[str, ClassFile]:
    """Apply :func:`add_debug_info` to a whole suite, in place."""
    for classfile in classfiles.values():
        add_debug_info(classfile)
    return classfiles
