"""Canonical Huffman coding.

Used by the Jazz baseline (:mod:`repro.baselines.jazz`), which — per
[BHV98] as summarized in Section 13.1 of the paper — encodes indices
for each kind of constant-pool entry with a fixed Huffman code that
does not adapt to locality of reference.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass
class _Node:
    weight: int
    order: int
    symbol: int = -1
    left: "_Node" = None
    right: "_Node" = None

    def __lt__(self, other: "_Node") -> bool:
        return (self.weight, self.order) < (other.weight, other.order)


def code_lengths(frequencies: Dict[int, int]) -> Dict[int, int]:
    """Compute Huffman code lengths for a symbol->frequency map.

    Deterministic: ties are broken by insertion order of the heap, which
    we seed in sorted-symbol order.
    """
    symbols = sorted(frequencies)
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0]: 1}
    heap: List[_Node] = []
    order = 0
    for sym in symbols:
        heap.append(_Node(frequencies[sym], order, sym))
        order += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        a = heapq.heappop(heap)
        b = heapq.heappop(heap)
        heapq.heappush(heap, _Node(a.weight + b.weight, order, -1, a, b))
        order += 1
    lengths: Dict[int, int] = {}

    stack = [(heap[0], 0)]
    while stack:
        node, depth = stack.pop()
        if node.symbol >= 0:
            lengths[node.symbol] = max(depth, 1)
        else:
            stack.append((node.left, depth + 1))
            stack.append((node.right, depth + 1))
    return lengths


def canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codes: symbol -> (code, length)."""
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for symbol, length in ordered:
        code <<= length - prev_len
        codes[symbol] = (code, length)
        code += 1
        prev_len = length
    return codes


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self):
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, code: int, length: int) -> None:
        self._acc = (self._acc << length) | code
        self._nbits += length
        while self._nbits >= 8:
            self._nbits -= 8
            self._out.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def getvalue(self) -> bytes:
        if self._nbits:
            return bytes(self._out) + bytes(
                [(self._acc << (8 - self._nbits)) & 0xFF])
        return bytes(self._out)


class BitReader:
    """MSB-first bit reader."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read_bit(self) -> int:
        if self._nbits == 0:
            if self._pos >= len(self._data):
                raise ValueError("bitstream exhausted")
            self._acc = self._data[self._pos]
            self._pos += 1
            self._nbits = 8
        self._nbits -= 1
        return (self._acc >> self._nbits) & 1


class HuffmanCoder:
    """A static canonical-Huffman coder built from training frequencies."""

    def __init__(self, frequencies: Dict[int, int]):
        self.lengths = code_lengths(frequencies)
        self._rebuild()

    @classmethod
    def from_lengths(cls, lengths: Dict[int, int]) -> "HuffmanCoder":
        """Rebuild a coder from transmitted code lengths (the canonical
        code is fully determined by them)."""
        coder = cls.__new__(cls)
        coder.lengths = dict(lengths)
        coder._rebuild()
        return coder

    def _rebuild(self) -> None:
        self.codes = canonical_codes(self.lengths)
        # Decode table: (length, code) -> symbol.
        self._decode = {
            (length, code): symbol
            for symbol, (code, length) in self.codes.items()
        }
        self.max_length = max(self.lengths.values(), default=0)

    def encode(self, symbols: Sequence[int]) -> bytes:
        writer = BitWriter()
        for symbol in symbols:
            try:
                code, length = self.codes[symbol]
            except KeyError:
                raise ValueError(f"symbol {symbol} not in code") from None
            writer.write(code, length)
        return writer.getvalue()

    def decode(self, data: bytes, count: int) -> List[int]:
        reader = BitReader(data)
        out: List[int] = []
        for _ in range(count):
            code = 0
            length = 0
            while True:
                code = (code << 1) | reader.read_bit()
                length += 1
                symbol = self._decode.get((length, code))
                if symbol is not None:
                    out.append(symbol)
                    break
                if length > self.max_length:
                    raise ValueError("invalid Huffman bitstream")
        return out

    def encoded_bit_length(self, symbols: Iterable[int]) -> int:
        """Exact bit cost of encoding ``symbols`` (for size estimates)."""
        return sum(self.lengths[s] for s in symbols)
