"""Integer codecs from Section 6 of the paper.

Three codecs are provided:

* **Unsigned varint** — low seven bits per byte, high bit set when more
  bytes follow.  Used whenever the range is unknown but skewed toward
  small values.
* **Zigzag** — signed values are mapped to unsigned ones by moving the
  sign into the least-significant bit (``x >= 0 ? 2x : -2x - 1``), so
  small-magnitude negatives stay short.  The paper's example mapping
  ``{-3,-2,-1,0,1,2,3} -> {5,3,1,0,2,4,6}`` is reproduced exactly.
* **Range codec** — when both ends know values lie in ``0..n-1`` with
  ``n <= 2**16``, the top ``r = (n - 2) // 255`` byte patterns of the
  first byte escape to a two-byte form; everything below ``256 - r``
  fits in one byte.
"""

from __future__ import annotations

from typing import List, Tuple


def write_uvarint(out: bytearray, value: int) -> None:
    """Append the 7-bits-per-byte encoding of ``value`` to ``out``."""
    if value < 0:
        raise ValueError(f"uvarint requires a non-negative value: {value}")
    while True:
        low = value & 0x7F
        value >>= 7
        if value:
            out.append(low | 0x80)
        else:
            out.append(low)
            return


def read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode a uvarint at ``pos``; return ``(value, new_pos)``."""
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated uvarint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise ValueError("uvarint too long")


def zigzag(value: int) -> int:
    """Map a signed value to its unsigned zigzag form."""
    return 2 * value if value >= 0 else -2 * value - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


def write_svarint(out: bytearray, value: int) -> None:
    """Append the zigzag + uvarint encoding of a signed ``value``."""
    write_uvarint(out, zigzag(value))


def read_svarint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode a signed varint at ``pos``; return ``(value, new_pos)``."""
    raw, pos = read_uvarint(data, pos)
    return unzigzag(raw), pos


def range_escape_count(n: int) -> int:
    """Number of first-byte patterns reserved for two-byte values.

    This is the paper's ``r = floor((n - 2) / 255)``.
    """
    if not 1 <= n <= 1 << 16:
        raise ValueError(f"range codec requires 1 <= n <= 65536, got {n}")
    return max(0, (n - 2) // 255)


def write_ranged(out: bytearray, value: int, n: int) -> None:
    """Append the range encoding of ``value`` known to lie in ``0..n-1``."""
    if not 0 <= value < n:
        raise ValueError(f"value {value} outside range 0..{n - 1}")
    r = range_escape_count(n)
    threshold = 256 - r
    if value < threshold:
        out.append(value)
        return
    excess = value - threshold
    out.append((excess % r) + threshold)
    out.append(excess // r)


def read_ranged(data: bytes, pos: int, n: int) -> Tuple[int, int]:
    """Decode a range-encoded value in ``0..n-1``; return ``(value, new_pos)``."""
    r = range_escape_count(n)
    threshold = 256 - r
    if pos >= len(data):
        raise ValueError("truncated range-encoded value")
    first = data[pos]
    pos += 1
    if first < threshold:
        return first, pos
    if pos >= len(data):
        raise ValueError("truncated range-encoded value")
    second = data[pos]
    pos += 1
    return threshold + (first - threshold) + second * r, pos


def encode_uvarints(values: List[int]) -> bytes:
    """Encode a whole list of unsigned values as one byte stream."""
    out = bytearray()
    for value in values:
        write_uvarint(out, value)
    return bytes(out)


def decode_uvarints(data: bytes) -> List[int]:
    """Decode a byte stream produced by :func:`encode_uvarints`.

    One fused loop instead of a :func:`read_uvarint` call per value —
    this is the prescan path of the compiled codec backend, where the
    whole stream is decoded up front and the hot loop just indexes.
    """
    values: List[int] = []
    append = values.append
    value = 0
    shift = 0
    for byte in data:
        if byte & 0x80:
            value |= (byte & 0x7F) << shift
            shift += 7
            if shift > 63:
                raise ValueError("uvarint too long")
        else:
            append(value | (byte << shift))
            value = 0
            shift = 0
    if shift:
        raise ValueError("truncated uvarint")
    return values
