"""Adaptive arithmetic coding.

Section 5 of the paper compares zlib on the byte stream produced by a
move-to-front encoder against an arithmetic coder applied directly to
the MTF indices (where an index occurring with probability ``p`` costs
``log2(1/p)`` bits).  The paper found the arithmetic coder about 2%
smaller on virtual-method references in ``rt.jar`` before accounting
for the dictionary, and rejected it on cost grounds.  This module
implements the adaptive coder used for that ablation
(``benchmarks/test_ablation_arithmetic.py``).

The implementation is the classic 32-bit integer range coder of Witten,
Neal and Cleary, with an adaptive frequency model over a fixed alphabet
plus periodic halving to keep counts bounded.
"""

from __future__ import annotations

from typing import List, Sequence

_CODE_BITS = 32
_TOP = (1 << _CODE_BITS) - 1
_FIRST_QUARTER = (_TOP >> 2) + 1
_HALF = 2 * _FIRST_QUARTER
_THIRD_QUARTER = 3 * _FIRST_QUARTER
_MAX_TOTAL = 1 << 16


class AdaptiveModel:
    """Adaptive order-0 frequency model over symbols ``0..n-1``."""

    def __init__(self, alphabet_size: int):
        if alphabet_size < 1:
            raise ValueError("alphabet must have at least one symbol")
        self.n = alphabet_size
        self.freq = [1] * alphabet_size

    def cumulative(self, symbol: int) -> tuple:
        """Return ``(low, high, total)`` cumulative counts for ``symbol``."""
        low = sum(self.freq[:symbol])
        return low, low + self.freq[symbol], sum(self.freq)

    def update(self, symbol: int) -> None:
        self.freq[symbol] += 32
        if sum(self.freq) >= _MAX_TOTAL:
            self.freq = [(f + 1) >> 1 for f in self.freq]


class _CumulativeTree:
    """Fenwick tree so cumulative lookups are O(log n), not O(n)."""

    def __init__(self, model: AdaptiveModel):
        self.n = model.n
        self._tree = [0] * (self.n + 1)
        for i, f in enumerate(model.freq):
            self._add(i, f)
        self.model = model

    def _add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self.n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, index: int) -> int:
        """Sum of frequencies of symbols ``0..index-1``."""
        total = 0
        i = index
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def total(self) -> int:
        return self.prefix(self.n)

    def find(self, target: int) -> int:
        """Largest symbol whose prefix sum is <= target."""
        pos = 0
        remaining = target
        bit = 1
        while bit * 2 <= self.n:
            bit *= 2
        while bit:
            nxt = pos + bit
            if nxt <= self.n and self._tree[nxt] <= remaining:
                pos = nxt
                remaining -= self._tree[nxt]
            bit >>= 1
        return pos

    def update(self, symbol: int) -> None:
        self._add(symbol, 32)
        self.model.freq[symbol] += 32
        if self.total() >= _MAX_TOTAL:
            freq = [(f + 1) >> 1 for f in self.model.freq]
            self.model.freq = freq
            self._tree = [0] * (self.n + 1)
            for i, f in enumerate(freq):
                self._add(i, f)


class ArithmeticEncoder:
    """Encode a symbol sequence with an adaptive model."""

    def __init__(self, alphabet_size: int):
        self._tree = _CumulativeTree(AdaptiveModel(alphabet_size))
        self._low = 0
        self._high = _TOP
        self._pending = 0
        self._bits: List[int] = []

    def _emit(self, bit: int) -> None:
        self._bits.append(bit)
        while self._pending:
            self._bits.append(1 - bit)
            self._pending -= 1

    def encode(self, symbol: int) -> None:
        low_count = self._tree.prefix(symbol)
        high_count = low_count + self._tree.model.freq[symbol]
        total = self._tree.total()
        span = self._high - self._low + 1
        self._high = self._low + span * high_count // total - 1
        self._low = self._low + span * low_count // total
        while True:
            if self._high < _HALF:
                self._emit(0)
            elif self._low >= _HALF:
                self._emit(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _FIRST_QUARTER and self._high < _THIRD_QUARTER:
                self._pending += 1
                self._low -= _FIRST_QUARTER
                self._high -= _FIRST_QUARTER
            else:
                break
            self._low *= 2
            self._high = self._high * 2 + 1
        self._tree.update(symbol)

    def finish(self) -> bytes:
        self._pending += 1
        if self._low < _FIRST_QUARTER:
            self._emit(0)
        else:
            self._emit(1)
        bits = self._bits
        out = bytearray()
        acc = 0
        for i, bit in enumerate(bits):
            acc = (acc << 1) | bit
            if i % 8 == 7:
                out.append(acc)
                acc = 0
        tail = len(bits) % 8
        if tail:
            out.append(acc << (8 - tail))
        return bytes(out)


class ArithmeticDecoder:
    """Decode a stream produced by :class:`ArithmeticEncoder`."""

    def __init__(self, data: bytes, alphabet_size: int):
        self._tree = _CumulativeTree(AdaptiveModel(alphabet_size))
        self._data = data
        self._bitpos = 0
        self._low = 0
        self._high = _TOP
        self._value = 0
        for _ in range(_CODE_BITS):
            self._value = (self._value << 1) | self._next_bit()

    def _next_bit(self) -> int:
        byte_index = self._bitpos >> 3
        if byte_index >= len(self._data):
            self._bitpos += 1
            return 0
        bit = (self._data[byte_index] >> (7 - (self._bitpos & 7))) & 1
        self._bitpos += 1
        return bit

    def decode(self) -> int:
        total = self._tree.total()
        span = self._high - self._low + 1
        target = ((self._value - self._low + 1) * total - 1) // span
        symbol = self._tree.find(target)
        low_count = self._tree.prefix(symbol)
        high_count = low_count + self._tree.model.freq[symbol]
        self._high = self._low + span * high_count // total - 1
        self._low = self._low + span * low_count // total
        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._value -= _HALF
            elif self._low >= _FIRST_QUARTER and self._high < _THIRD_QUARTER:
                self._low -= _FIRST_QUARTER
                self._high -= _FIRST_QUARTER
                self._value -= _FIRST_QUARTER
            else:
                break
            self._low *= 2
            self._high = self._high * 2 + 1
            self._value = self._value * 2 + self._next_bit()
        self._tree.update(symbol)
        return symbol


def arithmetic_encode(symbols: Sequence[int], alphabet_size: int) -> bytes:
    """Encode ``symbols`` (each in ``0..alphabet_size-1``)."""
    encoder = ArithmeticEncoder(alphabet_size)
    for symbol in symbols:
        if not 0 <= symbol < alphabet_size:
            raise ValueError(f"symbol {symbol} outside alphabet")
        encoder.encode(symbol)
    return encoder.finish()


def arithmetic_decode(data: bytes, count: int, alphabet_size: int) -> List[int]:
    """Decode ``count`` symbols from ``data``."""
    decoder = ArithmeticDecoder(data, alphabet_size)
    return [decoder.decode() for _ in range(count)]
