"""Low-level codecs: varints, streams, Huffman, arithmetic coding."""

from .arithmetic import arithmetic_decode, arithmetic_encode
from .huffman import HuffmanCoder
from .streams import StreamReader, StreamSet
from .varint import (
    decode_uvarints,
    encode_uvarints,
    read_ranged,
    read_svarint,
    read_uvarint,
    unzigzag,
    write_ranged,
    write_svarint,
    write_uvarint,
    zigzag,
)

__all__ = [
    "HuffmanCoder",
    "StreamReader",
    "StreamSet",
    "arithmetic_decode",
    "arithmetic_encode",
    "decode_uvarints",
    "encode_uvarints",
    "read_ranged",
    "read_svarint",
    "read_uvarint",
    "unzigzag",
    "write_ranged",
    "write_svarint",
    "write_uvarint",
    "zigzag",
]
