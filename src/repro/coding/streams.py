"""Named byte-stream containers for the packed wire format.

The packed format (Sections 4, 7 and 8 of the paper) separates
dissimilar data into independent streams — opcodes, register numbers,
integer constants, branch offsets, each kind of constant-pool
reference, string lengths, string characters — and compresses each with
zlib.  :class:`StreamSet` is the writer side; :class:`StreamReader`
is the reader side.

The container layout is::

    uvarint  stream_count
    repeat stream_count times:
        uvarint  name_length ; name bytes (UTF-8)
        uvarint  payload_length ; payload bytes

Payloads are raw zlib streams (no 18-byte gzip header/trailer, matching
the paper's measurement methodology) unless compression is disabled.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Tuple

from ..observe import recorder as _observe
from .varint import (
    range_escape_count,
    read_ranged,
    read_svarint,
    read_uvarint,
    write_ranged,
    write_svarint,
    write_uvarint,
    zigzag,
)


class StreamPort:
    """The port protocol the codec driver targets.

    A port is anything with a ``stream(name)`` method returning an
    object that speaks the integer-codec vocabulary (``u8``,
    ``uvarint``, ``svarint``, ``ranged``, ``raw``).  Three ports
    exist: :class:`StreamSet` (writes), :class:`StreamReader`
    (reads), and :class:`NullStreamSet` (discards — the counting
    pass).  Sharing one vocabulary is what lets a single codec spec
    drive all three modes.
    """

    def stream(self, name: str):
        raise NotImplementedError


class NullStream:
    """A write-shaped stream that discards everything."""

    __slots__ = ()

    def __len__(self) -> int:
        return 0

    def u8(self, value: int) -> None:
        pass

    def uvarint(self, value: int) -> None:
        pass

    def svarint(self, value: int) -> None:
        pass

    def ranged(self, value: int, n: int) -> None:
        pass

    def raw(self, data: bytes) -> None:
        pass


NULL_STREAM = NullStream()


class NullStreamSet(StreamPort):
    """The counting pass's port: every stream is the null stream."""

    def stream(self, name: str) -> NullStream:
        return NULL_STREAM


class StreamWriter:
    """An append-only byte stream with integer-codec helpers."""

    def __init__(self, name: str):
        self.name = name
        self.buf = bytearray()

    def __len__(self) -> int:
        return len(self.buf)

    def u8(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise ValueError(f"u8 out of range: {value}")
        self.buf.append(value)

    def uvarint(self, value: int) -> None:
        write_uvarint(self.buf, value)

    def svarint(self, value: int) -> None:
        write_svarint(self.buf, value)

    def ranged(self, value: int, n: int) -> None:
        write_ranged(self.buf, value, n)

    def raw(self, data: bytes) -> None:
        self.buf.extend(data)

    def getvalue(self) -> bytes:
        return bytes(self.buf)


class SizingStream:
    """A write-shaped stream that counts bytes instead of storing them.

    Speaks both the :class:`StreamWriter` vocabulary (``u8`` /
    ``uvarint`` / ``svarint`` / ``ranged`` / ``raw``) and the raw
    ``bytearray`` surface the compiled codec writes through
    (``append`` / ``extend`` via the ``buf`` property, which returns
    the sizing stream itself).  The counted sizes are byte-exact
    against a real encode: varint and range widths follow
    :mod:`repro.coding.varint` precisely.  This is the port behind the
    layout sizing sub-pass that prices per-class stream offsets for
    the spill planner without materializing a single payload byte.
    """

    __slots__ = ("name", "size")

    def __init__(self, name: str):
        self.name = name
        self.size = 0

    @property
    def buf(self) -> "SizingStream":
        return self

    def __len__(self) -> int:
        return self.size

    def append(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise ValueError(f"byte out of range: {value}")
        self.size += 1

    def extend(self, data) -> None:
        self.size += len(data)

    def u8(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise ValueError(f"u8 out of range: {value}")
        self.size += 1

    def uvarint(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"uvarint requires a non-negative value: {value}")
        width = 1
        while value >= 0x80:
            value >>= 7
            width += 1
        self.size += width

    def svarint(self, value: int) -> None:
        self.uvarint(zigzag(value))

    def ranged(self, value: int, n: int) -> None:
        if not 0 <= value < n:
            raise ValueError(f"value {value} outside range 0..{n - 1}")
        threshold = 256 - range_escape_count(n)
        self.size += 1 if value < threshold else 2

    def raw(self, data: bytes) -> None:
        self.size += len(data)


class SizingStreamSet(StreamPort):
    """A stream port whose streams only measure — nothing is stored."""

    def __init__(self):
        self._streams: Dict[str, SizingStream] = {}

    def stream(self, name: str) -> SizingStream:
        writer = self._streams.get(name)
        if writer is None:
            writer = SizingStream(name)
            self._streams[name] = writer
        return writer

    def names(self) -> List[str]:
        return list(self._streams)

    def raw_sizes(self) -> Dict[str, int]:
        return {name: w.size for name, w in self._streams.items()}


class StreamCursor:
    """A read cursor over one decoded stream."""

    def __init__(self, name: str, data: bytes):
        self.name = name
        self.data = data
        self.pos = 0

    def at_end(self) -> bool:
        return self.pos >= len(self.data)

    def u8(self) -> int:
        if self.pos >= len(self.data):
            raise ValueError(f"stream {self.name!r} exhausted")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def uvarint(self) -> int:
        value, self.pos = read_uvarint(self.data, self.pos)
        return value

    def svarint(self) -> int:
        value, self.pos = read_svarint(self.data, self.pos)
        return value

    def ranged(self, n: int) -> int:
        value, self.pos = read_ranged(self.data, self.pos, n)
        return value

    def raw(self, length: int) -> bytes:
        if self.pos + length > len(self.data):
            raise ValueError(f"stream {self.name!r} exhausted")
        data = self.data[self.pos:self.pos + length]
        self.pos += length
        return data


class StreamSet(StreamPort):
    """An ordered collection of named streams (writer side)."""

    def __init__(self):
        self._streams: Dict[str, StreamWriter] = {}

    def stream(self, name: str) -> StreamWriter:
        """Get or create the stream called ``name``."""
        writer = self._streams.get(name)
        if writer is None:
            writer = StreamWriter(name)
            self._streams[name] = writer
        return writer

    def names(self) -> List[str]:
        return list(self._streams)

    def raw_sizes(self) -> Dict[str, int]:
        """Uncompressed byte count of every stream."""
        return {name: len(w) for name, w in self._streams.items()}

    MODE_RAW = 0
    MODE_WHOLE = 1
    MODE_PER_STREAM = 2

    def _frame(self, transform=None) -> bytes:
        """Concatenate streams with name/length headers.

        With a ``transform``, each payload is passed through it and a
        flag byte records whether the transformed (1) or original (0)
        payload was kept — per-stream best-of, so incompressible
        streams (4 raw float bytes, say) never pay zlib overhead.
        """
        out = bytearray()
        write_uvarint(out, len(self._streams))
        for name, writer in self._streams.items():
            payload = writer.getvalue()
            flag = None
            if transform is not None:
                transformed = transform(payload)
                if len(transformed) < len(payload):
                    payload = transformed
                    flag = 1
                else:
                    flag = 0
            name_bytes = name.encode("utf-8")
            write_uvarint(out, len(name_bytes))
            out.extend(name_bytes)
            if flag is not None:
                out.append(flag)
            write_uvarint(out, len(payload))
            out.extend(payload)
        return bytes(out)

    def serialize(self, compress: bool = True, level: int = 9) -> bytes:
        """Serialize all streams into one mode-tagged byte string.

        Two compressed layouts exist: *whole* (concatenate all streams,
        one zlib pass — wins on small archives, where per-stream
        headers dominate) and *per-stream* (zlib each stream — wins on
        large archives, where independent contexts help).  Following
        the paper's suggestion of trying several encodings and keeping
        the best, the compressor emits whichever is smaller; a leading
        mode byte tells the decoder.
        """
        recorder = _observe.current()
        if not compress:
            return bytes([self.MODE_RAW]) + self._frame()
        with recorder.span("zlib.whole"):
            whole = zlib.compress(self._frame(), level)
        with recorder.span("zlib.per_stream"):
            per_stream = self._frame(lambda p: zlib.compress(p, level))
        metrics = recorder.metrics
        if metrics is not None:
            metrics.tally("zlib", "whole_bytes", len(whole))
            metrics.tally("zlib", "per_stream_bytes", len(per_stream))
            metrics.count("zlib.mode.whole" if len(whole) <= len(per_stream)
                          else "zlib.mode.per_stream")
        if len(whole) <= len(per_stream):
            return bytes([self.MODE_WHOLE]) + whole
        return bytes([self.MODE_PER_STREAM]) + per_stream

    def compressed_sizes(self, level: int = 9) -> Dict[str, int]:
        """Per-stream zlib-compressed sizes (for size accounting)."""
        return {
            name: len(zlib.compress(w.getvalue(), level))
            for name, w in self._streams.items()
        }


class StreamReader(StreamPort):
    """Deserialized view of a :class:`StreamSet` container."""

    def __init__(self, data: bytes, compressed: bool = True):
        self._cursors: Dict[str, StreamCursor] = {}
        if not data:
            raise ValueError("empty stream container")
        mode = data[0]
        data = data[1:]
        if mode == StreamSet.MODE_WHOLE:
            data = zlib.decompress(data)
        elif mode not in (StreamSet.MODE_RAW, StreamSet.MODE_PER_STREAM):
            raise ValueError(f"unknown stream container mode {mode}")
        per_stream = mode == StreamSet.MODE_PER_STREAM
        pos = 0
        count, pos = read_uvarint(data, pos)
        for _ in range(count):
            name_len, pos = read_uvarint(data, pos)
            name = data[pos:pos + name_len].decode("utf-8")
            pos = pos + name_len
            flag = 0
            if per_stream:
                if pos >= len(data):
                    raise ValueError("truncated stream container")
                flag = data[pos]
                pos += 1
            payload_len, pos = read_uvarint(data, pos)
            payload = data[pos:pos + payload_len]
            if len(payload) != payload_len:
                raise ValueError("truncated stream container")
            pos += payload_len
            if per_stream and flag:
                payload = zlib.decompress(payload)
            self._cursors[name] = StreamCursor(name, payload)

    def stream(self, name: str) -> StreamCursor:
        cursor = self._cursors.get(name)
        if cursor is None:
            # A stream that was never written is equivalent to an empty
            # one: readers only pull from streams the writer populated.
            cursor = StreamCursor(name, b"")
            self._cursors[name] = cursor
        return cursor

    def names(self) -> List[str]:
        return list(self._cursors)

    def raw_sizes(self) -> Dict[str, int]:
        """Decoded (uncompressed) byte count of every stream."""
        return {name: len(c.data) for name, c in self._cursors.items()}


def concat_streams(pairs: Iterable[Tuple[str, bytes]]) -> bytes:
    """Build a raw-mode container directly from ``(name, payload)``
    pairs (payloads stored as-is; caller controls compression)."""
    out = bytearray([StreamSet.MODE_RAW])
    pairs = list(pairs)
    write_uvarint(out, len(pairs))
    for name, payload in pairs:
        name_bytes = name.encode("utf-8")
        write_uvarint(out, len(name_bytes))
        out.extend(name_bytes)
        write_uvarint(out, len(payload))
        out.extend(payload)
    return bytes(out)
