"""Jar (zip) archive construction and reading.

Built on the standard library ``zipfile``/``zlib`` modules — the same
deflate algorithm the real jar tool uses.  Supports the two packing
modes the paper measures: per-entry deflate (normal jar) and stored
entries (for ``j0r`` archives that are gzip'd as a whole).
"""

from __future__ import annotations

import io
import zipfile
import zlib
from typing import Dict, Iterable, List, Tuple


def make_jar(entries: Iterable[Tuple[str, bytes]],
             compress: bool = True) -> bytes:
    """Build a jar archive from ``(name, data)`` pairs.

    ``compress=True`` deflates each entry individually (a normal jar);
    ``compress=False`` stores entries raw (a ``j0r`` archive).
    Timestamps are fixed so output is deterministic.
    """
    buffer = io.BytesIO()
    method = zipfile.ZIP_DEFLATED if compress else zipfile.ZIP_STORED
    with zipfile.ZipFile(buffer, "w", method) as archive:
        for name, data in entries:
            info = zipfile.ZipInfo(name, date_time=(1999, 5, 2, 0, 0, 0))
            info.compress_type = method
            archive.writestr(info, data)
    return buffer.getvalue()


def read_jar(data: bytes) -> List[Tuple[str, bytes]]:
    """Extract ``(name, data)`` pairs from a jar archive."""
    with zipfile.ZipFile(io.BytesIO(data)) as archive:
        return [(info.filename, archive.read(info.filename))
                for info in archive.infolist()]


def gzip_whole(data: bytes, level: int = 9) -> bytes:
    """Compress a whole archive with zlib.

    The paper's measurements exclude the 18-byte gzip header/trailer,
    so this is a raw zlib stream.
    """
    return zlib.compress(data, level)


def gunzip_whole(data: bytes) -> bytes:
    return zlib.decompress(data)


def classes_to_entries(classfiles: Dict[str, bytes]
                       ) -> List[Tuple[str, bytes]]:
    """Map internal class names to jar entry names (``Name.class``)."""
    return [(f"{name}.class", data)
            for name, data in sorted(classfiles.items())]
