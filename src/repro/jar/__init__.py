"""Jar archive substrate and the Table 1 baseline formats."""

from .formats import (
    JarSizes,
    build_baselines,
    jar_sizes,
    roundtrip_jar,
    serialize_classes,
    strip_classes,
)
from .jarfile import (
    classes_to_entries,
    gunzip_whole,
    gzip_whole,
    make_jar,
    read_jar,
)

__all__ = [
    "JarSizes",
    "build_baselines",
    "classes_to_entries",
    "gunzip_whole",
    "gzip_whole",
    "jar_sizes",
    "make_jar",
    "read_jar",
    "roundtrip_jar",
    "serialize_classes",
    "strip_classes",
]
