"""Jar manifests and the Section 12 signing flow.

Packing renumbers constant pools, so signatures over the *original*
class files would not survive a pack/unpack cycle.  The paper's fix:

    "compress the classfiles, and then decompress the classfiles.
    Sign the decompressed classfiles, and ship the signed manifest
    from the decompressed classfiles along with the packed archive."

Decompression is deterministic, so the receiver reconstructs exactly
the bytes the manifest signs.  This module implements the manifest
(1999-era ``META-INF/MANIFEST.MF`` shape with per-entry SHA digests)
and the sign/verify helpers.
"""

from __future__ import annotations

import base64
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..classfile.classfile import ClassFile, write_class

DIGEST_ATTRIBUTE = "SHA-Digest"


class ManifestError(ValueError):
    """Raised on malformed or non-verifying manifests."""


def _digest(data: bytes) -> str:
    return base64.b64encode(hashlib.sha1(data).digest()).decode("ascii")


@dataclass
class Manifest:
    """A jar manifest: main attributes plus per-entry digest sections."""

    main: Dict[str, str] = field(default_factory=lambda: {
        "Manifest-Version": "1.0",
        "Created-By": "repro (Compressing Java Class Files)",
    })
    #: entry name -> attribute map (must include the digest).
    entries: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def add_entry(self, name: str, data: bytes) -> None:
        self.entries[name] = {DIGEST_ATTRIBUTE: _digest(data)}

    # -- serialization ----------------------------------------------------

    def render(self) -> str:
        """The textual MANIFEST.MF form (72-byte line folding elided:
        our attribute lines stay short)."""
        lines: List[str] = []
        for key, value in self.main.items():
            lines.append(f"{key}: {value}")
        lines.append("")
        for name in sorted(self.entries):
            lines.append(f"Name: {name}")
            for key, value in sorted(self.entries[name].items()):
                lines.append(f"{key}: {value}")
            lines.append("")
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "Manifest":
        manifest = cls(main={}, entries={})
        current: Dict[str, str] = manifest.main
        for raw_line in text.splitlines():
            line = raw_line.rstrip("\r")
            if not line:
                current = {}
                continue
            if ":" not in line:
                raise ManifestError(f"malformed manifest line {line!r}")
            key, value = line.split(":", 1)
            key = key.strip()
            value = value.strip()
            if key == "Name":
                current = {}
                manifest.entries[value] = current
            else:
                current[key] = value
        return manifest

    # -- verification -------------------------------------------------------

    def verify_entry(self, name: str, data: bytes) -> None:
        attributes = self.entries.get(name)
        if attributes is None:
            raise ManifestError(f"no manifest entry for {name}")
        expected = attributes.get(DIGEST_ATTRIBUTE)
        if expected is None:
            raise ManifestError(f"entry {name} carries no digest")
        if _digest(data) != expected:
            raise ManifestError(f"digest mismatch for {name}")


def class_entry_name(internal_name: str) -> str:
    return f"{internal_name}.class"


def sign_classfiles(classfiles: List[ClassFile]) -> Manifest:
    """Build a manifest whose digests cover the given class files.

    Per Section 12, call this on *decompressed* class files — the
    deterministic output of unpack — never on the pre-pack originals.
    """
    manifest = Manifest()
    for classfile in classfiles:
        manifest.add_entry(class_entry_name(classfile.name),
                           write_class(classfile))
    return manifest


def verify_classfiles(manifest: Manifest,
                      classfiles: List[ClassFile]) -> None:
    """Check every class file against the manifest; raises on mismatch
    or on classes missing from the manifest."""
    for classfile in classfiles:
        manifest.verify_entry(class_entry_name(classfile.name),
                              write_class(classfile))


def signing_roundtrip(classfiles: List[ClassFile],
                      options=None) -> Tuple[bytes, Manifest]:
    """The full Section 12 flow: pack, decompress, sign the
    decompressed class files.  Returns ``(packed bytes, manifest)``;
    the receiver runs :func:`verify_signed_archive`."""
    from ..pack import pack_archive, unpack_archive

    packed = pack_archive(classfiles, options)
    decompressed = unpack_archive(packed, options)
    return packed, sign_classfiles(decompressed)


def verify_signed_archive(packed: bytes, manifest: Manifest,
                          options=None) -> List[ClassFile]:
    """Receiver side: decompress and check every digest."""
    from ..pack import unpack_archive

    classfiles = unpack_archive(packed, options)
    verify_classfiles(manifest, classfiles)
    return classfiles
