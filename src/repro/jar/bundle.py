"""Packed bundles: jar functionality on top of the wire format (§12).

    "The basic solution to this is to combine a packed java archive
    with a standard jar file that contains all of the non-class files
    from the jar archive being emulated."

A *bundle* is a standard zip holding:

* ``META-INF/MANIFEST.MF`` — digests of the (decompressed) class files
  and of every resource,
* ``classes.pack``         — the packed archive (stored, already
  compressed),
* every non-class resource — deflated individually, as in a jar.

``open_bundle`` reverses the construction, decompresses the classes,
and verifies every digest.
"""

from __future__ import annotations

import io
import warnings
import zipfile
from typing import Dict, List, Optional, Tuple

from ..classfile.classfile import ClassFile
from .manifest import (
    Manifest,
    ManifestError,
    class_entry_name,
    sign_classfiles,
    verify_classfiles,
)

PACKED_ENTRY = "classes.pack"
MANIFEST_ENTRY = "META-INF/MANIFEST.MF"


def make_bundle(classfiles: List[ClassFile],
                resources: Optional[Dict[str, bytes]] = None,
                options=None) -> bytes:
    """Build a packed bundle from class files plus resources."""
    from ..pack import pack_archive, unpack_archive

    resources = resources or {}
    for name in (PACKED_ENTRY, MANIFEST_ENTRY):
        if name in resources:
            raise ValueError(f"resource name {name!r} is reserved")
    packed = pack_archive(classfiles, options)
    # Sign what the receiver will reconstruct (§12).
    manifest = sign_classfiles(unpack_archive(packed, options))
    for name, data in sorted(resources.items()):
        manifest.add_entry(name, data)

    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as archive:
        stamp = (1999, 5, 2, 0, 0, 0)
        manifest_info = zipfile.ZipInfo(MANIFEST_ENTRY, date_time=stamp)
        archive.writestr(manifest_info, manifest.render())
        packed_info = zipfile.ZipInfo(PACKED_ENTRY, date_time=stamp)
        packed_info.compress_type = zipfile.ZIP_STORED
        archive.writestr(packed_info, packed)
        for name, data in sorted(resources.items()):
            info = zipfile.ZipInfo(name, date_time=stamp)
            archive.writestr(info, data)
    return buffer.getvalue()


def open_bundle(data: bytes, options=None
                ) -> Tuple[List[ClassFile], Dict[str, bytes], Manifest]:
    """Open a bundle; returns (class files, resources, manifest).

    Every class file and resource is verified against the manifest;
    tampering raises :class:`ManifestError`.  A manifest entry that
    references a file missing from the archive is surfaced as a
    one-line :class:`UserWarning` (a torn bundle should be visible,
    not silently accepted) without failing the open.
    """
    from ..pack import unpack_archive

    with zipfile.ZipFile(io.BytesIO(data)) as archive:
        names = set(archive.namelist())
        if MANIFEST_ENTRY not in names or PACKED_ENTRY not in names:
            raise ManifestError("not a packed bundle")
        manifest = Manifest.parse(
            archive.read(MANIFEST_ENTRY).decode("utf-8"))
        packed = archive.read(PACKED_ENTRY)
        resources = {
            name: archive.read(name)
            for name in sorted(names - {MANIFEST_ENTRY, PACKED_ENTRY})
        }
    classfiles = unpack_archive(packed, options)
    verify_classfiles(manifest, classfiles)
    for name, payload in resources.items():
        manifest.verify_entry(name, payload)
    present = {class_entry_name(c.name) for c in classfiles}
    present.update(resources)
    missing = sorted(set(manifest.entries) - present)
    if missing:
        warnings.warn(
            f"bundle manifest references {len(missing)} file(s) "
            f"missing from the archive: {', '.join(missing)}",
            UserWarning, stacklevel=2)
    return classfiles, resources, manifest
