"""The jar-format size ladder from Tables 1 and 6.

The paper compares four baseline representations of a class-file
collection:

* ``jar``     — class files as-is, individually deflated,
* ``sjar``    — debug info stripped + constant pool GC'd/sorted
                (Section 2), individually deflated,
* ``sj0r``    — stripped class files, stored uncompressed,
* ``sj0r.gz`` — the ``sj0r`` archive zlib-compressed as a whole.

All take :class:`~repro.classfile.classfile.ClassFile` objects (or raw
bytes) and return sizes/bytes.  Non-class files are excluded by
construction, matching the paper's methodology.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..classfile.classfile import ClassFile, parse_class, write_class
from ..classfile.transform import normalize
from .jarfile import classes_to_entries, gzip_whole, make_jar


@dataclass
class JarSizes:
    """Byte sizes of all baseline representations (Table 1 columns)."""

    sj0r: int       # stripped, not compressed (sum of class files + zip)
    jar: int        # unstripped, per-file deflate
    sjar: int       # stripped, per-file deflate
    sj0r_gz: int    # stripped, whole-archive zlib

    @property
    def sjar_over_jar(self) -> float:
        return self.sjar / self.jar if self.jar else 0.0

    @property
    def sj0r_gz_over_sjar(self) -> float:
        return self.sj0r_gz / self.sjar if self.sjar else 0.0

    @property
    def sj0r_gz_over_sj0r(self) -> float:
        return self.sj0r_gz / self.sj0r if self.sj0r else 0.0


def strip_classes(classfiles: Dict[str, ClassFile]
                  ) -> Dict[str, ClassFile]:
    """Apply the Section 2 normalization to a copy of every class."""
    stripped: Dict[str, ClassFile] = {}
    for name, classfile in classfiles.items():
        stripped[name] = normalize(copy.deepcopy(classfile))
    return stripped


def serialize_classes(classfiles: Dict[str, ClassFile]) -> Dict[str, bytes]:
    return {name: write_class(classfile)
            for name, classfile in classfiles.items()}


def jar_sizes(classfiles: Dict[str, ClassFile]) -> JarSizes:
    """Compute every baseline size for a class-file collection."""
    raw = serialize_classes(classfiles)
    stripped = serialize_classes(strip_classes(classfiles))
    jar_bytes = make_jar(classes_to_entries(raw), compress=True)
    sjar_bytes = make_jar(classes_to_entries(stripped), compress=True)
    sj0r_bytes = make_jar(classes_to_entries(stripped), compress=False)
    sj0r_gz_bytes = gzip_whole(sj0r_bytes)
    return JarSizes(
        sj0r=len(sj0r_bytes),
        jar=len(jar_bytes),
        sjar=len(sjar_bytes),
        sj0r_gz=len(sj0r_gz_bytes),
    )


def build_baselines(classfiles: Dict[str, ClassFile]
                    ) -> Dict[str, bytes]:
    """Actual archive bytes for each baseline representation."""
    raw = serialize_classes(classfiles)
    stripped = serialize_classes(strip_classes(classfiles))
    sj0r = make_jar(classes_to_entries(stripped), compress=False)
    return {
        "jar": make_jar(classes_to_entries(raw), compress=True),
        "sjar": make_jar(classes_to_entries(stripped), compress=True),
        "sj0r": sj0r,
        "sj0r.gz": gzip_whole(sj0r),
    }


def roundtrip_jar(archive: bytes) -> List[Tuple[str, ClassFile]]:
    """Parse every class file out of a jar archive."""
    from .jarfile import read_jar

    out: List[Tuple[str, ClassFile]] = []
    for name, data in read_jar(archive):
        if name.endswith(".class"):
            out.append((name[:-len(".class")], parse_class(data)))
    return out
