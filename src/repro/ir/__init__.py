"""The restructured class-file model of Section 4 / Figure 1."""

from .build import build_archive, build_class
from .model import (
    Archive,
    ClassDefinition,
    ClassRef,
    ConstValue,
    FieldDefinition,
    FieldName,
    FieldRef,
    Interner,
    IRCode,
    IRInstruction,
    MethodDefinition,
    MethodName,
    MethodRef,
    PackageName,
    SimpleClassName,
    TypeRef,
)
from .reconstruct import reconstruct_archive, reconstruct_class

__all__ = [
    "Archive",
    "ClassDefinition",
    "ClassRef",
    "ConstValue",
    "FieldDefinition",
    "FieldName",
    "FieldRef",
    "IRCode",
    "IRInstruction",
    "Interner",
    "MethodDefinition",
    "MethodName",
    "MethodRef",
    "PackageName",
    "SimpleClassName",
    "TypeRef",
    "build_archive",
    "build_class",
    "reconstruct_archive",
    "reconstruct_class",
]
