"""Building the restructured model (Figure 1) from class files."""

from __future__ import annotations

from typing import List, Optional, Set

from ..classfile import constant_pool as cp
from ..classfile.attributes import (
    CodeAttribute,
    ConstantValueAttribute,
    DeprecatedAttribute,
    ExceptionsAttribute,
    SyntheticAttribute,
)
from ..classfile.bytecode import Instruction, disassemble
from ..classfile.classfile import ClassFile
from ..classfile.constants import AccessFlags
from ..classfile.opcodes import BY_NAME, OperandKind as K
from . import model as ir

_LDC = BY_NAME["ldc"].opcode
_LDC_W = BY_NAME["ldc_w"].opcode
_LDC2_W = BY_NAME["ldc2_w"].opcode


class BuildError(ValueError):
    """Raised when a class file cannot be restructured (e.g. carries
    an unrecognized attribute that packing would corrupt)."""


def _const_value(pool: cp.ConstantPool, index: int) -> ir.ConstValue:
    entry = pool[index]
    if isinstance(entry, cp.IntegerConst):
        return ir.ConstValue("int", entry.value)
    if isinstance(entry, cp.FloatConst):
        return ir.ConstValue("float", entry.bits)
    if isinstance(entry, cp.LongConst):
        return ir.ConstValue("long", entry.value)
    if isinstance(entry, cp.DoubleConst):
        return ir.ConstValue("double", entry.bits)
    if isinstance(entry, cp.StringConst):
        return ir.ConstValue("string", pool.utf8_value(entry.utf8_index))
    raise BuildError(f"constant pool entry {index} is not loadable")


def _build_instruction(instruction: Instruction, pool: cp.ConstantPool,
                       interner: ir.Interner) -> ir.IRInstruction:
    out = ir.IRInstruction(
        opcode=instruction.opcode,
        local=instruction.local,
        immediate=instruction.immediate,
        target=instruction.target,
        atype=instruction.atype,
        dims=instruction.dims,
    )
    if instruction.switch is not None:
        out.switch_default = instruction.switch.default
        out.switch_low = instruction.switch.low
        out.switch_pairs = list(instruction.switch.pairs)
    kind = instruction.spec.cp_kind
    if kind is None:
        return out
    index = instruction.cp_index
    if kind == K.CP_LDC:
        out.const = _const_value(pool, index)
    elif kind == K.CP_LDC_W:
        out.const = _const_value(pool, index)
        out.wide_const = True
    elif kind == K.CP_LDC2_W:
        out.const = _const_value(pool, index)
        out.wide_const = True
    elif kind == K.CP_FIELD:
        owner, name, descriptor = pool.member_ref(index)
        out.field_ref = interner.field_ref(owner, name, descriptor)
    elif kind in (K.CP_METHOD, K.CP_IMETHOD):
        owner, name, descriptor = pool.member_ref(index)
        out.method_ref = interner.method_ref(owner, name, descriptor)
    elif kind == K.CP_CLASS:
        name = pool.class_name(index)
        if name.startswith("["):
            # An array class (anewarray of arrays, checkcast on
            # arrays, multianewarray): keep full type structure.
            out.type_ref = interner.type_ref(name)
        else:
            out.class_ref = interner.class_ref(name)
    return out


def _member_flags(member, low_constants: Set[ir.ConstValue]) -> int:
    flags = member.access_flags & AccessFlags.SPEC_MASK
    for attribute in member.attributes:
        if isinstance(attribute, SyntheticAttribute):
            flags |= ir.FLAG_SYNTHETIC
        elif isinstance(attribute, DeprecatedAttribute):
            flags |= ir.FLAG_DEPRECATED
    return flags


def build_class(classfile: ClassFile,
                interner: Optional[ir.Interner] = None
                ) -> ir.ClassDefinition:
    """Restructure one class file into the Figure 1 model."""
    interner = interner or ir.Interner()
    pool = classfile.pool

    # First pass over all code: which loadable constants are referenced
    # by a one-byte LDC?  Those must receive low constant-pool indices
    # on reconstruction (Section 9).
    low_constants: Set[ir.ConstValue] = set()
    for method in classfile.methods:
        code = method.code()
        if code is None:
            continue
        for instruction in disassemble(code.code):
            if instruction.opcode == _LDC:
                low_constants.add(_const_value(pool, instruction.cp_index))

    fields: List[ir.FieldDefinition] = []
    for member in classfile.fields:
        flags = _member_flags(member, low_constants)
        constant: Optional[ir.ConstValue] = None
        for attribute in member.attributes:
            if isinstance(attribute, ConstantValueAttribute):
                constant = _const_value(pool, attribute.value_index)
                flags |= ir.FLAG_HAS_CONSTANT
                needs_low = constant.kind in ("int", "float", "string")
                if needs_low and constant not in low_constants:
                    flags |= ir.FLAG_CONSTANT_HIGH
        ref = interner.field_ref(
            classfile.name,
            pool.utf8_value(member.name_index),
            pool.utf8_value(member.descriptor_index))
        fields.append(ir.FieldDefinition(flags, ref, constant))

    methods: List[ir.MethodDefinition] = []
    for member in classfile.methods:
        flags = _member_flags(member, low_constants)
        exceptions: List[ir.ClassRef] = []
        code_ir: Optional[ir.IRCode] = None
        for attribute in member.attributes:
            if isinstance(attribute, ExceptionsAttribute):
                flags |= ir.FLAG_HAS_EXCEPTIONS
                exceptions = [
                    interner.class_ref(pool.class_name(i))
                    for i in attribute.exception_indices]
            elif isinstance(attribute, CodeAttribute):
                flags |= ir.FLAG_HAS_CODE
                instructions = [
                    _build_instruction(i, pool, interner)
                    for i in disassemble(attribute.code)]
                handlers = [
                    ir.IRExceptionHandler(
                        entry.start_pc, entry.end_pc, entry.handler_pc,
                        interner.class_ref(pool.class_name(entry.catch_type))
                        if entry.catch_type else None)
                    for entry in attribute.exception_table]
                code_ir = ir.IRCode(attribute.max_stack,
                                    attribute.max_locals,
                                    instructions, handlers)
        ref = interner.method_ref(
            classfile.name,
            pool.utf8_value(member.name_index),
            pool.utf8_value(member.descriptor_index))
        methods.append(ir.MethodDefinition(flags, ref, code_ir, exceptions))

    flags = classfile.access_flags & AccessFlags.SPEC_MASK
    super_ref: Optional[ir.ClassRef] = None
    if classfile.super_class:
        flags |= ir.FLAG_HAS_SUPER
        super_ref = interner.class_ref(classfile.super_name)
    return ir.ClassDefinition(
        access_flags=flags,
        this_class=interner.class_ref(classfile.name),
        super_class=super_ref,
        interfaces=[interner.class_ref(n)
                    for n in classfile.interface_names()],
        fields=fields,
        methods=methods,
    )


def build_archive(classfiles: List[ClassFile]) -> ir.Archive:
    """Restructure a whole collection with one shared interner."""
    interner = ir.Interner()
    return ir.Archive(
        [build_class(classfile, interner) for classfile in classfiles])
