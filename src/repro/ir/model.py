"""The restructured class-file model of Section 4 / Figure 1.

This is the paper's "internal format": class names are split into
shared :class:`PackageName` + :class:`SimpleClassName` objects, method
and field types become arrays of class references instead of
descriptor strings, generic attributes are folded into access-flag
bits, and bytecode is held as decoded instructions whose constant-pool
operands are replaced by direct references into this object graph.

Objects that "may have been seen before" (the ``&`` references of
Figure 1) are interned: building two classes from the same archive
yields *shared* ``PackageName``/``ClassRef``/``MethodRef``/... objects,
which is exactly what the wire format's reference coder exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Extra access-flag bits used only inside the packed format to replace
#: generic attributes (Section 4: "additional flags ... that say whether
#: specific attributes apply to this object").
FLAG_HAS_CONSTANT = 0x1000
FLAG_CONSTANT_HIGH = 0x2000  # Section 9: constant needs a high CP index
FLAG_SYNTHETIC = 0x4000
FLAG_DEPRECATED = 0x8000
FLAG_HAS_CODE = 0x10000
FLAG_HAS_EXCEPTIONS = 0x20000
FLAG_HAS_SUPER = 0x40000


@dataclass(frozen=True)
class PackageName:
    """A dotted-free package path, e.g. ``java/lang`` ('' for default)."""

    name: str


@dataclass(frozen=True)
class SimpleClassName:
    """The part of a class name after the last '/'."""

    name: str


@dataclass(frozen=True)
class MethodName:
    name: str


@dataclass(frozen=True)
class FieldName:
    name: str


@dataclass(frozen=True)
class ClassRef:
    """A reference to a class, factored into package + simple name."""

    package: PackageName
    simple: SimpleClassName

    @property
    def internal_name(self) -> str:
        if self.package.name:
            return f"{self.package.name}/{self.simple.name}"
        return self.simple.name


#: Primitive type codes used inside :class:`TypeRef` (0 = class).
PRIMITIVE_CODES = {"V": 1, "Z": 2, "B": 3, "C": 4, "S": 5, "I": 6,
                   "J": 7, "F": 8, "D": 9}
PRIMITIVE_CHARS = {v: k for k, v in PRIMITIVE_CODES.items()}


@dataclass(frozen=True)
class TypeRef:
    """A field/argument/return type: array depth + base class or
    primitive.  This is the paper's "special class references" encoding
    of primitive and array types."""

    dims: int
    #: Either a ClassRef or a primitive descriptor character.
    base: object

    @property
    def descriptor(self) -> str:
        prefix = "[" * self.dims
        if isinstance(self.base, ClassRef):
            return f"{prefix}L{self.base.internal_name};"
        return prefix + self.base


@dataclass(frozen=True)
class MethodRef:
    """``owner.methodName(argTypes) -> returnType``."""

    owner: ClassRef
    name: MethodName
    return_type: TypeRef
    arg_types: Tuple[TypeRef, ...]

    @property
    def descriptor(self) -> str:
        return "(" + "".join(t.descriptor for t in self.arg_types) + ")" + \
            self.return_type.descriptor


@dataclass(frozen=True)
class FieldRef:
    owner: ClassRef
    name: FieldName
    type: TypeRef


# -- constants ---------------------------------------------------------


@dataclass(frozen=True)
class ConstValue:
    """A loadable constant: kind in {'int','long','float','double',
    'string'}; ``value`` is the int/raw-bits/str payload."""

    kind: str
    value: object


# -- code --------------------------------------------------------------


@dataclass
class IRInstruction:
    """One instruction with IR-level operands.

    Exactly one of the operand fields is populated, according to the
    opcode's operand kinds.  Branch targets are byte offsets within
    the method (canonical layout).
    """

    opcode: int
    local: Optional[int] = None
    immediate: Optional[int] = None
    target: Optional[int] = None
    atype: Optional[int] = None
    dims: Optional[int] = None
    class_ref: Optional[ClassRef] = None
    #: For anewarray/checkcast/instanceof/multianewarray on array types.
    type_ref: Optional[TypeRef] = None
    method_ref: Optional[MethodRef] = None
    field_ref: Optional[FieldRef] = None
    const: Optional[ConstValue] = None
    #: True when the original used LDC_W / LDC2_W rather than LDC.
    wide_const: bool = False
    switch_default: Optional[int] = None
    switch_low: Optional[int] = None
    switch_pairs: Optional[List[Tuple[int, int]]] = None


@dataclass
class IRExceptionHandler:
    start_pc: int
    end_pc: int
    handler_pc: int
    catch_type: Optional[ClassRef]  # None = catch-all


@dataclass
class IRCode:
    max_stack: int
    max_locals: int
    instructions: List[IRInstruction]
    handlers: List[IRExceptionHandler] = field(default_factory=list)


@dataclass
class FieldDefinition:
    access_flags: int  # includes FLAG_* bits
    ref: FieldRef
    constant: Optional[ConstValue] = None


@dataclass
class MethodDefinition:
    access_flags: int  # includes FLAG_* bits
    ref: MethodRef
    code: Optional[IRCode] = None
    exceptions: List[ClassRef] = field(default_factory=list)


@dataclass
class ClassDefinition:
    access_flags: int  # includes FLAG_HAS_SUPER
    this_class: ClassRef
    super_class: Optional[ClassRef]
    interfaces: List[ClassRef]
    fields: List[FieldDefinition]
    methods: List[MethodDefinition]


@dataclass
class Archive:
    """An ordered collection of class definitions (the unit the wire
    format compresses)."""

    classes: List[ClassDefinition]


class Interner:
    """Interning factory for the shared (``&``) objects of Figure 1."""

    def __init__(self):
        self._cache: Dict[object, object] = {}

    def _intern(self, obj):
        cached = self._cache.get(obj)
        if cached is None:
            self._cache[obj] = obj
            cached = obj
        return cached

    def package(self, name: str) -> PackageName:
        return self._intern(PackageName(name))

    def simple(self, name: str) -> SimpleClassName:
        return self._intern(SimpleClassName(name))

    def method_name(self, name: str) -> MethodName:
        return self._intern(MethodName(name))

    def field_name(self, name: str) -> FieldName:
        return self._intern(FieldName(name))

    def class_ref(self, internal_name: str) -> ClassRef:
        if "/" in internal_name:
            package, simple = internal_name.rsplit("/", 1)
        else:
            package, simple = "", internal_name
        return self._intern(
            ClassRef(self.package(package), self.simple(simple)))

    def type_ref(self, descriptor: str) -> TypeRef:
        dims = 0
        while descriptor.startswith("["):
            dims += 1
            descriptor = descriptor[1:]
        if descriptor.startswith("L"):
            base: object = self.class_ref(descriptor[1:-1])
        else:
            base = descriptor
        return self._intern(TypeRef(dims, base))

    def method_ref(self, owner: str, name: str,
                   descriptor: str) -> MethodRef:
        from ..classfile.descriptors import parse_method_descriptor

        args, ret = parse_method_descriptor(descriptor)
        return self._intern(MethodRef(
            self.class_ref(owner),
            self.method_name(name),
            self.type_ref(ret),
            tuple(self.type_ref(a) for a in args)))

    def field_ref(self, owner: str, name: str, descriptor: str) -> FieldRef:
        return self._intern(FieldRef(
            self.class_ref(owner),
            self.field_name(name),
            self.type_ref(descriptor)))
