"""Reconstructing conventional class files from the Figure 1 model.

Implements the Section 9 constant-pool index assignment: loadable
constants referenced by one-byte ``LDC`` instructions (and field
constant values without the HIGH flag) are interned *first* so they
receive indices <= 255; everything else is interned afterwards in
first-use order.  Reconstruction is deterministic — the same model
always yields byte-identical class files — which is what makes the
paper's sign-after-decompress scheme (Section 12) workable.
"""

from __future__ import annotations

from typing import List

from ..classfile import constant_pool as cp
from ..classfile.attributes import (
    CodeAttribute,
    ConstantValueAttribute,
    DeprecatedAttribute,
    ExceptionsAttribute,
    ExceptionTableEntry,
    SyntheticAttribute,
)
from ..classfile.bytecode import (
    Instruction,
    SwitchData,
    assemble,
    layout,
)
from ..classfile.classfile import ClassFile
from ..classfile.constants import AccessFlags
from ..classfile.descriptors import slot_width
from ..classfile.members import FieldInfo, MethodInfo
from ..classfile.opcodes import BY_NAME, OperandKind as K
from . import model as ir

_LDC = BY_NAME["ldc"].opcode
_LDC_W = BY_NAME["ldc_w"].opcode
_INVOKEINTERFACE = BY_NAME["invokeinterface"].opcode


class ReconstructError(ValueError):
    """Raised when a model cannot be turned back into a class file."""


def _intern_const(pool: cp.ConstantPool, const: ir.ConstValue) -> int:
    if const.kind == "int":
        return pool.add(cp.IntegerConst(const.value))
    if const.kind == "float":
        return pool.add(cp.FloatConst(const.value))
    if const.kind == "long":
        return pool.add(cp.LongConst(const.value))
    if const.kind == "double":
        return pool.add(cp.DoubleConst(const.value))
    if const.kind == "string":
        return pool.string(const.value)
    raise ReconstructError(f"unknown constant kind {const.kind}")


def _type_descriptor(type_ref: ir.TypeRef) -> str:
    return type_ref.descriptor


def _method_descriptor(ref: ir.MethodRef) -> str:
    return ref.descriptor


def reconstruct_class(definition: ir.ClassDefinition) -> ClassFile:
    """Build a conventional class file from one class definition."""
    classfile = ClassFile()
    pool = classfile.pool

    # -- Section 9: low-index constants first -------------------------
    low: List[ir.ConstValue] = []
    seen = set()

    def note_low(const: ir.ConstValue) -> None:
        if const not in seen:
            seen.add(const)
            low.append(const)

    for method in definition.methods:
        if method.code is None:
            continue
        for instruction in method.code.instructions:
            if instruction.const is not None and not instruction.wide_const:
                note_low(instruction.const)
    for field_def in definition.fields:
        if field_def.constant is not None and \
                field_def.constant.kind in ("int", "float", "string") and \
                not field_def.access_flags & ir.FLAG_CONSTANT_HIGH:
            note_low(field_def.constant)
    for const in low:
        index = _intern_const(pool, const)
        if index > 0xFF:
            raise ReconstructError(
                "more than 255 LDC-referenced constants in one class")

    # -- class header ----------------------------------------------------
    classfile.access_flags = definition.access_flags & AccessFlags.SPEC_MASK
    classfile.this_class = pool.class_info(
        definition.this_class.internal_name)
    if definition.super_class is not None:
        classfile.super_class = pool.class_info(
            definition.super_class.internal_name)
    else:
        classfile.super_class = 0
    classfile.interfaces = [
        pool.class_info(ref.internal_name) for ref in definition.interfaces]

    for field_def in definition.fields:
        classfile.fields.append(_reconstruct_field(field_def, pool))
    for method_def in definition.methods:
        classfile.methods.append(_reconstruct_method(method_def, pool))
    return classfile


def _member_attributes(flags: int) -> List:
    attributes = []
    if flags & ir.FLAG_SYNTHETIC:
        attributes.append(SyntheticAttribute())
    if flags & ir.FLAG_DEPRECATED:
        attributes.append(DeprecatedAttribute())
    return attributes


def _reconstruct_field(field_def: ir.FieldDefinition,
                       pool: cp.ConstantPool) -> FieldInfo:
    info = FieldInfo(
        field_def.access_flags & AccessFlags.SPEC_MASK,
        pool.utf8(field_def.ref.name.name),
        pool.utf8(_type_descriptor(field_def.ref.type)))
    if field_def.access_flags & ir.FLAG_HAS_CONSTANT:
        if field_def.constant is None:
            raise ReconstructError("HAS_CONSTANT flag without a constant")
        info.attributes.append(ConstantValueAttribute(
            _intern_const(pool, field_def.constant)))
    info.attributes.extend(_member_attributes(field_def.access_flags))
    return info


def _reconstruct_method(method_def: ir.MethodDefinition,
                        pool: cp.ConstantPool) -> MethodInfo:
    info = MethodInfo(
        method_def.access_flags & AccessFlags.SPEC_MASK,
        pool.utf8(method_def.ref.name.name),
        pool.utf8(_method_descriptor(method_def.ref)))
    if method_def.access_flags & ir.FLAG_HAS_CODE:
        if method_def.code is None:
            raise ReconstructError("HAS_CODE flag without code")
        info.attributes.append(_reconstruct_code(method_def, pool))
    if method_def.access_flags & ir.FLAG_HAS_EXCEPTIONS:
        info.attributes.append(ExceptionsAttribute([
            pool.class_info(ref.internal_name)
            for ref in method_def.exceptions]))
    info.attributes.extend(_member_attributes(method_def.access_flags))
    return info


def _reconstruct_code(method_def: ir.MethodDefinition,
                      pool: cp.ConstantPool) -> CodeAttribute:
    code = method_def.code
    instructions = [
        _reconstruct_instruction(ir_instruction, pool)
        for ir_instruction in code.instructions]
    layout(instructions)  # assign canonical offsets
    raw = assemble(instructions, relayout=False)
    table = [
        ExceptionTableEntry(
            handler.start_pc, handler.end_pc, handler.handler_pc,
            pool.class_info(handler.catch_type.internal_name)
            if handler.catch_type is not None else 0)
        for handler in code.handlers]
    return CodeAttribute(code.max_stack, code.max_locals, raw, table)


def _reconstruct_instruction(instruction: ir.IRInstruction,
                             pool: cp.ConstantPool) -> Instruction:
    out = Instruction(
        instruction.opcode,
        local=instruction.local,
        immediate=instruction.immediate,
        target=instruction.target,
        atype=instruction.atype,
        dims=instruction.dims,
    )
    if instruction.switch_pairs is not None:
        out.switch = SwitchData(instruction.switch_default,
                                instruction.switch_low,
                                list(instruction.switch_pairs))
    spec = out.spec
    kind = spec.cp_kind
    if kind is None:
        return out
    if kind in (K.CP_LDC, K.CP_LDC_W, K.CP_LDC2_W):
        index = _intern_const(pool, instruction.const)
        if kind == K.CP_LDC and index > 0xFF:
            raise ReconstructError(
                f"LDC constant received high index {index}")
        out.cp_index = index
    elif kind == K.CP_FIELD:
        ref = instruction.field_ref
        out.cp_index = pool.fieldref(
            ref.owner.internal_name, ref.name.name,
            _type_descriptor(ref.type))
    elif kind in (K.CP_METHOD, K.CP_IMETHOD):
        ref = instruction.method_ref
        descriptor = _method_descriptor(ref)
        if kind == K.CP_IMETHOD:
            out.cp_index = pool.interface_methodref(
                ref.owner.internal_name, ref.name.name, descriptor)
            # The count operand is redundant with the descriptor; the
            # wire format drops it and we regenerate it here.
            out.count = 1 + sum(
                slot_width(t.descriptor) for t in ref.arg_types)
        else:
            out.cp_index = pool.methodref(
                ref.owner.internal_name, ref.name.name, descriptor)
    elif kind == K.CP_CLASS:
        if instruction.type_ref is not None:
            out.cp_index = pool.class_info(instruction.type_ref.descriptor)
        else:
            out.cp_index = pool.class_info(
                instruction.class_ref.internal_name)
    return out


def reconstruct_archive(archive: ir.Archive) -> List[ClassFile]:
    """Reconstruct every class in the archive, in order."""
    return [reconstruct_class(definition) for definition in archive.classes]
