"""Bytecode generation for mini-Java.

Turns analyzed ASTs into :class:`~repro.classfile.classfile.ClassFile`
objects.  The emission style follows javac 1.2: short forms
(``iload_0`` … ``aload_3``, ``iconst_*``) whenever possible, string
concatenation via ``java/lang/StringBuffer``, booleans materialized
with branch/const patterns, and ``switch`` lowered to ``tableswitch``
when dense and ``lookupswitch`` otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..classfile import constant_pool as cp
from ..classfile.attributes import (
    CodeAttribute,
    ConstantValueAttribute,
    ExceptionsAttribute,
    ExceptionTableEntry,
)
from ..classfile.bytecode import (
    Instruction,
    SwitchData,
    assemble_indexed,
    make,
)
from ..classfile.classfile import ClassFile
from ..classfile.constants import AccessFlags
from ..classfile.descriptors import (
    build_method_descriptor,
    slot_width,
)
from ..classfile.members import FieldInfo, MethodInfo
from ..classfile.stackdepth import compute_max_stack
from . import ast
from .model import Hierarchy, MethodModel

_FLAG_BITS = {
    "public": AccessFlags.PUBLIC,
    "private": AccessFlags.PRIVATE,
    "protected": AccessFlags.PROTECTED,
    "static": AccessFlags.STATIC,
    "final": AccessFlags.FINAL,
    "abstract": AccessFlags.ABSTRACT,
    "native": AccessFlags.NATIVE,
    "synchronized": AccessFlags.SYNCHRONIZED,
    "transient": AccessFlags.TRANSIENT,
    "volatile": AccessFlags.VOLATILE,
}

#: Comparison operator -> (if_icmpXX mnemonic, ifXX mnemonic).
_COMPARISONS = {
    "==": ("if_icmpeq", "ifeq"),
    "!=": ("if_icmpne", "ifne"),
    "<": ("if_icmplt", "iflt"),
    "<=": ("if_icmple", "ifle"),
    ">": ("if_icmpgt", "ifgt"),
    ">=": ("if_icmpge", "ifge"),
}

_NEGATED = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=",
            ">=": "<"}

_ARITH = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
          "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
          ">>>": "ushr"}

#: descriptor char -> opcode prefix for typed instructions.
_PREFIX = {"I": "i", "J": "l", "F": "f", "D": "d", "B": "i", "S": "i",
           "C": "i", "Z": "i"}

#: descriptor char -> array load/store suffix.
_ARRAY_SUFFIX = {"I": "ia", "J": "la", "F": "fa", "D": "da", "B": "ba",
                 "S": "sa", "C": "ca", "Z": "ba"}


class CodegenError(ValueError):
    """Raised when code generation hits an unsupported construct."""


class _Label:
    """A branch target; resolves to an instruction index."""

    __slots__ = ("index",)

    def __init__(self):
        self.index: Optional[int] = None


class _LoopContext:
    def __init__(self, break_label: _Label, continue_label: _Label):
        self.break_label = break_label
        self.continue_label = continue_label


class MethodCompiler:
    """Generates the Code attribute for one method body."""

    def __init__(self, owner: "ClassCompiler", method: ast.MethodDecl):
        self.owner = owner
        self.pool = owner.pool
        self.hierarchy = owner.hierarchy
        self.method = method
        self.instructions: List[Instruction] = []
        self._patches: List[Tuple[Instruction, _Label]] = []
        self._switch_patches: List[Tuple[SwitchData, List[_Label], _Label]] \
            = []
        self.loops: List[_LoopContext] = []
        #: (start_index, end_index, handler_index, catch_type_cp or 0)
        self.handlers: List[Tuple[int, int, int, int]] = []

    # -- emission helpers -------------------------------------------------

    def emit(self, mnemonic: str, **fields) -> Instruction:
        instruction = make(mnemonic, **fields)
        self.instructions.append(instruction)
        return instruction

    def label(self) -> _Label:
        return _Label()

    def mark(self, label: _Label) -> None:
        label.index = len(self.instructions)

    def branch(self, mnemonic: str, label: _Label) -> None:
        instruction = self.emit(mnemonic)
        self._patches.append((instruction, label))

    # -- entry point --------------------------------------------------------

    def compile(self) -> CodeAttribute:
        is_constructor = self.method.is_constructor
        body = self.method.body
        if is_constructor:
            self._emit_constructor_preamble(body)
        self.gen_block(body)
        self._ensure_return()
        # Labels marking the very end of the method (e.g. the join
        # label of a trailing try/catch whose arms all end in goto)
        # still need an instruction to land on.
        end = len(self.instructions)
        dangling = any(label.index == end for _, label in self._patches)
        for switch, case_labels, default_label in self._switch_patches:
            if default_label.index == end or \
                    any(lbl.index == end for lbl in case_labels):
                dangling = True
        if dangling:
            self._append_default_return()
        for instruction, label in self._patches:
            if label.index is None:
                raise CodegenError("unresolved label")
            instruction.target = label.index
        for switch, case_labels, default_label in self._switch_patches:
            switch.default = default_label.index
            switch.pairs = [(match, lbl.index)
                            for (match, _), lbl in
                            zip(switch.pairs, case_labels)]
        table = [
            (start, end, handler, catch_cp)
            for start, end, handler, catch_cp in self.handlers
        ]
        code = assemble_indexed(self.instructions)
        offsets = [ins.offset for ins in self.instructions]

        def offset_of(index: int) -> int:
            if index >= len(offsets):
                return len(code)
            return offsets[index]

        exception_table = [
            ExceptionTableEntry(offset_of(start), offset_of(end),
                                offset_of(handler), catch_cp)
            for start, end, handler, catch_cp in table
        ]
        max_locals = getattr(self.method, "locals_size", 0)
        max_stack = compute_max_stack(
            self.instructions, self.pool,
            [entry.handler_pc for entry in exception_table])
        return CodeAttribute(max_stack, max_locals, code, exception_table)

    def _emit_constructor_preamble(self, body: ast.Block) -> None:
        """Emit the implicit/explicit super() call and field inits."""
        explicit_super = bool(
            body.statements and
            isinstance(body.statements[0], ast.ExprStmt) and
            isinstance(body.statements[0].expr, ast.Call) and
            body.statements[0].expr.is_super and
            body.statements[0].expr.name == "<init>")
        if not explicit_super:
            self._load_local("L", 0)
            super_name = self.owner.model.super_name or "java/lang/Object"
            self.emit("invokespecial", cp_index=self.pool.methodref(
                super_name, "<init>", "()V"))
        # Instance field initializers run after super().
        for field_decl in self.owner.decl.fields:
            if "static" in field_decl.modifiers or field_decl.init is None:
                continue
            self._load_local("L", 0)
            self.gen_expr(field_decl.init)
            self._convert(field_decl.init.typ.descriptor,
                          field_decl.typ.descriptor)
            self.emit("putfield", cp_index=self.pool.fieldref(
                self.owner.internal_name, field_decl.name,
                field_decl.typ.descriptor))

    def _ensure_return(self) -> None:
        """Append a trailing return if control can fall off the end."""
        if self.instructions:
            last = self.instructions[-1].mnemonic
            if last in ("return", "ireturn", "lreturn", "freturn",
                        "dreturn", "areturn", "athrow", "goto"):
                return
        self._append_default_return()

    def _append_default_return(self) -> None:
        ret = self.method.return_type.descriptor
        if ret == "V":
            self.emit("return")
        elif ret in ("I", "Z", "B", "C", "S"):
            self.emit("iconst_0")
            self.emit("ireturn")
        elif ret == "J":
            self.emit("lconst_0")
            self.emit("lreturn")
        elif ret == "F":
            self.emit("fconst_0")
            self.emit("freturn")
        elif ret == "D":
            self.emit("dconst_0")
            self.emit("dreturn")
        else:
            self.emit("aconst_null")
            self.emit("areturn")

    # -- locals and constants ------------------------------------------------

    def _load_local(self, descriptor: str, slot: int) -> None:
        prefix = "a" if descriptor.startswith(("L", "[")) else \
            _PREFIX[descriptor]
        if slot <= 3:
            self.emit(f"{prefix}load_{slot}")
        else:
            self.emit(f"{prefix}load", local=slot)

    def _store_local(self, descriptor: str, slot: int) -> None:
        prefix = "a" if descriptor.startswith(("L", "[")) else \
            _PREFIX[descriptor]
        if slot <= 3:
            self.emit(f"{prefix}store_{slot}")
        else:
            self.emit(f"{prefix}store", local=slot)

    def _push_int(self, value: int) -> None:
        if -1 <= value <= 5:
            self.emit("iconst_m1" if value == -1 else f"iconst_{value}")
        elif -128 <= value <= 127:
            self.emit("bipush", immediate=value)
        elif -32768 <= value <= 32767:
            self.emit("sipush", immediate=value)
        else:
            self._ldc(self.pool.integer(value))

    def _ldc(self, index: int) -> None:
        if index <= 0xFF:
            self.emit("ldc", cp_index=index)
        else:
            self.emit("ldc_w", cp_index=index)

    def _push_long(self, value: int) -> None:
        if value in (0, 1):
            self.emit(f"lconst_{value}")
        else:
            self.emit("ldc2_w", cp_index=self.pool.long_const(value))

    def _push_float(self, value: float) -> None:
        if value in (0.0, 1.0, 2.0) and str(value)[0] != "-":
            self.emit(f"fconst_{int(value)}")
        else:
            self._ldc(self.pool.float_const(value))

    def _push_double(self, value: float) -> None:
        if value in (0.0, 1.0) and str(value)[0] != "-":
            self.emit(f"dconst_{int(value)}")
        else:
            self.emit("ldc2_w", cp_index=self.pool.double_const(value))

    def _convert(self, source: str, target: str) -> None:
        """Emit a widening conversion from ``source`` to ``target``."""
        source = "I" if source in ("B", "S", "C", "Z") else source
        normalized_target = "I" if target in ("B", "S", "C", "Z") else target
        if source == normalized_target or source.startswith(("L", "[")) or \
                normalized_target.startswith(("L", "[")):
            return
        letters = {"I": "i", "J": "l", "F": "f", "D": "d"}
        try:
            mnemonic = f"{letters[source]}2{letters[normalized_target]}"
        except KeyError:
            raise CodegenError(
                f"no conversion {source} -> {target}") from None
        self.emit(mnemonic)

    # -- statements ------------------------------------------------------

    def gen_block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self.gen_stmt(statement)

    def gen_stmt(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            self.gen_block(statement)
        elif isinstance(statement, ast.LocalDecl):
            if statement.init is not None:
                self.gen_expr(statement.init)
                self._convert(statement.init.typ.descriptor,
                              statement.typ.descriptor)
                self._store_local(statement.typ.descriptor,
                                  statement.slot)
        elif isinstance(statement, ast.ExprStmt):
            self.gen_expr(statement.expr, discard=True)
        elif isinstance(statement, ast.If):
            self._gen_if(statement)
        elif isinstance(statement, ast.While):
            self._gen_while(statement)
        elif isinstance(statement, ast.For):
            self._gen_for(statement)
        elif isinstance(statement, ast.Return):
            self._gen_return(statement)
        elif isinstance(statement, ast.Throw):
            self.gen_expr(statement.value)
            self.emit("athrow")
        elif isinstance(statement, ast.Try):
            self._gen_try(statement)
        elif isinstance(statement, ast.Switch):
            self._gen_switch(statement)
        elif isinstance(statement, ast.Break):
            if not self.loops:
                raise CodegenError("break outside loop")
            self.branch("goto", self.loops[-1].break_label)
        elif isinstance(statement, ast.Continue):
            if not self.loops:
                raise CodegenError("continue outside loop")
            self.branch("goto", self.loops[-1].continue_label)
        else:  # pragma: no cover - exhaustive over Stmt
            raise CodegenError(f"unknown statement {statement!r}")

    def _gen_if(self, statement: ast.If) -> None:
        else_label = self.label()
        self.gen_condition(statement.cond, else_label, jump_if=False)
        self.gen_stmt(statement.then)
        if statement.otherwise is not None:
            end_label = self.label()
            self.branch("goto", end_label)
            self.mark(else_label)
            self.gen_stmt(statement.otherwise)
            self.mark(end_label)
        else:
            self.mark(else_label)

    def _gen_while(self, statement: ast.While) -> None:
        start = self.label()
        end = self.label()
        self.mark(start)
        self.gen_condition(statement.cond, end, jump_if=False)
        self.loops.append(_LoopContext(end, start))
        self.gen_stmt(statement.body)
        self.loops.pop()
        self.branch("goto", start)
        self.mark(end)

    def _gen_for(self, statement: ast.For) -> None:
        if statement.init is not None:
            self.gen_stmt(statement.init)
        start = self.label()
        end = self.label()
        update = self.label()
        self.mark(start)
        if statement.cond is not None:
            self.gen_condition(statement.cond, end, jump_if=False)
        self.loops.append(_LoopContext(end, update))
        self.gen_stmt(statement.body)
        self.loops.pop()
        self.mark(update)
        if statement.update is not None:
            self.gen_expr(statement.update, discard=True)
        self.branch("goto", start)
        self.mark(end)

    def _gen_return(self, statement: ast.Return) -> None:
        if statement.value is None:
            self.emit("return")
            return
        self.gen_expr(statement.value)
        ret = self.method.return_type.descriptor
        self._convert(statement.value.typ.descriptor, ret)
        if ret.startswith(("L", "[")):
            self.emit("areturn")
        else:
            self.emit(f"{_PREFIX[ret]}return")

    def _gen_try(self, statement: ast.Try) -> None:
        end_label = self.label()
        start_index = len(self.instructions)
        self.gen_block(statement.body)
        body_end = len(self.instructions)
        self.branch("goto", end_label)
        for internal, slot, handler in statement.resolved_catches:
            handler_index = len(self.instructions)
            self._store_local("L", slot)
            self.gen_block(handler)
            self.branch("goto", end_label)
            self.handlers.append(
                (start_index, body_end, handler_index,
                 self.pool.class_info(internal)))
        self.mark(end_label)
        # A marked label must precede an instruction; if the try is the
        # last statement, _ensure_return appends one.
        if end_label.index == len(self.instructions):
            pass

    def _gen_switch(self, statement: ast.Switch) -> None:
        self.gen_expr(statement.selector)
        matches: List[int] = []
        case_labels: List[_Label] = []
        default_label: Optional[_Label] = None
        body_labels: List[Tuple[Optional[List[int]], _Label]] = []
        for case_matches, _ in statement.cases:
            label = self.label()
            body_labels.append((case_matches, label))
            if case_matches is None:
                default_label = label
            else:
                for match in case_matches:
                    matches.append(match)
                    case_labels.append(label)
        end_label = self.label()
        if default_label is None:
            default_label = end_label
        pairs = sorted(zip(matches, case_labels), key=lambda p: p[0])
        matches = [m for m, _ in pairs]
        case_labels = [lbl for _, lbl in pairs]
        # Dense -> tableswitch; sparse -> lookupswitch (javac's rule:
        # table when table size <= 2 * number of cases + some slack).
        use_table = bool(matches) and \
            (matches[-1] - matches[0] + 1) <= 2 * len(matches) + 8
        if not matches:
            self.emit("pop")
            self.branch("goto", default_label)
        elif use_table:
            low = matches[0]
            full_labels: List[_Label] = []
            full_matches: List[int] = []
            by_match = dict(zip(matches, case_labels))
            for value in range(low, matches[-1] + 1):
                full_matches.append(value)
                full_labels.append(by_match.get(value, default_label))
            switch = SwitchData(0, low,
                                [(m, 0) for m in full_matches])
            instruction = self.emit("tableswitch")
            instruction.switch = switch
            self._switch_patches.append((switch, full_labels, default_label))
        else:
            switch = SwitchData(0, None, [(m, 0) for m in matches])
            instruction = self.emit("lookupswitch")
            instruction.switch = switch
            self._switch_patches.append((switch, case_labels, default_label))
        self.loops.append(_LoopContext(end_label,
                                       self.loops[-1].continue_label
                                       if self.loops else end_label))
        for (case_matches, label), (_, statements) in zip(
                body_labels, statement.cases):
            self.mark(label)
            for sub in statements:
                self.gen_stmt(sub)
        self.loops.pop()
        self.mark(end_label)

    # -- conditions --------------------------------------------------------

    def gen_condition(self, expr: ast.Expr, label: _Label,
                      jump_if: bool) -> None:
        """Evaluate ``expr`` as a branch: jump to ``label`` when the
        condition's truth equals ``jump_if``."""
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.gen_condition(expr.operand, label, not jump_if)
            return
        if isinstance(expr, ast.BoolLit):
            if expr.value == jump_if:
                self.branch("goto", label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            if jump_if:
                skip = self.label()
                self.gen_condition(expr.left, skip, jump_if=False)
                self.gen_condition(expr.right, label, jump_if=True)
                self.mark(skip)
            else:
                self.gen_condition(expr.left, label, jump_if=False)
                self.gen_condition(expr.right, label, jump_if=False)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            if jump_if:
                self.gen_condition(expr.left, label, jump_if=True)
                self.gen_condition(expr.right, label, jump_if=True)
            else:
                skip = self.label()
                self.gen_condition(expr.left, skip, jump_if=True)
                self.gen_condition(expr.right, label, jump_if=False)
                self.mark(skip)
            return
        if isinstance(expr, ast.Binary) and expr.op in _COMPARISONS:
            self._gen_comparison_branch(expr, label, jump_if)
            return
        # General boolean expression: evaluate to 0/1 and test.
        self.gen_expr(expr)
        self.branch("ifne" if jump_if else "ifeq", label)

    def _gen_comparison_branch(self, expr: ast.Binary, label: _Label,
                               jump_if: bool) -> None:
        op = expr.op if jump_if else _NEGATED[expr.op]
        operand_type = expr.operand_type
        left_type = expr.left.typ.descriptor
        right_type = expr.right.typ.descriptor
        if operand_type == "A":
            # Reference comparison.
            if isinstance(expr.right, ast.NullLit):
                self.gen_expr(expr.left)
                self.branch("ifnull" if op == "==" else "ifnonnull", label)
                return
            if isinstance(expr.left, ast.NullLit):
                self.gen_expr(expr.right)
                self.branch("ifnull" if op == "==" else "ifnonnull", label)
                return
            self.gen_expr(expr.left)
            self.gen_expr(expr.right)
            self.branch("if_acmpeq" if op == "==" else "if_acmpne", label)
            return
        if operand_type == "I":
            # int comparison; use the ifXX forms when comparing to zero.
            if isinstance(expr.right, ast.IntLit) and expr.right.value == 0:
                self.gen_expr(expr.left)
                self.branch(_COMPARISONS[op][1], label)
                return
            self.gen_expr(expr.left)
            self._convert(left_type, "I")
            self.gen_expr(expr.right)
            self._convert(right_type, "I")
            self.branch(_COMPARISONS[op][0], label)
            return
        # long/float/double: compare then branch on the int result.
        self.gen_expr(expr.left)
        self._convert(left_type, operand_type)
        self.gen_expr(expr.right)
        self._convert(right_type, operand_type)
        if operand_type == "J":
            self.emit("lcmp")
        elif operand_type == "F":
            self.emit("fcmpl" if op in ("<", "<=") else "fcmpg")
        else:
            self.emit("dcmpl" if op in ("<", "<=") else "dcmpg")
        self.branch(_COMPARISONS[op][1], label)

    # -- expressions ------------------------------------------------------

    def gen_expr(self, expr: ast.Expr, discard: bool = False) -> None:
        """Generate code leaving the expression's value on the stack
        (unless ``discard``)."""
        if isinstance(expr, ast.Assign):
            self._gen_assign(expr, discard)
            return
        if isinstance(expr, ast.Call):
            self._gen_call(expr)
            if discard and expr.typ.descriptor != "V":
                self._pop_value(expr.typ.descriptor)
            return
        self._gen_value(expr)
        if discard:
            self._pop_value(expr.typ.descriptor)

    def _pop_value(self, descriptor: str) -> None:
        if descriptor == "V":
            return
        self.emit("pop2" if descriptor in ("J", "D") else "pop")

    def _gen_value(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLit):
            self._push_int(expr.value)
        elif isinstance(expr, ast.LongLit):
            self._push_long(expr.value)
        elif isinstance(expr, ast.FloatLit):
            self._push_float(expr.value)
        elif isinstance(expr, ast.DoubleLit):
            self._push_double(expr.value)
        elif isinstance(expr, ast.BoolLit):
            self.emit("iconst_1" if expr.value else "iconst_0")
        elif isinstance(expr, ast.CharLit):
            self._push_int(ord(expr.value))
        elif isinstance(expr, ast.StringLit):
            self._ldc(self.pool.string(expr.value))
        elif isinstance(expr, ast.NullLit):
            self.emit("aconst_null")
        elif isinstance(expr, ast.This):
            self._load_local("L", 0)
        elif isinstance(expr, ast.Name):
            self._gen_name_load(expr)
        elif isinstance(expr, ast.FieldAccess):
            self._gen_field_load(expr)
        elif isinstance(expr, ast.ArrayIndex):
            self.gen_expr(expr.array)
            self.gen_expr(expr.index)
            self._convert(expr.index.typ.descriptor, "I")
            self._emit_array_load(expr.typ.descriptor)
        elif isinstance(expr, ast.ArrayLength):
            self.gen_expr(expr.array)
            self.emit("arraylength")
        elif isinstance(expr, ast.Call):
            self._gen_call(expr)
        elif isinstance(expr, ast.New):
            self._gen_new(expr)
        elif isinstance(expr, ast.NewArray):
            self._gen_new_array(expr)
        elif isinstance(expr, ast.Unary):
            self._gen_unary(expr)
        elif isinstance(expr, ast.Binary):
            self._gen_binary(expr)
        elif isinstance(expr, ast.Cast):
            self._gen_cast(expr)
        elif isinstance(expr, ast.InstanceOf):
            self.gen_expr(expr.operand)
            self.emit("instanceof",
                      cp_index=self.pool.class_info(expr.internal_name))
        elif isinstance(expr, ast.Conditional):
            else_label = self.label()
            end_label = self.label()
            self.gen_condition(expr.cond, else_label, jump_if=False)
            self.gen_expr(expr.then)
            self._convert(expr.then.typ.descriptor, expr.typ.descriptor)
            self.branch("goto", end_label)
            self.mark(else_label)
            self.gen_expr(expr.otherwise)
            self._convert(expr.otherwise.typ.descriptor,
                          expr.typ.descriptor)
            self.mark(end_label)
        else:  # pragma: no cover - exhaustive over Expr
            raise CodegenError(f"unknown expression {expr!r}")

    def _emit_array_load(self, element_descriptor: str) -> None:
        if element_descriptor.startswith(("L", "[")):
            self.emit("aaload")
        else:
            self.emit(f"{_ARRAY_SUFFIX[element_descriptor]}load")

    def _emit_array_store(self, element_descriptor: str) -> None:
        if element_descriptor.startswith(("L", "[")):
            self.emit("aastore")
        else:
            self.emit(f"{_ARRAY_SUFFIX[element_descriptor]}store")

    def _gen_name_load(self, expr: ast.Name) -> None:
        res = expr.res
        if res[0] == "local":
            self._load_local(expr.typ.descriptor, res[1])
            return
        _, owner, name, descriptor, is_static = res
        if is_static:
            self.emit("getstatic",
                      cp_index=self.pool.fieldref(owner, name, descriptor))
        else:
            self._load_local("L", 0)
            self.emit("getfield",
                      cp_index=self.pool.fieldref(owner, name, descriptor))

    def _gen_field_load(self, expr: ast.FieldAccess) -> None:
        _, owner, name, descriptor, is_static = expr.res
        if is_static:
            self.emit("getstatic",
                      cp_index=self.pool.fieldref(owner, name, descriptor))
            return
        self.gen_expr(expr.receiver)
        self.emit("getfield",
                  cp_index=self.pool.fieldref(owner, name, descriptor))

    def _gen_assign(self, expr: ast.Assign, discard: bool) -> None:
        lhs = expr.lhs
        descriptor = expr.typ.descriptor
        if isinstance(lhs, ast.Name) and lhs.res[0] == "local":
            self.gen_expr(expr.rhs)
            self._convert(expr.rhs.typ.descriptor, descriptor)
            if not discard:
                self.emit("dup2" if descriptor in ("J", "D") else "dup")
            self._store_local(descriptor, lhs.res[1])
            return
        if isinstance(lhs, (ast.Name, ast.FieldAccess)):
            res = lhs.res
            _, owner, name, field_descriptor, is_static = res
            field_cp = self.pool.fieldref(owner, name, field_descriptor)
            if is_static:
                self.gen_expr(expr.rhs)
                self._convert(expr.rhs.typ.descriptor, descriptor)
                if not discard:
                    self.emit("dup2" if descriptor in ("J", "D")
                              else "dup")
                self.emit("putstatic", cp_index=field_cp)
                return
            if isinstance(lhs, ast.FieldAccess) and lhs.receiver is not None:
                self.gen_expr(lhs.receiver)
            else:
                self._load_local("L", 0)
            self.gen_expr(expr.rhs)
            self._convert(expr.rhs.typ.descriptor, descriptor)
            if not discard:
                self.emit("dup2_x1" if descriptor in ("J", "D")
                          else "dup_x1")
            self.emit("putfield", cp_index=field_cp)
            return
        if isinstance(lhs, ast.ArrayIndex):
            self.gen_expr(lhs.array)
            self.gen_expr(lhs.index)
            self._convert(lhs.index.typ.descriptor, "I")
            self.gen_expr(expr.rhs)
            self._convert(expr.rhs.typ.descriptor, descriptor)
            if not discard:
                self.emit("dup2_x2" if descriptor in ("J", "D")
                          else "dup_x2")
            self._emit_array_store(descriptor)
            return
        raise CodegenError(f"invalid assignment target {lhs!r}")

    def _gen_call(self, expr: ast.Call) -> None:
        method: MethodModel = expr.resolved
        kind = expr.kind
        if kind != "static":
            if expr.is_super:
                self._load_local("L", 0)
            elif expr.receiver is not None:
                self.gen_expr(expr.receiver)
            else:
                self._load_local("L", 0)
        arg_descriptors = method.arg_types
        for arg, target in zip(expr.args, arg_descriptors):
            self.gen_expr(arg)
            self._convert(arg.typ.descriptor, target)
        owner = expr.owner
        if kind == "interface":
            index = self.pool.interface_methodref(
                owner, method.name, method.descriptor)
            count = 1 + sum(slot_width(d) for d in arg_descriptors)
            self.emit("invokeinterface", cp_index=index, count=count)
        else:
            index = self.pool.methodref(owner, method.name,
                                        method.descriptor)
            if kind == "static":
                self.emit("invokestatic", cp_index=index)
            elif kind == "special":
                self.emit("invokespecial", cp_index=index)
            else:
                self.emit("invokevirtual", cp_index=index)

    def _gen_new(self, expr: ast.New) -> None:
        ctor: MethodModel = expr.ctor
        self.emit("new", cp_index=self.pool.class_info(expr.class_name))
        self.emit("dup")
        for arg, target in zip(expr.args, ctor.arg_types):
            self.gen_expr(arg)
            self._convert(arg.typ.descriptor, target)
        self.emit("invokespecial", cp_index=self.pool.methodref(
            expr.class_name, "<init>", ctor.descriptor))

    def _gen_new_array(self, expr: ast.NewArray) -> None:
        self.gen_expr(expr.length)
        self._convert(expr.length.typ.descriptor, "I")
        element = expr.element_type.descriptor
        if element.startswith("L"):
            self.emit("anewarray",
                      cp_index=self.pool.class_info(element[1:-1]))
        elif element.startswith("["):
            self.emit("anewarray",
                      cp_index=self.pool.class_info(element))
        else:
            from ..classfile.opcodes import DESCRIPTOR_ATYPES
            self.emit("newarray", atype=DESCRIPTOR_ATYPES[element])

    def _gen_unary(self, expr: ast.Unary) -> None:
        if expr.op == "-":
            self.gen_expr(expr.operand)
            descriptor = expr.typ.descriptor
            self._convert(expr.operand.typ.descriptor, descriptor)
            self.emit(f"{_PREFIX[descriptor]}neg")
            return
        if expr.op == "~":
            self.gen_expr(expr.operand)
            if expr.typ.descriptor == "J":
                self._convert(expr.operand.typ.descriptor, "J")
                self.emit("ldc2_w", cp_index=self.pool.long_const(-1))
                self.emit("lxor")
            else:
                self._convert(expr.operand.typ.descriptor, "I")
                self.emit("iconst_m1")
                self.emit("ixor")
            return
        if expr.op == "!":
            # Materialize via branches.
            true_label = self.label()
            end_label = self.label()
            self.gen_condition(expr.operand, true_label, jump_if=False)
            self.emit("iconst_0")
            self.branch("goto", end_label)
            self.mark(true_label)
            self.emit("iconst_1")
            self.mark(end_label)
            return
        raise CodegenError(f"unknown unary {expr.op}")

    def _gen_binary(self, expr: ast.Binary) -> None:
        if getattr(expr, "is_concat", False):
            self._gen_concat(expr)
            return
        op = expr.op
        if op in ("&&", "||") or op in _COMPARISONS:
            # Boolean-producing: materialize 0/1.
            true_label = self.label()
            end_label = self.label()
            self.gen_condition(expr, true_label, jump_if=True)
            self.emit("iconst_0")
            self.branch("goto", end_label)
            self.mark(true_label)
            self.emit("iconst_1")
            self.mark(end_label)
            return
        operand_type = expr.operand_type
        self.gen_expr(expr.left)
        self._convert(expr.left.typ.descriptor, operand_type)
        self.gen_expr(expr.right)
        if op in ("<<", ">>", ">>>"):
            self._convert(expr.right.typ.descriptor, "I")
        else:
            self._convert(expr.right.typ.descriptor, operand_type)
        self.emit(f"{_PREFIX[operand_type]}{_ARITH[op]}")

    def _gen_concat(self, expr: ast.Binary) -> None:
        """String concatenation via StringBuffer, javac 1.2 style."""
        parts: List[ast.Expr] = []

        def flatten(node: ast.Expr) -> None:
            if isinstance(node, ast.Binary) and \
                    getattr(node, "is_concat", False):
                flatten(node.left)
                flatten(node.right)
            else:
                parts.append(node)

        flatten(expr)
        buffer_name = "java/lang/StringBuffer"
        self.emit("new", cp_index=self.pool.class_info(buffer_name))
        self.emit("dup")
        self.emit("invokespecial", cp_index=self.pool.methodref(
            buffer_name, "<init>", "()V"))
        for part in parts:
            self.gen_expr(part)
            descriptor = part.typ.descriptor
            if descriptor == "Ljava/lang/String;":
                append_descriptor = "Ljava/lang/String;"
            elif descriptor.startswith(("L", "[")):
                append_descriptor = "Ljava/lang/Object;"
            elif descriptor in ("B", "S"):
                self._convert(descriptor, "I")
                append_descriptor = "I"
            else:
                append_descriptor = descriptor
            self.emit("invokevirtual", cp_index=self.pool.methodref(
                buffer_name, "append",
                f"({append_descriptor})Ljava/lang/StringBuffer;"))
        self.emit("invokevirtual", cp_index=self.pool.methodref(
            buffer_name, "toString", "()Ljava/lang/String;"))

    def _gen_cast(self, expr: ast.Cast) -> None:
        self.gen_expr(expr.operand)
        source = expr.operand.typ.descriptor
        target = expr.target.descriptor
        if target.startswith(("L", "[")):
            if source == "Lnull;" or source == target:
                return
            if target.startswith("L"):
                self.emit("checkcast",
                          cp_index=self.pool.class_info(target[1:-1]))
            else:
                self.emit("checkcast",
                          cp_index=self.pool.class_info(target))
            return
        # Primitive conversions, including narrowing.
        normalized_source = "I" if source in ("B", "S", "C", "Z") else source
        if target in ("B", "C", "S"):
            self._convert(normalized_source, "I")
            self.emit(f"i2{target.lower()}")
            return
        if normalized_source == target:
            return
        narrowing = {
            ("J", "I"): ["l2i"], ("F", "I"): ["f2i"], ("D", "I"): ["d2i"],
            ("F", "J"): ["f2l"], ("D", "J"): ["d2l"], ("D", "F"): ["d2f"],
        }
        if (normalized_source, target) in narrowing:
            for mnemonic in narrowing[(normalized_source, target)]:
                self.emit(mnemonic)
            return
        self._convert(normalized_source, target)


class ClassCompiler:
    """Generates a :class:`ClassFile` for one class declaration."""

    def __init__(self, unit: ast.CompilationUnit, decl: ast.ClassDecl,
                 hierarchy: Hierarchy):
        self.unit = unit
        self.decl = decl
        self.hierarchy = hierarchy
        package_prefix = (unit.package.replace(".", "/") + "/"
                          if unit.package else "")
        self.internal_name = package_prefix + decl.name
        self.model = hierarchy.get(self.internal_name)
        self.pool = cp.ConstantPool()

    def compile(self) -> ClassFile:
        classfile = ClassFile()
        classfile.pool = self.pool
        flags = AccessFlags.SUPER
        for modifier in self.decl.modifiers:
            flags |= _FLAG_BITS.get(modifier, 0)
        if self.decl.is_interface:
            flags = (flags | AccessFlags.INTERFACE | AccessFlags.ABSTRACT) \
                & ~AccessFlags.SUPER
        classfile.access_flags = flags
        classfile.this_class = self.pool.class_info(self.internal_name)
        classfile.super_class = self.pool.class_info(
            self.model.super_name or "java/lang/Object")
        classfile.interfaces = [
            self.pool.class_info(i) for i in self.model.interfaces]
        for field_decl in self.decl.fields:
            classfile.fields.append(self._compile_field(field_decl))
        static_inits = [
            f for f in self.decl.fields
            if "static" in f.modifiers and f.init is not None and
            self.model.fields[f.name].constant is None]
        for method in self.decl.methods:
            classfile.methods.append(self._compile_method(method))
        if static_inits:
            classfile.methods.append(self._compile_clinit(static_inits))
        return classfile

    def _compile_field(self, field_decl: ast.FieldDecl) -> FieldInfo:
        flags = 0
        for modifier in field_decl.modifiers:
            flags |= _FLAG_BITS.get(modifier, 0)
        info = FieldInfo(
            flags,
            self.pool.utf8(field_decl.name),
            self.pool.utf8(field_decl.typ.descriptor))
        constant = self.model.fields[field_decl.name].constant
        if constant is not None:
            info.attributes.append(ConstantValueAttribute(
                self._constant_index(constant, field_decl.typ.descriptor)))
        return info

    def _constant_index(self, constant: object, descriptor: str) -> int:
        if isinstance(constant, tuple):
            kind, value = constant
            if kind == "long":
                return self.pool.long_const(value)
            if kind == "float":
                return self.pool.float_const(value)
            if kind == "double":
                return self.pool.double_const(value)
            if kind == "string":
                return self.pool.string(value)
            raise CodegenError(f"bad constant kind {kind}")
        if descriptor == "J":
            return self.pool.long_const(int(constant))
        if descriptor == "F":
            return self.pool.float_const(float(constant))
        if descriptor == "D":
            return self.pool.double_const(float(constant))
        return self.pool.integer(int(constant))

    def _compile_method(self, method: ast.MethodDecl) -> MethodInfo:
        flags = 0
        for modifier in method.modifiers:
            flags |= _FLAG_BITS.get(modifier, 0)
        if self.decl.is_interface:
            flags |= AccessFlags.PUBLIC | AccessFlags.ABSTRACT
        descriptor = build_method_descriptor(
            [p.typ.descriptor for p in method.params],
            method.return_type.descriptor)
        info = MethodInfo(flags, self.pool.utf8(method.name),
                          self.pool.utf8(descriptor))
        if method.throws:
            info.attributes.append(ExceptionsAttribute(
                [self.pool.class_info(t) for t in method.throws]))
        if method.body is not None:
            compiler = MethodCompiler(self, method)
            info.attributes.append(compiler.compile())
        return info

    def _compile_clinit(self, fields: List[ast.FieldDecl]) -> MethodInfo:
        method = ast.MethodDecl(["static"], ast.VOID, "<clinit>", [], [],
                                ast.Block([]))
        method.locals_size = 0  # type: ignore[attr-defined]
        compiler = MethodCompiler(self, method)
        for field_decl in fields:
            compiler.gen_expr(field_decl.init)
            compiler._convert(field_decl.init.typ.descriptor,
                              field_decl.typ.descriptor)
            compiler.emit("putstatic", cp_index=self.pool.fieldref(
                self.internal_name, field_decl.name,
                field_decl.typ.descriptor))
        compiler.emit("return")
        code = compiler.compile()
        info = MethodInfo(AccessFlags.STATIC, self.pool.utf8("<clinit>"),
                          self.pool.utf8("()V"))
        info.attributes.append(code)
        return info


def generate(units: List[ast.CompilationUnit],
             hierarchy: Hierarchy) -> Dict[str, ClassFile]:
    """Generate class files for every class in ``units``.

    Returns a mapping from internal class name to :class:`ClassFile`.
    """
    out: Dict[str, ClassFile] = {}
    for unit in units:
        for decl in unit.classes:
            compiler = ClassCompiler(unit, decl, hierarchy)
            out[compiler.internal_name] = compiler.compile()
    return out
