"""Class models: the symbol-table view of classes during compilation.

A :class:`ClassModel` describes one class — source-declared or external
(a runtime class like ``java/lang/String`` that we do not compile but
must resolve against, exactly as javac resolves against ``rt.jar``).
:class:`Hierarchy` is the set of all models plus lookup logic
(member resolution walks superclasses and interfaces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..classfile.descriptors import parse_method_descriptor


@dataclass
class FieldModel:
    name: str
    descriptor: str
    is_static: bool
    #: Compile-time constant value (for ConstantValue attributes).
    constant: Optional[object] = None


@dataclass
class MethodModel:
    name: str
    descriptor: str
    is_static: bool
    owner: str = ""

    @property
    def arg_types(self) -> List[str]:
        return parse_method_descriptor(self.descriptor)[0]

    @property
    def return_type(self) -> str:
        return parse_method_descriptor(self.descriptor)[1]


@dataclass
class ClassModel:
    """Symbol-table entry for one class."""

    name: str  # internal, slash-separated
    super_name: Optional[str] = "java/lang/Object"
    interfaces: List[str] = field(default_factory=list)
    is_interface: bool = False
    fields: Dict[str, FieldModel] = field(default_factory=dict)
    #: method name -> overloads
    methods: Dict[str, List[MethodModel]] = field(default_factory=dict)
    #: True for classes we compile (vs. external runtime classes).
    is_source: bool = False

    def add_field(self, name: str, descriptor: str, is_static: bool = False,
                  constant: Optional[object] = None) -> "ClassModel":
        self.fields[name] = FieldModel(name, descriptor, is_static, constant)
        return self

    def add_method(self, name: str, descriptor: str,
                   is_static: bool = False) -> "ClassModel":
        self.methods.setdefault(name, []).append(
            MethodModel(name, descriptor, is_static, self.name))
        return self


class ResolutionError(ValueError):
    """Raised when a name, field, or method cannot be resolved."""


class Hierarchy:
    """All known classes, with member lookup along the inheritance chain."""

    def __init__(self):
        self.classes: Dict[str, ClassModel] = {}

    def add(self, model: ClassModel) -> ClassModel:
        self.classes[model.name] = model
        return model

    def get(self, name: str) -> ClassModel:
        model = self.classes.get(name)
        if model is None:
            raise ResolutionError(f"unknown class {name}")
        return model

    def has(self, name: str) -> bool:
        return name in self.classes

    def supertypes(self, name: str) -> List[str]:
        """``name`` followed by all supertypes, depth-first."""
        seen: List[str] = []
        stack = [name]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.append(current)
            model = self.classes[current]
            if model.super_name:
                stack.append(model.super_name)
            stack.extend(model.interfaces)
        return seen

    def is_subtype(self, sub: str, sup: str) -> bool:
        """Reference-type assignability (internal names)."""
        if sub == sup or sup == "java/lang/Object":
            return True
        if sub not in self.classes:
            return False
        return sup in self.supertypes(sub)

    def find_field(self, owner: str, name: str) -> Tuple[str, FieldModel]:
        """Resolve a field; returns ``(declaring class, model)``."""
        for class_name in self.supertypes(owner):
            model = self.classes.get(class_name)
            if model and name in model.fields:
                return class_name, model.fields[name]
        raise ResolutionError(f"no field {name} in {owner}")

    def find_methods(self, owner: str, name: str) -> List[MethodModel]:
        """All overloads visible on ``owner`` named ``name``.

        Subclass declarations shadow identical-descriptor superclass
        ones (override), but distinct descriptors accumulate
        (overload across the hierarchy).
        """
        found: List[MethodModel] = []
        descriptors = set()
        for class_name in self.supertypes(owner):
            model = self.classes.get(class_name)
            if not model:
                continue
            for method in model.methods.get(name, ()):
                if method.descriptor not in descriptors:
                    descriptors.add(method.descriptor)
                    found.append(method)
        if not found:
            raise ResolutionError(f"no method {name} in {owner}")
        return found

    def is_interface(self, name: str) -> bool:
        model = self.classes.get(name)
        return bool(model and model.is_interface)
