"""Semantic analysis for mini-Java.

Builds the class hierarchy from parsed compilation units plus the
runtime model, resolves every name, types every expression, allocates
local-variable slots, and annotates the AST in place for the code
generator:

* ``Expr.typ`` — the expression's type,
* ``Name.res`` / ``FieldAccess.res`` — ``("local", slot)`` or
  ``("field", owner, name, descriptor, is_static)``,
* ``Call.resolved`` / ``Call.kind`` — target method and invoke kind
  (``virtual`` / ``static`` / ``interface`` / ``special``),
* ``New.ctor`` — the resolved constructor,
* ``Binary.operand_type`` / ``Binary.is_concat``,
* ``LocalDecl.slot``, ``MethodDecl.locals_size``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..classfile.descriptors import (
    build_method_descriptor,
    slot_width,
)
from . import ast
from .model import (
    ClassModel,
    Hierarchy,
    MethodModel,
    ResolutionError,
)
from .runtime import DEFAULT_IMPORTS, standard_hierarchy


class SemanticError(ValueError):
    """Raised on a type or resolution error."""


_NUMERIC = {"B", "S", "C", "I", "J", "F", "D"}
_INTEGRAL = {"B", "S", "C", "I", "J"}

#: Widening-conversion partial order for primitives.
_WIDENS_TO = {
    "B": {"S", "I", "J", "F", "D"},
    "S": {"I", "J", "F", "D"},
    "C": {"I", "J", "F", "D"},
    "I": {"J", "F", "D"},
    "J": {"F", "D"},
    "F": {"D"},
    "D": set(),
    "Z": set(),
}


def binary_numeric_promotion(left: str, right: str) -> str:
    """JLS binary numeric promotion on descriptor characters."""
    for wide in ("D", "F", "J"):
        if left == wide or right == wide:
            return wide
    return "I"


class Scope:
    """A lexical scope mapping names to (slot, type)."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.names: Dict[str, Tuple[int, ast.Type]] = {}

    def lookup(self, name: str) -> Optional[Tuple[int, ast.Type]]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def declare(self, name: str, slot: int, typ: ast.Type) -> None:
        if name in self.names:
            raise SemanticError(f"duplicate local variable {name}")
        self.names[name] = (slot, typ)


class Analyzer:
    """Semantic analysis over a set of compilation units."""

    def __init__(self, units: List[ast.CompilationUnit],
                 hierarchy: Optional[Hierarchy] = None):
        self.units = units
        self.hierarchy = hierarchy or standard_hierarchy()
        #: maps simple or dotted source names to internal names, per unit.
        self._unit_imports: Dict[int, Dict[str, str]] = {}
        self._declare_classes()
        self._declare_members()

    # -- hierarchy construction ---------------------------------------

    def _declare_classes(self) -> None:
        for unit in self.units:
            imports = dict(getattr(unit, "imports", {}))
            self._unit_imports[id(unit)] = imports
            package_prefix = (unit.package.replace(".", "/") + "/"
                              if unit.package else "")
            for decl in unit.classes:
                internal = package_prefix + decl.name
                model = ClassModel(internal, is_source=True,
                                   is_interface=decl.is_interface)
                self.hierarchy.add(model)

    def _resolve_class(self, unit: ast.CompilationUnit, name: str) -> str:
        """Resolve a source class name (simple or dotted) to internal."""
        if "." in name or "/" in name:
            internal = name.replace(".", "/")
            if self.hierarchy.has(internal):
                return internal
            raise SemanticError(f"unknown class {name}")
        imports = self._unit_imports[id(unit)]
        if name in imports:
            return imports[name]
        package_prefix = (unit.package.replace(".", "/") + "/"
                          if unit.package else "")
        candidate = package_prefix + name
        if self.hierarchy.has(candidate):
            return candidate
        if name in DEFAULT_IMPORTS:
            return DEFAULT_IMPORTS[name]
        if self.hierarchy.has(name):
            return name
        raise SemanticError(f"unknown class {name}")

    def _resolve_type(self, unit: ast.CompilationUnit,
                      typ: ast.Type) -> ast.Type:
        """Resolve class names inside a source type to internal names."""
        descriptor = typ.descriptor
        depth = 0
        while descriptor.startswith("["):
            depth += 1
            descriptor = descriptor[1:]
        if descriptor.startswith("L"):
            internal = self._resolve_class(unit, descriptor[1:-1])
            descriptor = f"L{internal};"
        return ast.Type("[" * depth + descriptor)

    def _declare_members(self) -> None:
        for unit in self.units:
            package_prefix = (unit.package.replace(".", "/") + "/"
                              if unit.package else "")
            for decl in unit.classes:
                internal = package_prefix + decl.name
                model = self.hierarchy.get(internal)
                if decl.is_interface:
                    model.super_name = "java/lang/Object"
                elif decl.superclass:
                    model.super_name = self._resolve_class(
                        unit, decl.superclass)
                else:
                    model.super_name = "java/lang/Object"
                model.interfaces = [
                    self._resolve_class(unit, i) for i in decl.interfaces]
                for field_decl in decl.fields:
                    field_decl.typ = self._resolve_type(unit, field_decl.typ)
                    constant = None
                    if "final" in field_decl.modifiers and \
                            "static" in field_decl.modifiers:
                        constant = _literal_value(field_decl.init)
                    model.add_field(field_decl.name,
                                    field_decl.typ.descriptor,
                                    "static" in field_decl.modifiers,
                                    constant)
                has_constructor = False
                for method in decl.methods:
                    method.return_type = self._resolve_type(
                        unit, method.return_type)
                    for param in method.params:
                        param.typ = self._resolve_type(unit, param.typ)
                    method.throws = [
                        self._resolve_class(unit, t) for t in method.throws]
                    descriptor = build_method_descriptor(
                        [p.typ.descriptor for p in method.params],
                        method.return_type.descriptor)
                    model.add_method(method.name, descriptor,
                                     method.is_static)
                    if method.is_constructor:
                        has_constructor = True
                if not has_constructor and not decl.is_interface:
                    # The implicit default constructor.
                    default = ast.MethodDecl(
                        ["public"], ast.VOID, "<init>", [], [],
                        ast.Block([]))
                    decl.methods.insert(0, default)
                    model.add_method("<init>", "()V", False)

    # -- per-method analysis -------------------------------------------

    def analyze(self) -> Hierarchy:
        """Analyze every method body; returns the populated hierarchy."""
        for unit in self.units:
            package_prefix = (unit.package.replace(".", "/") + "/"
                              if unit.package else "")
            for decl in unit.classes:
                internal = package_prefix + decl.name
                for method in decl.methods:
                    if method.body is not None:
                        self._analyze_method(unit, internal, decl, method)
                for field_decl in decl.fields:
                    if field_decl.init is not None:
                        context = _MethodContext(
                            self, unit, internal,
                            is_static="static" in field_decl.modifiers)
                        context.check_expr(field_decl.init)
                        _require_assignable(
                            self.hierarchy, field_decl.init.typ,
                            field_decl.typ,
                            f"field {field_decl.name} initializer")
        return self.hierarchy

    def _analyze_method(self, unit: ast.CompilationUnit, internal: str,
                        decl: ast.ClassDecl,
                        method: ast.MethodDecl) -> None:
        context = _MethodContext(self, unit, internal, method.is_static,
                                 method.return_type)
        scope = Scope()
        slot = 0
        if not method.is_static:
            slot = 1  # local 0 is `this`
        for param in method.params:
            scope.declare(param.name, slot, param.typ)
            slot += slot_width(param.typ.descriptor)
        context.next_slot = slot
        context.check_block(method.body, scope)
        method.locals_size = max(context.max_slot, slot)  # type: ignore


def _literal_value(expr: Optional[ast.Expr]) -> Optional[object]:
    """Constant value of a literal initializer, for ConstantValue."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, (ast.LongLit,)):
        return ("long", expr.value)
    if isinstance(expr, ast.FloatLit):
        return ("float", expr.value)
    if isinstance(expr, ast.DoubleLit):
        return ("double", expr.value)
    if isinstance(expr, ast.StringLit):
        return ("string", expr.value)
    if isinstance(expr, ast.BoolLit):
        return 1 if expr.value else 0
    if isinstance(expr, ast.CharLit):
        return ord(expr.value)
    return None


def _require_assignable(hierarchy: Hierarchy, source: Optional[ast.Type],
                        target: ast.Type, where: str) -> None:
    if source is None:
        raise SemanticError(f"{where}: untyped expression")
    if _assignable(hierarchy, source, target):
        return
    raise SemanticError(
        f"{where}: cannot assign {source.descriptor} to "
        f"{target.descriptor}")


def _assignable(hierarchy: Hierarchy, source: ast.Type,
                target: ast.Type) -> bool:
    if source.descriptor == target.descriptor:
        return True
    if source.descriptor == ast.NULL.descriptor:
        return target.is_reference
    if source.is_primitive and target.is_primitive:
        return target.descriptor in _WIDENS_TO.get(source.descriptor, ())
    if source.is_reference and target.is_reference:
        if target.descriptor == ast.OBJECT.descriptor:
            return True
        if source.is_array or target.is_array:
            return source.descriptor == target.descriptor
        return hierarchy.is_subtype(source.descriptor[1:-1],
                                    target.descriptor[1:-1])
    return False


def _chain_to_dotted(expr: ast.Expr) -> Optional[str]:
    """If ``expr`` is a pure Name/FieldAccess chain, its dotted text."""
    if isinstance(expr, ast.Name):
        return expr.identifier
    if isinstance(expr, ast.FieldAccess) and expr.receiver is not None:
        prefix = _chain_to_dotted(expr.receiver)
        if prefix is not None:
            return f"{prefix}.{expr.name}"
    return None


class _MethodContext:
    """State for analyzing one method body (or field initializer)."""

    def __init__(self, analyzer: Analyzer, unit: ast.CompilationUnit,
                 class_name: str, is_static: bool,
                 return_type: ast.Type = ast.VOID):
        self.analyzer = analyzer
        self.hierarchy = analyzer.hierarchy
        self.unit = unit
        self.class_name = class_name
        self.is_static = is_static
        self.return_type = return_type
        self.next_slot = 0
        self.max_slot = 0
        self.loop_depth = 0

    # -- statements -----------------------------------------------------

    def check_block(self, block: ast.Block, scope: Scope) -> None:
        inner = Scope(scope)
        saved_slot = self.next_slot
        for statement in block.statements:
            self.check_stmt(statement, inner)
        # Slots of block-scoped locals are reusable after the block,
        # exactly as javac allocates them.
        self.next_slot = saved_slot

    def check_stmt(self, statement: ast.Stmt, scope: Scope) -> None:
        if isinstance(statement, ast.Block):
            self.check_block(statement, scope)
        elif isinstance(statement, ast.LocalDecl):
            if statement.init is not None:
                self.check_expr(statement.init, scope)
            statement.typ = self.analyzer._resolve_type(
                self.unit, statement.typ)
            if statement.init is not None:
                _require_assignable(self.hierarchy, statement.init.typ,
                                    statement.typ,
                                    f"local {statement.name}")
            slot = self.next_slot
            scope.declare(statement.name, slot, statement.typ)
            statement.slot = slot  # type: ignore[attr-defined]
            self.next_slot += slot_width(statement.typ.descriptor)
            self.max_slot = max(self.max_slot, self.next_slot)
        elif isinstance(statement, ast.ExprStmt):
            self.check_expr(statement.expr, scope)
        elif isinstance(statement, ast.If):
            self._check_condition(statement.cond, scope)
            self.check_stmt(statement.then, scope)
            if statement.otherwise is not None:
                self.check_stmt(statement.otherwise, scope)
        elif isinstance(statement, ast.While):
            self._check_condition(statement.cond, scope)
            self.loop_depth += 1
            self.check_stmt(statement.body, scope)
            self.loop_depth -= 1
        elif isinstance(statement, ast.For):
            inner = Scope(scope)
            saved_slot = self.next_slot
            if statement.init is not None:
                self.check_stmt(statement.init, inner)
            if statement.cond is not None:
                self._check_condition(statement.cond, inner)
            if statement.update is not None:
                self.check_expr(statement.update, inner)
            self.loop_depth += 1
            self.check_stmt(statement.body, inner)
            self.loop_depth -= 1
            self.next_slot = saved_slot
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self.check_expr(statement.value, scope)
                _require_assignable(self.hierarchy, statement.value.typ,
                                    self.return_type, "return")
            elif self.return_type.descriptor != "V":
                raise SemanticError("missing return value")
        elif isinstance(statement, ast.Throw):
            self.check_expr(statement.value, scope)
            if not statement.value.typ.is_reference:
                raise SemanticError("throw of a non-reference value")
        elif isinstance(statement, ast.Try):
            self.check_block(statement.body, scope)
            resolved = []
            for exc_name, var, handler in statement.catches:
                internal = self.analyzer._resolve_class(self.unit, exc_name)
                inner = Scope(scope)
                slot = self.next_slot
                exc_type = ast.Type(f"L{internal};")
                inner.declare(var, slot, exc_type)
                self.next_slot += 1
                self.max_slot = max(self.max_slot, self.next_slot)
                self.check_block(handler, inner)
                self.next_slot = slot
                resolved.append((internal, slot, handler))
            statement.resolved_catches = resolved  # type: ignore
        elif isinstance(statement, ast.Switch):
            self.check_expr(statement.selector, scope)
            if statement.selector.typ.descriptor not in ("I", "B", "S", "C"):
                raise SemanticError("switch selector must be int-like")
            for _, statements in statement.cases:
                inner = Scope(scope)
                for sub in statements:
                    self.check_stmt(sub, inner)
        elif isinstance(statement, (ast.Break, ast.Continue)):
            pass  # validity is contextual; codegen checks targets exist
        else:  # pragma: no cover - exhaustive over Stmt
            raise SemanticError(f"unknown statement {statement!r}")

    def _check_condition(self, expr: ast.Expr, scope: Scope) -> None:
        self.check_expr(expr, scope)
        if expr.typ.descriptor != "Z":
            raise SemanticError(
                f"condition must be boolean, got {expr.typ.descriptor}")

    # -- expressions ------------------------------------------------------

    def check_expr(self, expr: ast.Expr,
                   scope: Optional[Scope] = None) -> ast.Type:
        scope = scope or Scope()
        typ = self._expr(expr, scope)
        expr.typ = typ
        return typ

    def _expr(self, expr: ast.Expr, scope: Scope) -> ast.Type:
        if isinstance(expr, ast.IntLit):
            return ast.INT
        if isinstance(expr, ast.LongLit):
            return ast.LONG
        if isinstance(expr, ast.FloatLit):
            return ast.FLOAT
        if isinstance(expr, ast.DoubleLit):
            return ast.DOUBLE
        if isinstance(expr, ast.BoolLit):
            return ast.BOOLEAN
        if isinstance(expr, ast.CharLit):
            return ast.CHAR
        if isinstance(expr, ast.StringLit):
            return ast.STRING
        if isinstance(expr, ast.NullLit):
            return ast.NULL
        if isinstance(expr, ast.This):
            if self.is_static:
                raise SemanticError("'this' in a static context")
            return ast.Type(f"L{self.class_name};")
        if isinstance(expr, ast.Name):
            return self._name(expr, scope)
        if isinstance(expr, ast.FieldAccess):
            return self._field_access(expr, scope)
        if isinstance(expr, ast.ArrayIndex):
            array_type = self.check_expr(expr.array, scope)
            index_type = self.check_expr(expr.index, scope)
            if index_type.descriptor not in ("I", "B", "S", "C"):
                raise SemanticError("array index must be int")
            if not array_type.is_array:
                raise SemanticError(
                    f"indexing non-array {array_type.descriptor}")
            return array_type.element
        if isinstance(expr, ast.ArrayLength):
            array_type = self.check_expr(expr.array, scope)
            if not array_type.is_array:
                # `.length` on a String parses as ArrayLength; treat it
                # as the length() call.
                raise SemanticError(
                    f".length on non-array {array_type.descriptor}")
            return ast.INT
        if isinstance(expr, ast.Call):
            return self._call(expr, scope)
        if isinstance(expr, ast.New):
            return self._new(expr, scope)
        if isinstance(expr, ast.NewArray):
            expr.element_type = self.analyzer._resolve_type(
                self.unit, expr.element_type)
            length_type = self.check_expr(expr.length, scope)
            if length_type.descriptor not in ("I", "B", "S", "C"):
                raise SemanticError("array length must be int")
            return expr.element_type.array_of()
        if isinstance(expr, ast.Unary):
            return self._unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, scope)
        if isinstance(expr, ast.Cast):
            expr.target = self.analyzer._resolve_type(self.unit, expr.target)
            self.check_expr(expr.operand, scope)
            return expr.target
        if isinstance(expr, ast.InstanceOf):
            self.check_expr(expr.operand, scope)
            expr.internal_name = self.analyzer._resolve_class(  # type: ignore
                self.unit, expr.class_name)
            return ast.BOOLEAN
        if isinstance(expr, ast.Assign):
            return self._assign(expr, scope)
        if isinstance(expr, ast.Conditional):
            self._check_condition(expr.cond, scope)
            then_type = self.check_expr(expr.then, scope)
            else_type = self.check_expr(expr.otherwise, scope)
            if then_type.descriptor == ast.NULL.descriptor:
                return else_type
            return then_type
        raise SemanticError(f"unknown expression {expr!r}")

    def _name(self, expr: ast.Name, scope: Scope) -> ast.Type:
        local = scope.lookup(expr.identifier)
        if local is not None:
            slot, typ = local
            expr.res = ("local", slot)  # type: ignore[attr-defined]
            return typ
        # An unqualified name: a field of this class (or a supertype).
        try:
            owner, field_model = self.hierarchy.find_field(
                self.class_name, expr.identifier)
        except ResolutionError:
            raise SemanticError(
                f"cannot resolve name {expr.identifier!r} in "
                f"{self.class_name}") from None
        expr.res = ("field", owner, field_model.name,  # type: ignore
                    field_model.descriptor, field_model.is_static)
        return ast.Type(field_model.descriptor)

    def _field_access(self, expr: ast.FieldAccess, scope: Scope) -> ast.Type:
        # Try the receiver as an expression first; fall back to
        # interpreting the whole prefix chain as a class name (static).
        receiver_type: Optional[ast.Type] = None
        if expr.receiver is not None:
            try:
                receiver_type = self.check_expr(expr.receiver, scope)
            except SemanticError:
                receiver_type = None
        if receiver_type is not None:
            if not receiver_type.descriptor.startswith("L"):
                raise SemanticError(
                    f"field access on {receiver_type.descriptor}")
            owner_name = receiver_type.descriptor[1:-1]
            owner, field_model = self.hierarchy.find_field(
                owner_name, expr.name)
            expr.res = ("field", owner, field_model.name,  # type: ignore
                        field_model.descriptor, field_model.is_static)
            return ast.Type(field_model.descriptor)
        dotted = _chain_to_dotted(expr.receiver) if expr.receiver else \
            expr.class_name
        if dotted is None:
            raise SemanticError(f"cannot resolve receiver of .{expr.name}")
        internal = self.analyzer._resolve_class(self.unit, dotted)
        owner, field_model = self.hierarchy.find_field(internal, expr.name)
        if not field_model.is_static:
            raise SemanticError(
                f"static access to instance field {expr.name}")
        expr.receiver = None  # static: no receiver expression to emit
        expr.class_name = internal
        expr.res = ("field", owner, field_model.name,  # type: ignore
                    field_model.descriptor, True)
        return ast.Type(field_model.descriptor)

    def _pick_overload(self, overloads: List[MethodModel],
                       arg_types: List[ast.Type],
                       where: str) -> MethodModel:
        exact = None
        applicable = []
        for method in overloads:
            params = method.arg_types
            if len(params) != len(arg_types):
                continue
            if all(p == a.descriptor for p, a in zip(params, arg_types)):
                exact = method
                break
            if all(_assignable(self.hierarchy, a, ast.Type(p))
                   for p, a in zip(params, arg_types)):
                applicable.append(method)
        if exact is not None:
            return exact
        if applicable:
            # Prefer the most specific: fewest widening steps (proxy:
            # lexicographically smallest descriptor among applicable).
            return sorted(applicable, key=lambda m: m.descriptor)[0]
        signature = ", ".join(a.descriptor for a in arg_types)
        raise SemanticError(f"{where}: no applicable overload "
                            f"for ({signature})")

    def _call(self, expr: ast.Call, scope: Scope) -> ast.Type:
        arg_types = [self.check_expr(arg, scope) for arg in expr.args]
        if expr.is_super:
            model = self.hierarchy.get(self.class_name)
            owner = model.super_name or "java/lang/Object"
            overloads = self.hierarchy.find_methods(owner, expr.name)
            method = self._pick_overload(overloads, arg_types,
                                         f"super.{expr.name}")
            expr.resolved = method  # type: ignore[attr-defined]
            expr.kind = "special"  # type: ignore[attr-defined]
            expr.owner = owner  # type: ignore[attr-defined]
            return ast.Type(method.return_type)
        receiver_type: Optional[ast.Type] = None
        owner: Optional[str] = None
        if expr.receiver is not None:
            try:
                receiver_type = self.check_expr(expr.receiver, scope)
            except SemanticError:
                receiver_type = None
            if receiver_type is None:
                dotted = _chain_to_dotted(expr.receiver)
                if dotted is None:
                    raise SemanticError(
                        f"cannot resolve receiver of {expr.name}()")
                owner = self.analyzer._resolve_class(self.unit, dotted)
                expr.receiver = None
                expr.class_name = owner
            else:
                if not receiver_type.descriptor.startswith("L"):
                    raise SemanticError(
                        f"method call on {receiver_type.descriptor}")
                owner = receiver_type.descriptor[1:-1]
        elif expr.class_name is not None:
            owner = self.analyzer._resolve_class(self.unit, expr.class_name)
            expr.class_name = owner
        else:
            owner = self.class_name
        overloads = self.hierarchy.find_methods(owner, expr.name)
        method = self._pick_overload(overloads, arg_types, expr.name)
        expr.resolved = method  # type: ignore[attr-defined]
        expr.owner = owner  # type: ignore[attr-defined]
        if method.is_static:
            expr.kind = "static"  # type: ignore[attr-defined]
        elif self.hierarchy.is_interface(owner):
            expr.kind = "interface"  # type: ignore[attr-defined]
        elif expr.name == "<init>":
            expr.kind = "special"  # type: ignore[attr-defined]
        else:
            expr.kind = "virtual"  # type: ignore[attr-defined]
        if not method.is_static and expr.receiver is None and \
                expr.class_name is None:
            if self.is_static:
                raise SemanticError(
                    f"instance method {expr.name} called from static "
                    "context")
        return ast.Type(method.return_type)

    def _new(self, expr: ast.New, scope: Scope) -> ast.Type:
        internal = self.analyzer._resolve_class(self.unit, expr.class_name)
        expr.class_name = internal
        arg_types = [self.check_expr(arg, scope) for arg in expr.args]
        overloads = self.hierarchy.find_methods(internal, "<init>")
        # Constructors are not inherited: keep only this class's own.
        own = [m for m in overloads if m.owner == internal]
        method = self._pick_overload(own or overloads, arg_types,
                                     f"new {internal}")
        expr.ctor = method  # type: ignore[attr-defined]
        return ast.Type(f"L{internal};")

    def _unary(self, expr: ast.Unary, scope: Scope) -> ast.Type:
        operand_type = self.check_expr(expr.operand, scope)
        descriptor = operand_type.descriptor
        if expr.op == "-":
            if descriptor not in _NUMERIC:
                raise SemanticError(f"unary - on {descriptor}")
            if descriptor in ("B", "S", "C"):
                return ast.INT
            return operand_type
        if expr.op == "!":
            if descriptor != "Z":
                raise SemanticError(f"unary ! on {descriptor}")
            return ast.BOOLEAN
        if expr.op == "~":
            if descriptor not in _INTEGRAL:
                raise SemanticError(f"unary ~ on {descriptor}")
            return ast.LONG if descriptor == "J" else ast.INT
        raise SemanticError(f"unknown unary operator {expr.op}")

    def _binary(self, expr: ast.Binary, scope: Scope) -> ast.Type:
        left = self.check_expr(expr.left, scope)
        right = self.check_expr(expr.right, scope)
        op = expr.op
        expr.is_concat = False  # type: ignore[attr-defined]
        if op == "+" and (left.descriptor == ast.STRING.descriptor or
                          right.descriptor == ast.STRING.descriptor):
            expr.is_concat = True  # type: ignore[attr-defined]
            return ast.STRING
        if op in ("&&", "||"):
            if left.descriptor != "Z" or right.descriptor != "Z":
                raise SemanticError(f"{op} requires booleans")
            return ast.BOOLEAN
        if op in ("==", "!="):
            if left.is_reference or left.descriptor == "Lnull;" or \
                    right.is_reference or right.descriptor == "Lnull;":
                expr.operand_type = "A"  # type: ignore[attr-defined]
                return ast.BOOLEAN
            if left.descriptor == "Z" and right.descriptor == "Z":
                expr.operand_type = "I"  # type: ignore[attr-defined]
                return ast.BOOLEAN
            promoted = binary_numeric_promotion(left.descriptor,
                                                right.descriptor)
            expr.operand_type = promoted  # type: ignore[attr-defined]
            return ast.BOOLEAN
        if op in ("<", "<=", ">", ">="):
            if left.descriptor not in _NUMERIC or \
                    right.descriptor not in _NUMERIC:
                raise SemanticError(f"{op} requires numeric operands")
            promoted = binary_numeric_promotion(left.descriptor,
                                                right.descriptor)
            expr.operand_type = promoted  # type: ignore[attr-defined]
            return ast.BOOLEAN
        if op in ("&", "|", "^"):
            if left.descriptor == "Z" and right.descriptor == "Z":
                expr.operand_type = "I"  # type: ignore[attr-defined]
                return ast.BOOLEAN
            promoted = binary_numeric_promotion(left.descriptor,
                                                right.descriptor)
            if promoted not in ("I", "J"):
                raise SemanticError(f"{op} requires integral operands")
            expr.operand_type = promoted  # type: ignore[attr-defined]
            return ast.LONG if promoted == "J" else ast.INT
        if op in ("<<", ">>", ">>>"):
            if left.descriptor not in _INTEGRAL or \
                    right.descriptor not in _INTEGRAL:
                raise SemanticError(f"{op} requires integral operands")
            promoted = "J" if left.descriptor == "J" else "I"
            expr.operand_type = promoted  # type: ignore[attr-defined]
            return ast.LONG if promoted == "J" else ast.INT
        if op in ("+", "-", "*", "/", "%"):
            if left.descriptor not in _NUMERIC or \
                    right.descriptor not in _NUMERIC:
                raise SemanticError(
                    f"{op} on {left.descriptor}, {right.descriptor}")
            promoted = binary_numeric_promotion(left.descriptor,
                                                right.descriptor)
            expr.operand_type = promoted  # type: ignore[attr-defined]
            return ast.Type(promoted)
        raise SemanticError(f"unknown binary operator {op}")

    def _assign(self, expr: ast.Assign, scope: Scope) -> ast.Type:
        rhs_type = self.check_expr(expr.rhs, scope)
        lhs = expr.lhs
        if isinstance(lhs, (ast.Name, ast.FieldAccess)):
            lhs_type = self.check_expr(lhs, scope)
        elif isinstance(lhs, ast.ArrayIndex):
            lhs_type = self.check_expr(lhs, scope)
        else:
            raise SemanticError(f"invalid assignment target {lhs!r}")
        _require_assignable(self.hierarchy, rhs_type, lhs_type, "assignment")
        return lhs_type


def analyze(units: List[ast.CompilationUnit],
            hierarchy: Optional[Hierarchy] = None) -> Hierarchy:
    """Run semantic analysis over ``units``; returns the hierarchy."""
    return Analyzer(units, hierarchy).analyze()
