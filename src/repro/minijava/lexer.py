"""Mini-Java lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = frozenset({
    "abstract", "boolean", "break", "byte", "case", "catch", "char",
    "class", "continue", "default", "do", "double", "else", "extends",
    "false", "final", "float", "for", "if", "implements", "import",
    "instanceof", "int", "interface", "long", "native", "new", "null",
    "package", "private", "protected", "public", "return", "short",
    "static", "super", "switch", "synchronized", "this", "throw",
    "throws", "transient", "true", "try", "void", "volatile", "while",
})

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    ">>>=", "<<=", ">>=", ">>>", "==", "!=", "<=", ">=", "&&", "||",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<",
    ">>", "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|",
    "^", "?", ":", ".", ",", ";", "(", ")", "{", "}", "[", "]",
]


class LexError(ValueError):
    """Raised on malformed source text."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'keyword', 'int', 'long', 'float', 'double',
    #            'char', 'string', 'op', 'eof'
    text: str
    line: int


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f",
    "'": "'", '"': '"', "\\": "\\", "0": "\0",
}


def _scan_escape(source: str, pos: int, line: int) -> (str, int):
    char = source[pos]
    if char == "u":
        hex_digits = source[pos + 1:pos + 5]
        if len(hex_digits) != 4:
            raise LexError("truncated unicode escape", line)
        return chr(int(hex_digits, 16)), pos + 5
    if char in _ESCAPES:
        return _ESCAPES[char], pos + 1
    raise LexError(f"bad escape \\{char}", line)


def tokenize(source: str) -> List[Token]:
    """Tokenize mini-Java source into a token list ending with EOF."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        char = source[pos]
        if char == "\n":
            line += 1
            pos += 1
            continue
        if char in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if char.isalpha() or char in "_$":
            start = pos
            while pos < length and (source[pos].isalnum() or
                                    source[pos] in "_$"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue
        if char.isdigit() or (char == "." and pos + 1 < length and
                              source[pos + 1].isdigit()):
            token, pos = _scan_number(source, pos, line)
            tokens.append(token)
            continue
        if char == '"':
            text, pos = _scan_string(source, pos, line)
            tokens.append(Token("string", text, line))
            continue
        if char == "'":
            text, pos = _scan_char(source, pos, line)
            tokens.append(Token("char", text, line))
            continue
        for operator in OPERATORS:
            if source.startswith(operator, pos):
                tokens.append(Token("op", operator, line))
                pos += len(operator)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens


def _scan_number(source: str, pos: int, line: int) -> (Token, int):
    start = pos
    length = len(source)
    if source.startswith(("0x", "0X"), pos):
        pos += 2
        while pos < length and source[pos] in "0123456789abcdefABCDEF":
            pos += 1
        if pos < length and source[pos] in "lL":
            return Token("long", source[start:pos], line), pos + 1
        return Token("int", source[start:pos], line), pos
    is_float = False
    while pos < length and source[pos].isdigit():
        pos += 1
    if pos < length and source[pos] == "." and pos + 1 < length and \
            source[pos + 1].isdigit():
        is_float = True
        pos += 1
        while pos < length and source[pos].isdigit():
            pos += 1
    if pos < length and source[pos] in "eE":
        is_float = True
        pos += 1
        if pos < length and source[pos] in "+-":
            pos += 1
        while pos < length and source[pos].isdigit():
            pos += 1
    if pos < length and source[pos] in "fF":
        return Token("float", source[start:pos], line), pos + 1
    if pos < length and source[pos] in "dD":
        return Token("double", source[start:pos], line), pos + 1
    if pos < length and source[pos] in "lL":
        if is_float:
            raise LexError("'L' suffix on floating literal", line)
        return Token("long", source[start:pos], line), pos + 1
    if is_float:
        return Token("double", source[start:pos], line), pos
    return Token("int", source[start:pos], line), pos


def _scan_string(source: str, pos: int, line: int) -> (str, int):
    pos += 1  # opening quote
    chars: List[str] = []
    length = len(source)
    while pos < length:
        char = source[pos]
        if char == '"':
            return "".join(chars), pos + 1
        if char == "\n":
            raise LexError("newline in string literal", line)
        if char == "\\":
            escaped, pos = _scan_escape(source, pos + 1, line)
            chars.append(escaped)
            continue
        chars.append(char)
        pos += 1
    raise LexError("unterminated string literal", line)


def _scan_char(source: str, pos: int, line: int) -> (str, int):
    pos += 1  # opening quote
    if pos >= len(source):
        raise LexError("unterminated char literal", line)
    if source[pos] == "\\":
        char, pos = _scan_escape(source, pos + 1, line)
    else:
        char = source[pos]
        pos += 1
    if pos >= len(source) or source[pos] != "'":
        raise LexError("unterminated char literal", line)
    return char, pos + 1


def token_stream(source: str) -> Iterator[Token]:
    """Iterator form of :func:`tokenize` (convenience)."""
    return iter(tokenize(source))
