"""Abstract syntax tree for mini-Java.

Mini-Java is the source language of the compiler we use to synthesize
realistic class files (the paper's corpus was compiled by javac, which
is unavailable offline).  It covers the subset of Java 1.2 that drives
the statistics the paper's compression techniques exploit: packages,
classes with inheritance and interfaces, overloaded methods, fields
with constant values, all primitive types, strings and string
concatenation, arrays, the full statement repertoire (including
``switch``), and exception handler syntax (``try``/``catch``/``throw``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# -- types ------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """A source-level type, stored as a JVM descriptor string."""

    descriptor: str

    @property
    def is_primitive(self) -> bool:
        return len(self.descriptor) == 1

    @property
    def is_array(self) -> bool:
        return self.descriptor.startswith("[")

    @property
    def is_reference(self) -> bool:
        return self.descriptor.startswith(("L", "["))

    @property
    def element(self) -> "Type":
        if not self.is_array:
            raise ValueError(f"not an array type: {self.descriptor}")
        return Type(self.descriptor[1:])

    def array_of(self) -> "Type":
        return Type("[" + self.descriptor)


INT = Type("I")
LONG = Type("J")
FLOAT = Type("F")
DOUBLE = Type("D")
BOOLEAN = Type("Z")
CHAR = Type("C")
BYTE = Type("B")
SHORT = Type("S")
VOID = Type("V")
STRING = Type("Ljava/lang/String;")
OBJECT = Type("Ljava/lang/Object;")
NULL = Type("Lnull;")  # the type of the null literal; assignable anywhere


# -- expressions ------------------------------------------------------


@dataclass
class Expr:
    """Base class; ``typ`` is filled in by semantic analysis."""

    typ: Optional[Type] = field(default=None, init=False, repr=False)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class LongLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class DoubleLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class CharLit(Expr):
    value: str


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Name(Expr):
    """An identifier; resolved to a local, field, or class by analysis."""

    identifier: str


@dataclass
class This(Expr):
    pass


@dataclass
class FieldAccess(Expr):
    """``receiver.name`` — receiver may be an expression or a class name."""

    receiver: Optional[Expr]
    #: Qualified class name when this is a static access; filled by
    #: the parser for ``pkg.Cls.field`` shapes, else by analysis.
    class_name: Optional[str]
    name: str


@dataclass
class ArrayIndex(Expr):
    array: Expr
    index: Expr


@dataclass
class ArrayLength(Expr):
    array: Expr


@dataclass
class Call(Expr):
    """A method call.  Exactly one of receiver/class_name is set for
    instance/static calls; both are None for unqualified calls."""

    receiver: Optional[Expr]
    class_name: Optional[str]
    name: str
    args: List[Expr]
    #: True for ``super.m(...)`` calls.
    is_super: bool = False


@dataclass
class New(Expr):
    class_name: str
    args: List[Expr]


@dataclass
class NewArray(Expr):
    element_type: Type
    length: Expr


@dataclass
class Unary(Expr):
    op: str  # '-', '!', '~'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # + - * / % << >> >>> & | ^ < <= > >= == != && ||
    left: Expr
    right: Expr


@dataclass
class Cast(Expr):
    target: Type
    operand: Expr


@dataclass
class InstanceOf(Expr):
    operand: Expr
    class_name: str


@dataclass
class Assign(Expr):
    """``lhs = rhs`` (also used for compound ops after desugaring)."""

    lhs: Expr
    rhs: Expr


@dataclass
class Conditional(Expr):
    """``cond ? then : otherwise``."""

    cond: Expr
    then: Expr
    otherwise: Expr


# -- statements -------------------------------------------------------


@dataclass
class Stmt:
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt]


@dataclass
class LocalDecl(Stmt):
    typ: Type
    name: str
    init: Optional[Expr]


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt]


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    update: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Throw(Stmt):
    value: Expr


@dataclass
class Try(Stmt):
    body: Block
    #: ``(exception class name, variable name, handler block)`` rows.
    catches: List[Tuple[str, str, Block]]


@dataclass
class Switch(Stmt):
    selector: Expr
    #: ``(match values, statements)``; ``None`` match = default.
    cases: List[Tuple[Optional[List[int]], List[Stmt]]]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- declarations -----------------------------------------------------


@dataclass
class FieldDecl:
    modifiers: List[str]
    typ: Type
    name: str
    init: Optional[Expr]


@dataclass
class Param:
    typ: Type
    name: str


@dataclass
class MethodDecl:
    modifiers: List[str]
    return_type: Type
    name: str
    params: List[Param]
    throws: List[str]
    body: Optional[Block]  # None for abstract/interface methods

    @property
    def is_static(self) -> bool:
        return "static" in self.modifiers

    @property
    def is_constructor(self) -> bool:
        return self.name == "<init>"


@dataclass
class ClassDecl:
    modifiers: List[str]
    name: str  # simple name
    superclass: Optional[str]
    interfaces: List[str]
    fields: List[FieldDecl]
    methods: List[MethodDecl]
    is_interface: bool = False


@dataclass
class CompilationUnit:
    package: str  # dotted, may be ""
    classes: List[ClassDecl]

    def qualified_names(self) -> List[str]:
        prefix = self.package.replace(".", "/") + "/" if self.package else ""
        return [prefix + c.name for c in self.classes]
