"""Recursive-descent parser for mini-Java."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import ast
from .lexer import Token, tokenize

_PRIMITIVE_TYPES = {
    "int": ast.INT, "long": ast.LONG, "float": ast.FLOAT,
    "double": ast.DOUBLE, "boolean": ast.BOOLEAN, "char": ast.CHAR,
    "byte": ast.BYTE, "short": ast.SHORT, "void": ast.VOID,
}

_MODIFIERS = frozenset({
    "public", "private", "protected", "static", "final", "abstract",
    "native", "synchronized", "transient", "volatile",
})

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7, "instanceof": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_OPS = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
    ">>>=": ">>>",
}


class ParseError(ValueError):
    """Raised on a syntax error, with the offending line number."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} "
                         f"(at {token.kind} {token.text!r})")
        self.token = token


class Parser:
    """One-pass recursive-descent parser over a token list."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        #: simple name -> qualified (slash-separated) name, from imports.
        self.imports: Dict[str, str] = {}

    # -- token helpers --------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            wanted = text if text is not None else kind
            raise ParseError(f"expected {wanted!r}", self.peek())
        return token

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    # -- compilation unit -----------------------------------------------

    def parse_unit(self) -> ast.CompilationUnit:
        package = ""
        if self.accept("keyword", "package"):
            package = self._dotted_name()
            self.expect("op", ";")
        while self.accept("keyword", "import"):
            qualified = self._dotted_name()
            self.expect("op", ";")
            simple = qualified.rsplit(".", 1)[-1]
            self.imports[simple] = qualified.replace(".", "/")
        classes: List[ast.ClassDecl] = []
        while not self.at("eof"):
            classes.append(self._class_decl())
        return ast.CompilationUnit(package, classes)

    def _dotted_name(self) -> str:
        parts = [self.expect("ident").text]
        while self.at("op", ".") and self.peek(1).kind == "ident":
            self.next()
            parts.append(self.expect("ident").text)
        return ".".join(parts)

    def _modifiers(self) -> List[str]:
        modifiers: List[str] = []
        while self.peek().kind == "keyword" and \
                self.peek().text in _MODIFIERS:
            modifiers.append(self.next().text)
        return modifiers

    def _class_decl(self) -> ast.ClassDecl:
        modifiers = self._modifiers()
        is_interface = False
        if self.accept("keyword", "interface"):
            is_interface = True
        else:
            self.expect("keyword", "class")
        name = self.expect("ident").text
        superclass: Optional[str] = None
        interfaces: List[str] = []
        if self.accept("keyword", "extends"):
            if is_interface:
                interfaces.append(self._type_name())
                while self.accept("op", ","):
                    interfaces.append(self._type_name())
            else:
                superclass = self._type_name()
        if self.accept("keyword", "implements"):
            interfaces.append(self._type_name())
            while self.accept("op", ","):
                interfaces.append(self._type_name())
        self.expect("op", "{")
        fields: List[ast.FieldDecl] = []
        methods: List[ast.MethodDecl] = []
        while not self.accept("op", "}"):
            self._member(name, fields, methods, is_interface)
        return ast.ClassDecl(modifiers, name, superclass, interfaces,
                             fields, methods, is_interface)

    def _type_name(self) -> str:
        """A possibly-qualified class name, as written in the source."""
        return self._dotted_name()

    def _member(self, class_name: str, fields: List[ast.FieldDecl],
                methods: List[ast.MethodDecl], is_interface: bool) -> None:
        modifiers = self._modifiers()
        # Constructor: identifier matching the class name followed by '('.
        if self.at("ident", class_name) and self.peek(1).text == "(":
            self.next()
            params = self._params()
            throws = self._throws()
            body = self._block()
            methods.append(ast.MethodDecl(
                modifiers, ast.VOID, "<init>", params, throws, body))
            return
        typ = self._type()
        name = self.expect("ident").text
        if self.at("op", "("):
            params = self._params()
            throws = self._throws()
            if is_interface or "abstract" in modifiers or \
                    "native" in modifiers:
                self.expect("op", ";")
                body = None
            else:
                body = self._block()
            methods.append(ast.MethodDecl(
                modifiers, typ, name, params, throws, body))
            return
        # Field declaration(s), possibly comma-separated.
        while True:
            init = None
            if self.accept("op", "="):
                init = self._expression()
            fields.append(ast.FieldDecl(list(modifiers), typ, name, init))
            if not self.accept("op", ","):
                break
            name = self.expect("ident").text
        self.expect("op", ";")

    def _params(self) -> List[ast.Param]:
        self.expect("op", "(")
        params: List[ast.Param] = []
        if not self.at("op", ")"):
            while True:
                typ = self._type()
                name = self.expect("ident").text
                params.append(ast.Param(typ, name))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return params

    def _throws(self) -> List[str]:
        throws: List[str] = []
        if self.accept("keyword", "throws"):
            throws.append(self._type_name())
            while self.accept("op", ","):
                throws.append(self._type_name())
        return throws

    # -- types ------------------------------------------------------------

    def _type(self) -> ast.Type:
        token = self.peek()
        if token.kind == "keyword" and token.text in _PRIMITIVE_TYPES:
            self.next()
            typ = _PRIMITIVE_TYPES[token.text]
        else:
            name = self._type_name()
            # Source names are dotted; resolution to internal names
            # happens in semantic analysis.  Store a marker descriptor.
            typ = ast.Type("L" + name.replace(".", "/") + ";")
        while self.at("op", "[") and self.peek(1).text == "]":
            self.next()
            self.next()
            typ = typ.array_of()
        return typ

    def _looks_like_type(self) -> bool:
        """Heuristic for statement-level local declarations."""
        token = self.peek()
        if token.kind == "keyword" and token.text in _PRIMITIVE_TYPES and \
                token.text != "void":
            return True
        if token.kind != "ident":
            return False
        # ident ident       -> declaration (Foo x)
        # ident [ ] ident   -> declaration (Foo[] x)
        # ident . ident ... -> could be qualified type; scan past dots.
        ahead = 1
        while self.peek(ahead).text == "." and \
                self.peek(ahead + 1).kind == "ident":
            ahead += 2
        while self.peek(ahead).text == "[" and \
                self.peek(ahead + 1).text == "]":
            ahead += 2
        return self.peek(ahead).kind == "ident"

    # -- statements ---------------------------------------------------------

    def _block(self) -> ast.Block:
        self.expect("op", "{")
        statements: List[ast.Stmt] = []
        while not self.accept("op", "}"):
            statements.append(self._statement())
        return ast.Block(statements)

    def _statement(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "op" and token.text == "{":
            return self._block()
        if token.kind == "op" and token.text == ";":
            self.next()
            return ast.Block([])
        if token.kind == "keyword":
            handler = getattr(self, f"_stmt_{token.text}", None)
            if handler is not None:
                return handler()
        if self._looks_like_type():
            return self._local_decl()
        expr = self._expression()
        self.expect("op", ";")
        return ast.ExprStmt(expr)

    def _local_decl(self) -> ast.Stmt:
        typ = self._type()
        declarations: List[ast.Stmt] = []
        while True:
            name = self.expect("ident").text
            var_type = typ
            while self.at("op", "[") and self.peek(1).text == "]":
                self.next()
                self.next()
                var_type = var_type.array_of()
            init = None
            if self.accept("op", "="):
                init = self._expression()
            declarations.append(ast.LocalDecl(var_type, name, init))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.Block(declarations)

    def _stmt_if(self) -> ast.Stmt:
        self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self._expression()
        self.expect("op", ")")
        then = self._statement()
        otherwise = None
        if self.accept("keyword", "else"):
            otherwise = self._statement()
        return ast.If(cond, then, otherwise)

    def _stmt_while(self) -> ast.Stmt:
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self._expression()
        self.expect("op", ")")
        return ast.While(cond, self._statement())

    def _stmt_do(self) -> ast.Stmt:
        # do { body } while (cond);  desugars to body; while(cond) body.
        self.expect("keyword", "do")
        body = self._statement()
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self._expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.Block([body, ast.While(cond, body)])

    def _stmt_for(self) -> ast.Stmt:
        self.expect("keyword", "for")
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.at("op", ";"):
            if self._looks_like_type():
                init = self._local_decl()
            else:
                init = ast.ExprStmt(self._expression())
                self.expect("op", ";")
        else:
            self.next()
        cond = None
        if not self.at("op", ";"):
            cond = self._expression()
        self.expect("op", ";")
        update = None
        if not self.at("op", ")"):
            update = self._expression()
        self.expect("op", ")")
        return ast.For(init, cond, update, self._statement())

    def _stmt_return(self) -> ast.Stmt:
        self.expect("keyword", "return")
        value = None
        if not self.at("op", ";"):
            value = self._expression()
        self.expect("op", ";")
        return ast.Return(value)

    def _stmt_throw(self) -> ast.Stmt:
        self.expect("keyword", "throw")
        value = self._expression()
        self.expect("op", ";")
        return ast.Throw(value)

    def _stmt_break(self) -> ast.Stmt:
        self.expect("keyword", "break")
        self.expect("op", ";")
        return ast.Break()

    def _stmt_continue(self) -> ast.Stmt:
        self.expect("keyword", "continue")
        self.expect("op", ";")
        return ast.Continue()

    def _stmt_try(self) -> ast.Stmt:
        self.expect("keyword", "try")
        body = self._block()
        catches: List[Tuple[str, str, ast.Block]] = []
        while self.accept("keyword", "catch"):
            self.expect("op", "(")
            exc = self._type_name()
            var = self.expect("ident").text
            self.expect("op", ")")
            catches.append((exc, var, self._block()))
        if not catches:
            raise ParseError("try without catch", self.peek())
        return ast.Try(body, catches)

    def _stmt_switch(self) -> ast.Stmt:
        self.expect("keyword", "switch")
        self.expect("op", "(")
        selector = self._expression()
        self.expect("op", ")")
        self.expect("op", "{")
        cases: List[Tuple[Optional[List[int]], List[ast.Stmt]]] = []
        while not self.accept("op", "}"):
            matches: Optional[List[int]] = None
            if self.accept("keyword", "default"):
                self.expect("op", ":")
            else:
                matches = []
                while True:
                    self.expect("keyword", "case")
                    matches.append(self._case_value())
                    self.expect("op", ":")
                    if not self.at("keyword", "case"):
                        break
            statements: List[ast.Stmt] = []
            while not (self.at("op", "}") or self.at("keyword", "case") or
                       self.at("keyword", "default")):
                statements.append(self._statement())
            cases.append((matches, statements))
        return ast.Switch(selector, cases)

    def _case_value(self) -> int:
        negative = bool(self.accept("op", "-"))
        token = self.peek()
        if token.kind == "int":
            self.next()
            value = int(token.text, 0)
        elif token.kind == "char":
            self.next()
            value = ord(token.text)
        else:
            raise ParseError("case label must be an int or char literal",
                             token)
        return -value if negative else value

    # -- expressions ------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._assignment()

    def _assignment(self) -> ast.Expr:
        left = self._conditional()
        token = self.peek()
        if token.kind == "op" and token.text == "=":
            self.next()
            return ast.Assign(left, self._assignment())
        if token.kind == "op" and token.text in _COMPOUND_OPS:
            self.next()
            op = _COMPOUND_OPS[token.text]
            return ast.Assign(left, ast.Binary(op, left, self._assignment()))
        return left

    def _conditional(self) -> ast.Expr:
        cond = self._binary(1)
        if self.accept("op", "?"):
            then = self._expression()
            self.expect("op", ":")
            return ast.Conditional(cond, then, self._conditional())
        return cond

    def _binary(self, min_precedence: int) -> ast.Expr:
        left = self._unary()
        while True:
            token = self.peek()
            text = token.text
            if token.kind == "keyword" and text == "instanceof":
                if _PRECEDENCE["instanceof"] < min_precedence:
                    return left
                self.next()
                left = ast.InstanceOf(left, self._type_name())
                continue
            if token.kind != "op" or text not in _PRECEDENCE:
                return left
            precedence = _PRECEDENCE[text]
            if precedence < min_precedence:
                return left
            self.next()
            right = self._binary(precedence + 1)
            left = ast.Binary(text, left, right)

    def _unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.next()
            operand = self._unary()
            if token.text == "-" and isinstance(operand, ast.IntLit):
                return ast.IntLit(-operand.value)
            if token.text == "-" and isinstance(operand, ast.LongLit):
                return ast.LongLit(-operand.value)
            return ast.Unary(token.text, operand)
        if token.kind == "op" and token.text in ("++", "--"):
            # Prefix increment: desugar to assignment.
            self.next()
            operand = self._unary()
            op = "+" if token.text == "++" else "-"
            return ast.Assign(operand,
                              ast.Binary(op, operand, ast.IntLit(1)))
        # Cast: '(' type ')' unary — only when it really is a type.
        if token.kind == "op" and token.text == "(" and self._is_cast():
            self.next()
            target = self._type()
            self.expect("op", ")")
            return ast.Cast(target, self._unary())
        return self._postfix(self._primary())

    def _is_cast(self) -> bool:
        ahead = 1
        token = self.peek(ahead)
        if token.kind == "keyword" and token.text in _PRIMITIVE_TYPES:
            ahead += 1
        elif token.kind == "ident":
            ahead += 1
            while self.peek(ahead).text == "." and \
                    self.peek(ahead + 1).kind == "ident":
                ahead += 2
        else:
            return False
        while self.peek(ahead).text == "[" and \
                self.peek(ahead + 1).text == "]":
            ahead += 2
        if self.peek(ahead).text != ")":
            return False
        after = self.peek(ahead + 1)
        # '(Foo) x' is a cast; '(foo) + x' is parenthesized arithmetic.
        if token.kind == "keyword":
            return True
        return after.kind in ("ident", "int", "long", "float", "double",
                              "string", "char") or \
            after.text in ("(", "!", "~", "this", "new", "null", "true",
                           "false", "super")

    def _primary(self) -> ast.Expr:
        token = self.next()
        if token.kind == "int":
            return ast.IntLit(int(token.text, 0))
        if token.kind == "long":
            return ast.LongLit(int(token.text, 0))
        if token.kind == "float":
            return ast.FloatLit(float(token.text))
        if token.kind == "double":
            return ast.DoubleLit(float(token.text))
        if token.kind == "string":
            return ast.StringLit(token.text)
        if token.kind == "char":
            return ast.CharLit(token.text)
        if token.kind == "keyword":
            if token.text == "true":
                return ast.BoolLit(True)
            if token.text == "false":
                return ast.BoolLit(False)
            if token.text == "null":
                return ast.NullLit()
            if token.text == "this":
                return ast.This()
            if token.text == "super":
                if self.at("op", "("):
                    # super(...) constructor call.
                    return ast.Call(None, None, "<init>",
                                    self._arguments(), is_super=True)
                self.expect("op", ".")
                name = self.expect("ident").text
                args = self._arguments()
                return ast.Call(None, None, name, args, is_super=True)
            if token.text == "new":
                return self._new_expression()
        if token.kind == "op" and token.text == "(":
            expr = self._expression()
            self.expect("op", ")")
            return expr
        if token.kind == "ident":
            if self.at("op", "("):
                return ast.Call(None, None, token.text, self._arguments())
            return ast.Name(token.text)
        raise ParseError("expected an expression", token)

    def _new_expression(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "keyword" and token.text in _PRIMITIVE_TYPES:
            self.next()
            element = _PRIMITIVE_TYPES[token.text]
            self.expect("op", "[")
            length = self._expression()
            self.expect("op", "]")
            return ast.NewArray(element, length)
        name = self._type_name()
        if self.accept("op", "["):
            length = self._expression()
            self.expect("op", "]")
            element = ast.Type("L" + name.replace(".", "/") + ";")
            return ast.NewArray(element, length)
        return ast.New(name, self._arguments())

    def _arguments(self) -> List[ast.Expr]:
        self.expect("op", "(")
        args: List[ast.Expr] = []
        if not self.at("op", ")"):
            while True:
                args.append(self._expression())
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return args

    def _postfix(self, expr: ast.Expr) -> ast.Expr:
        while True:
            if self.accept("op", "."):
                name = self.expect("ident").text
                if self.at("op", "("):
                    expr = ast.Call(expr, None, name, self._arguments())
                elif name == "length":
                    expr = ast.ArrayLength(expr)
                else:
                    expr = ast.FieldAccess(expr, None, name)
                continue
            if self.at("op", "[") and self.peek(1).text != "]":
                self.next()
                index = self._expression()
                self.expect("op", "]")
                expr = ast.ArrayIndex(expr, index)
                continue
            token = self.peek()
            if token.kind == "op" and token.text in ("++", "--"):
                # Postfix increment as a statement expression; value
                # semantics of the pre/post distinction are not needed
                # by the synthesized corpus.
                self.next()
                op = "+" if token.text == "++" else "-"
                return ast.Assign(expr,
                                  ast.Binary(op, expr, ast.IntLit(1)))
            return expr


def parse(source: str) -> ast.CompilationUnit:
    """Parse a compilation unit; imports are attached afterwards."""
    parser = Parser(source)
    unit = parser.parse_unit()
    unit.imports = dict(parser.imports)  # type: ignore[attr-defined]
    return unit
