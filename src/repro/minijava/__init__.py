"""Mini-Java: a small Java compiler used to synthesize realistic
class files for the compression experiments.

The public entry point is :func:`compile_sources`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..classfile.classfile import ClassFile
from .analysis import Analyzer, SemanticError
from .codegen import CodegenError, generate
from .lexer import LexError
from .model import Hierarchy
from .parser import ParseError, parse

__all__ = [
    "compile_sources",
    "parse",
    "Analyzer",
    "Hierarchy",
    "ParseError",
    "LexError",
    "SemanticError",
    "CodegenError",
]


def compile_sources(sources: List[str],
                    hierarchy: Optional[Hierarchy] = None
                    ) -> Dict[str, ClassFile]:
    """Compile mini-Java source texts to class files.

    All sources are compiled together (cross-file references resolve),
    against the standard runtime model unless ``hierarchy`` is given.
    Returns a map from internal class name to :class:`ClassFile`.
    """
    units = [parse(source) for source in sources]
    analyzer = Analyzer(units, hierarchy)
    resolved = analyzer.analyze()
    return generate(units, resolved)
