"""Models of the java.* runtime classes mini-Java programs link against.

Our compiler does not compile these — it resolves calls and field
accesses against them, emitting symbolic references exactly as javac
does against ``rt.jar``.  The packed format then compresses those
references; their heavy reuse of ``java/lang`` names is one of the
redundancies the paper's package-name factoring exploits.
"""

from __future__ import annotations

from .model import ClassModel, Hierarchy


def standard_hierarchy() -> Hierarchy:
    """Build a hierarchy preloaded with the runtime classes."""
    hierarchy = Hierarchy()

    obj = ClassModel("java/lang/Object", super_name=None)
    obj.add_method("<init>", "()V")
    obj.add_method("equals", "(Ljava/lang/Object;)Z")
    obj.add_method("hashCode", "()I")
    obj.add_method("toString", "()Ljava/lang/String;")
    obj.add_method("getClass", "()Ljava/lang/Class;")
    hierarchy.add(obj)

    cls = ClassModel("java/lang/Class")
    cls.add_method("getName", "()Ljava/lang/String;")
    hierarchy.add(cls)

    string = ClassModel("java/lang/String")
    string.add_method("<init>", "()V")
    string.add_method("length", "()I")
    string.add_method("charAt", "(I)C")
    string.add_method("indexOf", "(Ljava/lang/String;)I")
    string.add_method("substring", "(II)Ljava/lang/String;")
    string.add_method("substring", "(I)Ljava/lang/String;")
    string.add_method("equals", "(Ljava/lang/Object;)Z")
    string.add_method("compareTo", "(Ljava/lang/String;)I")
    string.add_method("concat",
                      "(Ljava/lang/String;)Ljava/lang/String;")
    string.add_method("toLowerCase", "()Ljava/lang/String;")
    string.add_method("toUpperCase", "()Ljava/lang/String;")
    string.add_method("trim", "()Ljava/lang/String;")
    string.add_method("hashCode", "()I")
    string.add_method("valueOf", "(I)Ljava/lang/String;", is_static=True)
    string.add_method("valueOf", "(J)Ljava/lang/String;", is_static=True)
    string.add_method("valueOf", "(F)Ljava/lang/String;", is_static=True)
    string.add_method("valueOf", "(D)Ljava/lang/String;", is_static=True)
    string.add_method("valueOf", "(Ljava/lang/Object;)Ljava/lang/String;",
                      is_static=True)
    hierarchy.add(string)

    buffer = ClassModel("java/lang/StringBuffer")
    buffer.add_method("<init>", "()V")
    buffer.add_method("<init>", "(Ljava/lang/String;)V")
    for descriptor in ("I", "J", "F", "D", "C", "Z",
                       "Ljava/lang/String;", "Ljava/lang/Object;"):
        buffer.add_method(
            "append", f"({descriptor})Ljava/lang/StringBuffer;")
    buffer.add_method("toString", "()Ljava/lang/String;")
    buffer.add_method("length", "()I")
    hierarchy.add(buffer)

    system = ClassModel("java/lang/System")
    system.add_field("out", "Ljava/io/PrintStream;", is_static=True)
    system.add_field("err", "Ljava/io/PrintStream;", is_static=True)
    system.add_method("currentTimeMillis", "()J", is_static=True)
    system.add_method("arraycopy",
                      "(Ljava/lang/Object;ILjava/lang/Object;II)V",
                      is_static=True)
    system.add_method("exit", "(I)V", is_static=True)
    hierarchy.add(system)

    stream = ClassModel("java/io/PrintStream")
    for descriptor in ("I", "J", "F", "D", "C", "Z",
                       "Ljava/lang/String;", "Ljava/lang/Object;"):
        stream.add_method("println", f"({descriptor})V")
        stream.add_method("print", f"({descriptor})V")
    stream.add_method("println", "()V")
    stream.add_method("flush", "()V")
    hierarchy.add(stream)

    math = ClassModel("java/lang/Math")
    math.add_field("PI", "D", is_static=True, constant=3.141592653589793)
    math.add_field("E", "D", is_static=True, constant=2.718281828459045)
    for name in ("sin", "cos", "tan", "sqrt", "log", "exp", "floor",
                 "ceil", "abs"):
        math.add_method(name, "(D)D", is_static=True)
    math.add_method("abs", "(I)I", is_static=True)
    math.add_method("abs", "(J)J", is_static=True)
    math.add_method("abs", "(F)F", is_static=True)
    math.add_method("max", "(II)I", is_static=True)
    math.add_method("min", "(II)I", is_static=True)
    math.add_method("max", "(DD)D", is_static=True)
    math.add_method("min", "(DD)D", is_static=True)
    math.add_method("pow", "(DD)D", is_static=True)
    math.add_method("random", "()D", is_static=True)
    math.add_method("round", "(D)J", is_static=True)
    hierarchy.add(math)

    integer = ClassModel("java/lang/Integer")
    integer.add_field("MAX_VALUE", "I", is_static=True, constant=0x7FFFFFFF)
    integer.add_field("MIN_VALUE", "I", is_static=True,
                      constant=-0x80000000)
    integer.add_method("<init>", "(I)V")
    integer.add_method("parseInt", "(Ljava/lang/String;)I", is_static=True)
    integer.add_method("toString", "(I)Ljava/lang/String;", is_static=True)
    integer.add_method("intValue", "()I")
    hierarchy.add(integer)

    long_cls = ClassModel("java/lang/Long")
    long_cls.add_method("<init>", "(J)V")
    long_cls.add_method("parseLong", "(Ljava/lang/String;)J",
                        is_static=True)
    long_cls.add_method("longValue", "()J")
    hierarchy.add(long_cls)

    double_cls = ClassModel("java/lang/Double")
    double_cls.add_method("<init>", "(D)V")
    double_cls.add_method("doubleValue", "()D")
    double_cls.add_method("parseDouble", "(Ljava/lang/String;)D",
                          is_static=True)
    hierarchy.add(double_cls)

    for name in ("java/lang/Exception", "java/lang/RuntimeException",
                 "java/lang/IllegalArgumentException",
                 "java/lang/IllegalStateException",
                 "java/lang/IndexOutOfBoundsException",
                 "java/lang/ArithmeticException",
                 "java/lang/NullPointerException",
                 "java/lang/UnsupportedOperationException",
                 "java/io/IOException"):
        exc = ClassModel(name)
        if name == "java/lang/Exception":
            exc.super_name = "java/lang/Throwable"
        elif name == "java/lang/RuntimeException":
            exc.super_name = "java/lang/Exception"
        elif name == "java/io/IOException":
            exc.super_name = "java/lang/Exception"
        else:
            exc.super_name = "java/lang/RuntimeException"
        exc.add_method("<init>", "()V")
        exc.add_method("<init>", "(Ljava/lang/String;)V")
        exc.add_method("getMessage", "()Ljava/lang/String;")
        hierarchy.add(exc)

    throwable = ClassModel("java/lang/Throwable")
    throwable.add_method("<init>", "()V")
    throwable.add_method("<init>", "(Ljava/lang/String;)V")
    throwable.add_method("getMessage", "()Ljava/lang/String;")
    throwable.add_method("printStackTrace", "()V")
    hierarchy.add(throwable)

    vector = ClassModel("java/util/Vector")
    vector.add_method("<init>", "()V")
    vector.add_method("<init>", "(I)V")
    vector.add_method("addElement", "(Ljava/lang/Object;)V")
    vector.add_method("elementAt", "(I)Ljava/lang/Object;")
    vector.add_method("size", "()I")
    vector.add_method("removeElementAt", "(I)V")
    vector.add_method("contains", "(Ljava/lang/Object;)Z")
    hierarchy.add(vector)

    hashtable = ClassModel("java/util/Hashtable")
    hashtable.add_method("<init>", "()V")
    hashtable.add_method(
        "put", "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;")
    hashtable.add_method("get", "(Ljava/lang/Object;)Ljava/lang/Object;")
    hashtable.add_method("containsKey", "(Ljava/lang/Object;)Z")
    hashtable.add_method("size", "()I")
    hierarchy.add(hashtable)

    enum = ClassModel("java/util/Enumeration", is_interface=True,
                      super_name="java/lang/Object")
    enum.add_method("hasMoreElements", "()Z")
    enum.add_method("nextElement", "()Ljava/lang/Object;")
    hierarchy.add(enum)

    runnable = ClassModel("java/lang/Runnable", is_interface=True,
                          super_name="java/lang/Object")
    runnable.add_method("run", "()V")
    hierarchy.add(runnable)

    return hierarchy


#: Simple names resolvable without an import (the java.lang rule, plus
#: the handful of java.io/java.util types the corpus uses).
DEFAULT_IMPORTS = {
    "Object": "java/lang/Object",
    "String": "java/lang/String",
    "StringBuffer": "java/lang/StringBuffer",
    "System": "java/lang/System",
    "Math": "java/lang/Math",
    "Integer": "java/lang/Integer",
    "Long": "java/lang/Long",
    "Double": "java/lang/Double",
    "Class": "java/lang/Class",
    "Exception": "java/lang/Exception",
    "RuntimeException": "java/lang/RuntimeException",
    "IllegalArgumentException": "java/lang/IllegalArgumentException",
    "IllegalStateException": "java/lang/IllegalStateException",
    "IndexOutOfBoundsException": "java/lang/IndexOutOfBoundsException",
    "ArithmeticException": "java/lang/ArithmeticException",
    "NullPointerException": "java/lang/NullPointerException",
    "UnsupportedOperationException":
        "java/lang/UnsupportedOperationException",
    "IOException": "java/io/IOException",
    "Throwable": "java/lang/Throwable",
    "Runnable": "java/lang/Runnable",
    "Vector": "java/util/Vector",
    "Hashtable": "java/util/Hashtable",
    "Enumeration": "java/util/Enumeration",
    "PrintStream": "java/io/PrintStream",
}
